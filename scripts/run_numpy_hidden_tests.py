#!/usr/bin/env python
"""Run the matching test suite with numpy import-blocked.

The vectorized CSR backend (``repro.matching.csr_kernel``) must be a
pure accelerator: on hosts without numpy the package has to import
cleanly, ``matching_backend="auto"`` has to resolve to the python
kernel, an explicit ``"csr"`` request has to raise
``ConfigurationError``, and every matching test that does not require
numpy has to pass unchanged.  CI runs this script as its numpy-hidden
job; locally::

    python scripts/run_numpy_hidden_tests.py

It installs a meta-path finder that raises ``ImportError`` for
``numpy`` and every ``numpy.*`` submodule *before* anything else is
imported (via ``sitecustomize`` in a temp dir prepended to
``PYTHONPATH``), then runs the matching-focused test files; the
numpy-gated tests skip themselves via ``HAVE_NUMPY``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The test files exercising the kernel interface and its backends,
#: plus the service-mode suites (the serve runtime and WAL recovery
#: paths are pure stdlib and must behave identically without numpy).
TEST_PATHS = (
    "tests/test_csr_backend.py",
    "tests/test_kernel_equivalence.py",
    "tests/test_matching_bloom_sift_vsm.py",
    "tests/test_matching_postings_index.py",
    "tests/test_predicate_subscriptions.py",
    "tests/test_query_language.py",
    "tests/test_serve_runtime.py",
    "tests/test_threshold_semantics.py",
    "tests/test_wal_recovery.py",
)

SITECUSTOMIZE = '''\
"""Injected by scripts/run_numpy_hidden_tests.py: hide numpy."""
import sys


class _NumpyBlocker:
    """Meta-path finder that makes numpy unimportable."""

    def find_module(self, fullname, path=None):  # py3.9 compat
        return self if self._blocks(fullname) else None

    def find_spec(self, fullname, path=None, target=None):
        if self._blocks(fullname):
            raise ImportError(
                f"import of {fullname!r} is blocked "
                f"(numpy-hidden test run)"
            )
        return None

    @staticmethod
    def _blocks(fullname):
        return fullname == "numpy" or fullname.startswith("numpy.")


sys.meta_path.insert(0, _NumpyBlocker())
'''


def main() -> int:
    existing = [
        path for path in TEST_PATHS if (REPO_ROOT / path).exists()
    ]
    if not existing:
        print("no matching test files found", file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory() as tmp:
        Path(tmp, "sitecustomize.py").write_text(SITECUSTOMIZE)
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        extra = env.get("PYTHONPATH")
        env["PYTHONPATH"] = ":".join(
            [tmp, src] + ([extra] if extra else [])
        )
        probe = subprocess.run(
            [
                sys.executable,
                "-c",
                "import numpy",
            ],
            env=env,
            capture_output=True,
        )
        if probe.returncode == 0:
            print(
                "sitecustomize failed to block numpy", file=sys.stderr
            )
            return 1
        print("numpy hidden; running matching tests:", *existing)
        return subprocess.call(
            [sys.executable, "-m", "pytest", "-x", "-q", *existing],
            cwd=REPO_ROOT,
            env=env,
        )


if __name__ == "__main__":
    sys.exit(main())
