#!/usr/bin/env python
"""Summarize a pipeline trace written by ``python -m repro trace``.

Reads the JSON-lines span dump produced by :meth:`repro.obs.Tracer
.write_jsonl` (the ``trace`` subcommand, the ``experiments --trace``
flag, or any :class:`~repro.obs.Tracer` you exported yourself) and
prints:

- a per-stage latency table (count / total / mean / p50 / p95 / max)
  over every span name in the trace,
- a per-node breakdown of the ``execute_node`` sub-spans (how the
  execution stage's time and posting-entry volume spread across the
  cluster),
- per-system publish totals (documents, matches, fanout) reconciled
  from the ``publish`` span tags,
- per-system reallocation totals (refreshes applied vs skipped by the
  drift gate, keys kept vs rebuilt, replicas moved, time spent) from
  the ``reallocate`` span tags — omitted when the trace has none.

Examples::

    python -m repro trace --scheme move --out trace.jsonl
    python scripts/trace_report.py trace.jsonl
    python scripts/trace_report.py trace.jsonl --stage execute_node

Exits non-zero when the file contains no spans, so CI can use it as a
traced-smoke assertion.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Summarize a repro pipeline trace (JSON lines)."
    )
    parser.add_argument("trace", help="path to the .jsonl span dump")
    parser.add_argument(
        "--stage",
        default=None,
        help="only report this span name (default: all stages)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the per-node execute table (default: 10)",
    )
    return parser.parse_args(argv)


def load_spans(path: str) -> List[dict]:
    """Parse one span dict per non-empty line."""
    spans = []
    with Path(path).open(encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"{path}:{line_no}: not valid JSON ({exc})"
                )
    return spans


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5)
    )
    return sorted_values[index]


def stage_table(spans: List[dict], only: str = None) -> str:
    """The per-stage latency table, one row per span name."""
    by_name: Dict[str, List[float]] = defaultdict(list)
    for span in spans:
        if only is not None and span["name"] != only:
            continue
        by_name[span["name"]].append(span["duration_s"])
    lines = [
        f"{'stage':<14} {'count':>6} {'total_ms':>9} {'mean_us':>9} "
        f"{'p50_us':>9} {'p95_us':>9} {'max_us':>9}"
    ]
    for name in sorted(by_name):
        durations = sorted(by_name[name])
        total = sum(durations)
        lines.append(
            f"{name:<14} {len(durations):>6d} {total * 1e3:>9.2f} "
            f"{total / len(durations) * 1e6:>9.1f} "
            f"{_percentile(durations, 0.50) * 1e6:>9.1f} "
            f"{_percentile(durations, 0.95) * 1e6:>9.1f} "
            f"{durations[-1] * 1e6:>9.1f}"
        )
    return "\n".join(lines)


def node_table(spans: List[dict], top: int) -> str:
    """Execution-stage spread: ``execute_node`` sub-spans by node."""
    per_node: Dict[str, List[dict]] = defaultdict(list)
    for span in spans:
        if span["name"] != "execute_node":
            continue
        per_node[str(span["tags"].get("node", "?"))].append(span)
    if not per_node:
        return "(no execute_node spans in this trace)"
    rows = sorted(
        per_node.items(),
        key=lambda item: -sum(s["duration_s"] for s in item[1]),
    )
    lines = [
        f"{'node':<12} {'visits':>6} {'total_ms':>9} "
        f"{'posting_lists':>13} {'posting_entries':>15}"
    ]
    for node, node_spans in rows[:top]:
        lines.append(
            f"{node:<12} {len(node_spans):>6d} "
            f"{sum(s['duration_s'] for s in node_spans) * 1e3:>9.2f} "
            f"{sum(s['tags'].get('posting_lists', 0) for s in node_spans):>13d} "
            f"{sum(s['tags'].get('posting_entries', 0) for s in node_spans):>15d}"
        )
    if len(rows) > top:
        lines.append(f"... and {len(rows) - top} more nodes")
    return "\n".join(lines)


def publish_table(spans: List[dict]) -> str:
    """Per-system publish totals from the ``publish`` span tags."""
    per_system: Dict[str, dict] = defaultdict(
        lambda: {"documents": 0, "matched": 0, "fanout": 0}
    )
    for span in spans:
        if span["name"] != "publish":
            continue
        tags = span["tags"]
        row = per_system[str(tags.get("system", "?"))]
        row["documents"] += 1
        row["matched"] += tags.get("matched", 0)
        row["fanout"] += tags.get("fanout", 0)
    if not per_system:
        return "(no publish spans in this trace)"
    lines = [
        f"{'system':<10} {'documents':>9} {'matches':>8} "
        f"{'mean_fanout':>11}"
    ]
    for system in sorted(per_system):
        row = per_system[system]
        fanout = row["fanout"] / row["documents"]
        lines.append(
            f"{system:<10} {row['documents']:>9d} {row['matched']:>8d} "
            f"{fanout:>11.2f}"
        )
    return "\n".join(lines)


def reallocation_table(spans: List[dict]) -> str:
    """Per-system refresh totals from the ``reallocate`` span tags.

    Every ``MoveSystem.reallocate`` call — the finalize-registration
    apply, periodic refreshes, and drift-gate skips alike — emits one
    span tagged with its :class:`repro.core.ReallocationReport`.
    """
    per_system: Dict[str, dict] = defaultdict(
        lambda: {
            "refreshes": 0,
            "skipped": 0,
            "keys_kept": 0,
            "keys_rebuilt": 0,
            "replicas_moved": 0,
            "seconds": 0.0,
        }
    )
    for span in spans:
        if span["name"] != "reallocate":
            continue
        tags = span["tags"]
        row = per_system[str(tags.get("system", "?"))]
        row["refreshes"] += 1
        row["skipped"] += 1 if tags.get("skipped") else 0
        row["keys_kept"] += tags.get("keys_kept", 0)
        row["keys_rebuilt"] += tags.get("keys_rebuilt", 0)
        row["replicas_moved"] += tags.get("replicas_moved", 0)
        row["seconds"] += span["duration_s"]
    if not per_system:
        return ""
    lines = [
        f"{'system':<10} {'refreshes':>9} {'skipped':>7} "
        f"{'keys_kept':>9} {'keys_rebuilt':>12} "
        f"{'replicas_moved':>14} {'total_ms':>9}"
    ]
    for system in sorted(per_system):
        row = per_system[system]
        lines.append(
            f"{system:<10} {row['refreshes']:>9d} {row['skipped']:>7d} "
            f"{row['keys_kept']:>9d} {row['keys_rebuilt']:>12d} "
            f"{row['replicas_moved']:>14d} "
            f"{row['seconds'] * 1e3:>9.2f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    args = parse_args(argv)
    spans = load_spans(args.trace)
    if not spans:
        print(f"{args.trace}: no spans", file=sys.stderr)
        return 1
    print(f"# {args.trace}: {len(spans)} spans\n")
    print("## Stage latency\n")
    print(stage_table(spans, only=args.stage))
    if args.stage is None:
        print("\n## Execution spread (execute_node)\n")
        print(node_table(spans, args.top))
        print("\n## Publish totals\n")
        print(publish_table(spans))
        realloc = reallocation_table(spans)
        if realloc:
            print("\n## Reallocation (reallocate spans)\n")
            print(realloc)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
