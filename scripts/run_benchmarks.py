#!/usr/bin/env python
"""Tier-1 suite + perf benchmark runner with a regression gate.

Usage (from the repository root)::

    python scripts/run_benchmarks.py                # tests + bench + gate
    python scripts/run_benchmarks.py --skip-tests   # bench + gate only
    python scripts/run_benchmarks.py --check        # CI: portable gate
    python scripts/run_benchmarks.py --profile      # cProfile the loops
    python scripts/run_benchmarks.py --update-baseline

Two benchmark files run in one pytest-benchmark invocation: the
dissemination hot path (``bench_hot_path.py``) and the reallocation
engine (``bench_reallocation.py``).  The default gate compares the
fresh numbers against the committed ``BENCH_hot_path.json`` baseline
and exits non-zero when any benchmark's throughput metric — batched
docs/s for the hot-path benches, refreshes/s for the reallocation
bench — regresses by more than ``--tolerance`` (default 20%).
``--update-baseline`` rewrites the baseline instead — run it on the
reference machine after an intentional perf change and commit the
result so the next PR inherits the trajectory.  The baseline is
trimmed before writing: only the identifying machine fields, the
commit info, and each benchmark's ``extra_info`` + summary stats are
kept (the raw cpuinfo blob — flags and cache geometry — is noise the
gate never reads).

``--check`` is the CI mode: it skips the tier-1 suite (CI runs pytest
as its own step) and gates on the ``speedup`` *ratio* instead of
absolute throughput.  The ratio divides out the host's single-thread
speed — both sides of every ratio run on the same machine — so it is
the only number comparable between the committed baseline and an
arbitrary CI runner.  For the reallocation bench the recorded ratio is
capped inside the bench (see bench_reallocation.py) so the gate tracks
a stable number.

Both modes additionally assert the observability disabled-path budget:
the fresh ``test_tracing_disabled_overhead`` bench must report a
``disabled_overhead`` of at most 2% (tracing off may not slow the hot
path; see docs/OBSERVABILITY.md).  This is a fixed ceiling, not a
baseline comparison, so it needs no entry in the committed JSON.  The
same fixed-ceiling protocol gates the predicate-capable dispatcher:
``test_predicate_flat_overhead`` must report a
``predicate_flat_overhead`` of at most 2% on a predicate-free system
(flat workloads may not pay for the boolean-subscription layer).

Both modes also re-assert every CSR backend floor: each ``test_csr_*``
bench records its ``csr_floor`` next to the measured python-vs-csr
``speedup`` ratio, and the gate fails if any measured ratio is below
its floor (the 50k-filter matcher bench carries the >= 3x vectorized-
backend acceptance).  Like ``disabled_overhead``, these are fixed
same-host ratios, portable across machines.

Both modes finally validate the committed scale trajectory
(``BENCH_scale.json``, recorded by ``benchmarks/bench_scale.py``)
against the floors stored inside it: slab bytes/filter and docs/sec
at the full tier, the object-vs-slab memory ratio and twin
equivalence at the ci tier.  These are recorded-file checks (no fresh
run — the million-filter tier is too slow for every gate pass); CI
re-measures the ci tier fresh in its own ``scale-smoke`` job.

Both modes likewise validate the committed service dataplane
trajectory (``BENCH_serve.json``, recorded by
``benchmarks/bench_serve_ingest.py``) against the floors stored
inside it: the binary + group-commit ingest speedup over the seed
JSON/per-append path, the snapshot-boot recovery speedup over full
replay, and the bit-identity of the snapshot-recovered twin.  Both
speedups are same-host ratios, so the recorded file gates portably;
CI re-measures the small tier fresh in its own ``serve-bench`` job.

Benchmark noise note: absolute numbers are only comparable on the same
hardware; the committed baseline tracks the *trajectory* across PRs on
the reference machine, not an absolute claim.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hot_path.json"
SCALE_PATH = REPO_ROOT / "BENCH_scale.json"
SERVE_PATH = REPO_ROOT / "BENCH_serve.json"
BENCH_PATHS = (
    REPO_ROOT / "benchmarks" / "bench_hot_path.py",
    REPO_ROOT / "benchmarks" / "bench_reallocation.py",
)

#: Headline metrics the default gate tracks, per benchmark name; the
#: first one present in a benchmark's ``extra_info`` wins (hot-path
#: benches record docs/s, the reallocation bench refreshes/s).
GATED_METRICS = ("docs_per_second_batched", "refreshes_per_second")

#: The machine-portable metric ``--check`` tracks: every recorded
#: ``speedup`` is a same-host ratio, host-speed-invariant, so CI
#: runners can gate against a baseline recorded on different hardware.
CHECK_METRICS = ("speedup",)

#: Fields kept by :func:`trim_payload` when writing the baseline.
MACHINE_INFO_KEYS = (
    "node",
    "machine",
    "system",
    "release",
    "python_implementation",
    "python_version",
)
CPU_INFO_KEYS = ("brand_raw", "arch", "count", "hz_advertised_friendly")
STATS_KEYS = ("min", "max", "mean", "stddev", "median", "rounds",
              "iterations")

#: The disabled-path bench and its fixed budget: with the default no-op
#: tracer, ``publish_batch`` may cost at most 2% over the raw engine
#: loop (also asserted inside the bench itself; re-checked here so the
#: gate fails loudly even if the bench's assert is ever relaxed).
OVERHEAD_BENCH = "test_tracing_disabled_overhead"
OVERHEAD_CEILING = 0.02

#: The predicate-path twin of the tracing gate: on a system with no
#: predicated subscriptions, ``publish_batch`` may cost at most 2%
#: over the raw engine loop even though the dispatcher now also
#: checks ``has_predicates`` per batch.
PREDICATE_OVERHEAD_BENCH = "test_predicate_flat_overhead"
PREDICATE_OVERHEAD_CEILING = 0.02


def _env_with_src() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def run_tier1_tests() -> int:
    """The repository's tier-1 verify (ROADMAP.md)."""
    print("== tier-1 test suite ==", flush=True)
    return subprocess.call(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=REPO_ROOT,
        env=_env_with_src(),
    )


def run_bench_suite(json_out: Path, profile: bool) -> int:
    """pytest-benchmark over both bench files, JSON to ``json_out``."""
    print("== performance benchmarks ==", flush=True)
    env = _env_with_src()
    command = [
        sys.executable,
        "-m",
        "pytest",
        *(str(path) for path in BENCH_PATHS),
        "--benchmark-only",
        f"--benchmark-json={json_out}",
        "-q",
    ]
    if profile:
        env["REPRO_BENCH_PROFILE"] = "1"
        # Disable pytest's stdout capture so the cProfile breakdowns
        # of passing benchmarks reach the terminal.
        command.append("-s")
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


def extract_metrics(payload: dict, metrics=GATED_METRICS) -> dict:
    """benchmark name -> (metric name, value) from ``extra_info``.

    ``metrics`` is an ordered tuple of candidates; the first one a
    benchmark actually recorded wins, so one gate pass can mix benches
    with different headline metrics.
    """
    extracted = {}
    for bench in payload.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        for metric in metrics:
            value = extra.get(metric)
            if value is not None:
                extracted[bench["name"]] = (metric, float(value))
                break
    return extracted


def trim_payload(payload: dict) -> dict:
    """The baseline subset of a pytest-benchmark JSON payload.

    Keeps only what the gate and a human diff need: identifying
    machine fields (the cpuinfo ``flags`` blob alone is ~1.5 kB of
    noise), commit info, and per-benchmark name/``extra_info``/summary
    stats.
    """
    machine_info = payload.get("machine_info", {})
    cpu_info = machine_info.get("cpu", {})
    trimmed_machine = {
        key: machine_info[key]
        for key in MACHINE_INFO_KEYS
        if key in machine_info
    }
    trimmed_machine["cpu"] = {
        key: cpu_info[key] for key in CPU_INFO_KEYS if key in cpu_info
    }
    benchmarks = [
        {
            "name": bench["name"],
            "fullname": bench.get("fullname", bench["name"]),
            "extra_info": bench.get("extra_info", {}),
            "stats": {
                key: bench.get("stats", {}).get(key)
                for key in STATS_KEYS
                if key in bench.get("stats", {})
            },
        }
        for bench in payload.get("benchmarks", [])
    ]
    return {
        "machine_info": trimmed_machine,
        "commit_info": payload.get("commit_info", {}),
        "datetime": payload.get("datetime"),
        "version": payload.get("version"),
        "benchmarks": benchmarks,
    }


def check_regression(
    fresh: dict, tolerance: float, metrics=GATED_METRICS
) -> int:
    """Compare fresh metrics against the committed baseline."""
    if not BASELINE_PATH.exists():
        print(
            f"no baseline at {BASELINE_PATH}; run with --update-baseline "
            f"to create one"
        )
        return 1
    baseline = extract_metrics(
        json.loads(BASELINE_PATH.read_text()), metrics
    )
    fresh_metrics = extract_metrics(fresh, metrics)
    failures = 0
    for name, (metric, old_value) in sorted(baseline.items()):
        _, new_value = fresh_metrics.get(name, (metric, None))
        if new_value is None:
            print(f"REGRESSION {name}: benchmark missing from fresh run")
            failures += 1
            continue
        floor = old_value * (1.0 - tolerance)
        status = "ok" if new_value >= floor else "REGRESSION"
        print(
            f"{status:>10s} {name}: {metric} "
            f"{new_value:,.2f} vs baseline {old_value:,.2f} "
            f"(floor {floor:,.2f})"
        )
        if new_value < floor:
            failures += 1
    return 1 if failures else 0


def check_csr_floors(payload: dict) -> int:
    """Assert every CSR-vs-python speedup floor from the fresh run.

    The ``test_csr_*`` benches record their own acceptance floor as
    ``csr_floor`` next to the measured ``speedup`` (a same-host ratio,
    so it is machine-portable like the ``--check`` gate).  Re-checking
    here keeps the floors load-bearing even if a bench's inline assert
    is ever relaxed; the 50k-filter matcher bench carries the >= 3x
    acceptance floor of the vectorized backend.
    """
    failures = 0
    seen = 0
    for bench in payload.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        floor = extra.get("csr_floor")
        if floor is None:
            continue
        seen += 1
        speedup = extra.get("speedup")
        ok = speedup is not None and speedup >= float(floor)
        status = "ok" if ok else "REGRESSION"
        shown = "missing" if speedup is None else f"{speedup:.2f}x"
        print(
            f"{status:>10s} {bench['name']}: csr speedup {shown} "
            f"(floor {floor}x)"
        )
        if not ok:
            failures += 1
    if not seen:
        # numpy-less hosts skip the CSR benches; that is not a
        # regression (the backend falls back to python by design).
        print("note: no CSR benches in fresh run (numpy unavailable?)")
    return 1 if failures else 0


def check_disabled_overhead(payload: dict) -> int:
    """Assert the tracing disabled-path budget from the fresh run."""
    for bench in payload.get("benchmarks", []):
        if bench["name"] != OVERHEAD_BENCH:
            continue
        overhead = bench.get("extra_info", {}).get("disabled_overhead")
        if overhead is None:
            break
        ok = overhead <= OVERHEAD_CEILING
        status = "ok" if ok else "REGRESSION"
        print(
            f"{status:>10s} {OVERHEAD_BENCH}: disabled_overhead "
            f"{overhead:+.2%} (ceiling {OVERHEAD_CEILING:.0%})"
        )
        return 0 if ok else 1
    print(
        f"REGRESSION {OVERHEAD_BENCH}: disabled_overhead missing "
        f"from fresh run"
    )
    return 1


def check_predicate_overhead(payload: dict) -> int:
    """Assert the predicate-path flat-workload budget from the fresh run."""
    for bench in payload.get("benchmarks", []):
        if bench["name"] != PREDICATE_OVERHEAD_BENCH:
            continue
        overhead = bench.get("extra_info", {}).get(
            "predicate_flat_overhead"
        )
        if overhead is None:
            break
        ok = overhead <= PREDICATE_OVERHEAD_CEILING
        status = "ok" if ok else "REGRESSION"
        print(
            f"{status:>10s} {PREDICATE_OVERHEAD_BENCH}: "
            f"predicate_flat_overhead {overhead:+.2%} "
            f"(ceiling {PREDICATE_OVERHEAD_CEILING:.0%})"
        )
        return 0 if ok else 1
    print(
        f"REGRESSION {PREDICATE_OVERHEAD_BENCH}: "
        f"predicate_flat_overhead missing from fresh run"
    )
    return 1


def check_scale_budget() -> int:
    """Validate the committed BENCH_scale.json against its own floors.

    The scale trajectory carries its acceptance floors inline (see
    ``FLOORS`` in benchmarks/bench_scale.py), so this check needs no
    external config and survives re-recordings: a re-recorded file
    whose numbers no longer meet the floors it ships fails here.
    Checked in both gate modes; the numbers are host-recorded, but the
    floors are deliberately far below any plausible host's measurement
    so only a storage-layout or hot-path collapse trips them.
    """
    if not SCALE_PATH.exists():
        print(f"REGRESSION scale budget: {SCALE_PATH.name} missing")
        return 1
    payload = json.loads(SCALE_PATH.read_text())
    floors = payload.get("floors", {})
    bytes_max = floors.get("slab_bytes_per_filter_max")
    docs_min = floors.get("docs_per_second_min")
    ratio_min = floors.get("object_slab_ratio_min")
    failures = 0

    full = payload.get("tiers", {}).get("full", {}).get("schemes", {})
    if not full:
        print("REGRESSION scale budget: no full-tier runs recorded")
        failures += 1
    for scheme, entry in sorted(full.items()):
        run = entry.get("slab")
        if run is None:
            print(f"REGRESSION scale/{scheme}: no slab run recorded")
            failures += 1
            continue
        bpf = run.get("bytes_per_filter")
        dps = run.get("docs_per_second")
        ok_mem = bytes_max is None or (
            bpf is not None and bpf <= bytes_max
        )
        ok_docs = docs_min is None or (
            dps is not None and dps >= docs_min
        )
        status = "ok" if ok_mem and ok_docs else "REGRESSION"
        print(
            f"{status:>10s} scale/{scheme}: {bpf:,.0f} B/filter "
            f"(max {bytes_max:,.0f}), {dps:,.0f} docs/s "
            f"(min {docs_min:,.0f}) at "
            f"{run.get('filters', 0):,} filters"
        )
        if not (ok_mem and ok_docs):
            failures += 1

    ci = payload.get("tiers", {}).get("ci", {}).get("schemes", {})
    for scheme, entry in sorted(ci.items()):
        ratio = entry.get("object_slab_ratio")
        equivalent = entry.get("equivalent")
        if ratio is None or equivalent is None:
            continue
        ok = equivalent and (
            ratio_min is None or ratio >= ratio_min
        )
        status = "ok" if ok else "REGRESSION"
        print(
            f"{status:>10s} scale-ci/{scheme}: object/slab ratio "
            f"{ratio:.1f}x (min {ratio_min:.1f}x), twins "
            f"{'identical' if equivalent else 'DIVERGED'}"
        )
        if not ok:
            failures += 1
    return 1 if failures else 0


def check_serve_budget() -> int:
    """Validate the committed BENCH_serve.json against its own floors.

    Same protocol as :func:`check_scale_budget`: the service dataplane
    trajectory (recorded by benchmarks/bench_serve_ingest.py) carries
    its acceptance floors inline, and both gated numbers are same-host
    ratios — binary + group-commit ingest vs the seed JSON/per-append
    path, and snapshot-boot recovery vs full WAL replay — so the
    committed file gates portably on any runner.  The snapshot twin
    must also have recovered bit-identical to the replayed one.
    """
    if not SERVE_PATH.exists():
        print(f"REGRESSION serve budget: {SERVE_PATH.name} missing")
        return 1
    payload = json.loads(SERVE_PATH.read_text())
    floors = payload.get("floors", {})
    ingest_min = floors.get("ingest_speedup_min")
    recovery_min = floors.get("recovery_speedup_min")
    failures = 0
    tiers = payload.get("tiers", {})
    if not tiers:
        print("REGRESSION serve budget: no tiers recorded")
        failures += 1
    for tier_name, tier in sorted(tiers.items()):
        ingest = tier.get("ingest", {})
        speedup = ingest.get("speedup")
        ok = ingest_min is None or (
            speedup is not None and speedup >= ingest_min
        )
        status = "ok" if ok else "REGRESSION"
        shown = "missing" if speedup is None else f"{speedup:.2f}x"
        print(
            f"{status:>10s} serve-{tier_name}: ingest speedup {shown} "
            f"({ingest.get('headline', '?')} vs "
            f"{ingest.get('baseline', '?')}, floor {ingest_min}x)"
        )
        if not ok:
            failures += 1
        recovery = tier.get("recovery", {})
        rec_speedup = recovery.get("speedup")
        identical = recovery.get("bit_identical")
        ok = bool(identical) and (
            recovery_min is None
            or (rec_speedup is not None and rec_speedup >= recovery_min)
        )
        status = "ok" if ok else "REGRESSION"
        shown = (
            "missing" if rec_speedup is None else f"{rec_speedup:.1f}x"
        )
        print(
            f"{status:>10s} serve-{tier_name}: recovery speedup {shown} "
            f"(floor {recovery_min}x), twins "
            f"{'identical' if identical else 'DIVERGED'}"
        )
        if not ok:
            failures += 1
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="skip the tier-1 suite, run only the benchmark + gate",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="set REPRO_BENCH_PROFILE=1 (cProfile the timed loops)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "allowed fractional metric drop (default 0.20, or 0.35 "
            "in --check mode: shared CI runners add timing noise on "
            "top of the ratio's own variance)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.name} instead of gating against it",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "CI mode: skip the tier-1 suite and gate on the "
            f"machine-portable {CHECK_METRICS[0]!r} ratio instead of "
            "absolute throughput"
        ),
    )
    args = parser.parse_args()
    if args.check and args.update_baseline:
        parser.error("--check and --update-baseline are mutually exclusive")
    if args.tolerance is None:
        args.tolerance = 0.35 if args.check else 0.20

    if not args.skip_tests and not args.check:
        code = run_tier1_tests()
        if code != 0:
            print("tier-1 tests failed; aborting before benchmarks")
            return code

    with tempfile.TemporaryDirectory() as tmp:
        json_out = Path(tmp) / "bench_suite.json"
        code = run_bench_suite(json_out, profile=args.profile)
        if code != 0:
            print("benchmark suite failed")
            return code
        payload = json.loads(json_out.read_text())

    if args.update_baseline:
        trimmed = trim_payload(payload)
        BASELINE_PATH.write_text(json.dumps(trimmed, indent=1) + "\n")
        print(f"baseline updated: {BASELINE_PATH}")
        for name, (metric, value) in sorted(
            extract_metrics(trimmed).items()
        ):
            print(f"  {name}: {metric} {value:,.0f}")
        return 0

    metrics = CHECK_METRICS if args.check else GATED_METRICS
    code = check_regression(payload, args.tolerance, metrics)
    overhead_code = check_disabled_overhead(payload)
    predicate_code = check_predicate_overhead(payload)
    csr_code = check_csr_floors(payload)
    scale_code = check_scale_budget()
    serve_code = check_serve_budget()
    return (
        code
        or overhead_code
        or predicate_code
        or csr_code
        or scale_code
        or serve_code
    )


if __name__ == "__main__":
    sys.exit(main())
