#!/usr/bin/env python
"""Serve-mode smoke: boot, mutate, kill -9, restart, assert recovery.

The CI counterpart of the in-process crash-recovery property tests:
it exercises the real deployment story across *process* boundaries.

1. boot ``python -m repro serve`` with a WAL directory and port 0,
   wait for ``READY port=<n>``;
2. register filters, finalize, ingest documents; record the stats
   snapshot and each document's matched set;
3. ``SIGKILL`` the process mid-flight (no drain, no fsync courtesy);
4. boot a fresh process on the same WAL directory;
5. assert the recovered stats match the pre-kill snapshot (documents
   published, active filters) and that a probe document matches
   exactly the filters it should;
6. grow the WAL across several segments, checkpoint via the client,
   assert the truncation shrank the on-disk segment count, ingest a
   small tail, ``SIGKILL`` again;
7. boot a third process and assert recovery replayed *only* the
   post-checkpoint tail (the ``repro_serve_recovery_replayed_records``
   gauge equals tail records + the checkpoint marker) while the
   recovered state still answers probes correctly.

Matched *sets* are the cross-process invariant; RNG-stream identity
is only meaningful in-process (hash randomization perturbs set
iteration order between interpreters) and is covered by
``tests/test_wal_recovery.py``.

Exit status 0 on success; any assertion or timeout fails the smoke.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServiceClient  # noqa: E402

_FILTERS = {
    "f-alpha": ["alpha", "beta"],
    "f-gamma": ["gamma"],
    "f-shared": ["alpha", "gamma"],
    "f-delta": ["delta", "epsilon"],
    "f-zeta": ["zeta"],
}
_DOCS = {
    "d0": ["alpha", "noise0"],
    "d1": ["gamma", "noise1"],
    "d2": ["delta", "epsilon"],
    "d3": ["nothing", "matches"],
    "d4": ["beta", "zeta"],
}


_QUERY_ID = "q-pred"
_QUERY = "alpha NOT zeta"

#: Documents ingested after the checkpoint; recovery must replay
#: exactly these plus the checkpoint marker record.
_TAIL_DOCS = 5


def _segments(wal_dir: str) -> "list[Path]":
    return sorted(Path(wal_dir).glob("wal-*.log"))


def _gauge(metrics_text: str, name: str) -> float:
    for line in metrics_text.splitlines():
        if line.startswith(f"{name} ") or line.startswith(f"{name}\t"):
            return float(line.split()[-1])
    raise AssertionError(f"gauge {name} missing from /metrics")


def _expected_matches(terms):
    doc_terms = set(terms)
    matched = [
        fid
        for fid, fterms in _FILTERS.items()
        if doc_terms & set(fterms)
    ]
    if "alpha" in doc_terms and "zeta" not in doc_terms:
        matched.append(_QUERY_ID)
    return sorted(matched)


def _boot(wal_dir: str) -> "tuple[subprocess.Popen, int]":
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--scheme",
            "move",
            "--nodes",
            "4",
            "--port",
            "0",
            "--wal-dir",
            wal_dir,
            # Small segments so the checkpoint leg spans several and
            # its truncation is visible in the on-disk file count.
            "--segment-max-bytes",
            "4096",
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60
    while True:
        line = process.stdout.readline()
        if line.startswith("READY port="):
            # "READY port=<n> protocol=<v>" — fields are one token each.
            fields = dict(
                part.split("=", 1)
                for part in line.strip().split()
                if "=" in part
            )
            return process, int(fields["port"])
        if not line or time.monotonic() > deadline:
            process.kill()
            raise SystemExit(
                f"server did not become READY (last line: {line!r})"
            )


def main() -> int:
    wal_dir = tempfile.mkdtemp(prefix="serve-smoke-wal-")
    process, port = _boot(wal_dir)
    try:
        with ServiceClient(port=port) as client:
            assert client.ping()
            for fid, terms in _FILTERS.items():
                client.register(fid, terms)
            assert client.server_protocol == 2, client.server_protocol
            qid = client.register_query(_QUERY, query_id=_QUERY_ID)
            assert qid == _QUERY_ID, qid
            client.finalize()
            before = {}
            for doc_id, terms in _DOCS.items():
                plan = client.ingest(doc_id, terms=terms)
                assert plan["matched"] == _expected_matches(terms), (
                    doc_id,
                    plan["matched"],
                )
                before[doc_id] = plan["matched"]
            stats_before = client.stats()
        # Crash hard: no drain, no graceful anything.
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()

    process, port = _boot(wal_dir)
    try:
        with ServiceClient(port=port) as client:
            stats_after = client.stats()
            for key in (
                "active_filters",
                "documents_published",
                "filters_registered",
            ):
                assert stats_after[key] == stats_before[key], (
                    key,
                    stats_before[key],
                    stats_after[key],
                )
            probe_terms = ["alpha", "zeta", "unseen"]
            plan = client.ingest("probe", terms=probe_terms)
            assert plan["matched"] == _expected_matches(probe_terms), (
                plan["matched"]
            )
            metrics = client.metrics()
            assert "repro_documents_published" in metrics

            # -- checkpoint leg: grow, checkpoint, tail, kill -9 ----
            for batch in range(10):
                client.ingest_batch(
                    [
                        {
                            "doc_id": f"fill-{batch}-{i}",
                            "terms": [f"fill{batch}t{i}k{k}"
                                      for k in range(6)],
                        }
                        for i in range(30)
                    ]
                )
            segments_before = len(_segments(wal_dir))
            assert segments_before > 1, segments_before
            report = client.checkpoint()
            assert report["segments_removed"] > 0, report
            segments_after = len(_segments(wal_dir))
            assert segments_after < segments_before, (
                segments_before,
                segments_after,
            )
            for i in range(_TAIL_DOCS):
                client.ingest(f"tail-{i}", terms=["gamma", f"t{i}"])
            stats_before = client.stats()
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()

    process, port = _boot(wal_dir)
    try:
        with ServiceClient(port=port) as client:
            # Recovery must boot from the snapshot and replay only the
            # tail: one record per post-checkpoint ingest plus the
            # checkpoint marker itself — not the whole history.
            replayed = _gauge(
                client.metrics(), "repro_serve_recovery_replayed_records"
            )
            assert replayed == _TAIL_DOCS + 1, replayed
            stats_after = client.stats()
            assert (
                stats_after["documents_published"]
                == stats_before["documents_published"]
            ), (stats_before, stats_after)
            probe_terms = ["alpha", "zeta", "unseen"]
            plan = client.ingest("probe2", terms=probe_terms)
            assert plan["matched"] == _expected_matches(probe_terms), (
                plan["matched"]
            )
            client.shutdown()
        process.wait(timeout=60)
        assert process.returncode == 0, process.returncode
    finally:
        if process.poll() is None:
            process.kill()
    print(
        "serve smoke OK: recovered after SIGKILL with state intact; "
        f"checkpoint shrank the WAL and recovery replayed only "
        f"{_TAIL_DOCS + 1} tail records"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
