#!/usr/bin/env python
"""Serve-mode smoke: boot, mutate, kill -9, restart, assert recovery.

The CI counterpart of the in-process crash-recovery property tests:
it exercises the real deployment story across *process* boundaries.

1. boot ``python -m repro serve`` with a WAL directory and port 0,
   wait for ``READY port=<n>``;
2. register filters, finalize, ingest documents; record the stats
   snapshot and each document's matched set;
3. ``SIGKILL`` the process mid-flight (no drain, no fsync courtesy);
4. boot a fresh process on the same WAL directory;
5. assert the recovered stats match the pre-kill snapshot (documents
   published, active filters) and that a probe document matches
   exactly the filters it should.

Matched *sets* are the cross-process invariant; RNG-stream identity
is only meaningful in-process (hash randomization perturbs set
iteration order between interpreters) and is covered by
``tests/test_wal_recovery.py``.

Exit status 0 on success; any assertion or timeout fails the smoke.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServiceClient  # noqa: E402

_FILTERS = {
    "f-alpha": ["alpha", "beta"],
    "f-gamma": ["gamma"],
    "f-shared": ["alpha", "gamma"],
    "f-delta": ["delta", "epsilon"],
    "f-zeta": ["zeta"],
}
_DOCS = {
    "d0": ["alpha", "noise0"],
    "d1": ["gamma", "noise1"],
    "d2": ["delta", "epsilon"],
    "d3": ["nothing", "matches"],
    "d4": ["beta", "zeta"],
}


_QUERY_ID = "q-pred"
_QUERY = "alpha NOT zeta"


def _expected_matches(terms):
    doc_terms = set(terms)
    matched = [
        fid
        for fid, fterms in _FILTERS.items()
        if doc_terms & set(fterms)
    ]
    if "alpha" in doc_terms and "zeta" not in doc_terms:
        matched.append(_QUERY_ID)
    return sorted(matched)


def _boot(wal_dir: str) -> "tuple[subprocess.Popen, int]":
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--scheme",
            "move",
            "--nodes",
            "4",
            "--port",
            "0",
            "--wal-dir",
            wal_dir,
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 60
    while True:
        line = process.stdout.readline()
        if line.startswith("READY port="):
            # "READY port=<n> protocol=<v>" — fields are one token each.
            fields = dict(
                part.split("=", 1)
                for part in line.strip().split()
                if "=" in part
            )
            return process, int(fields["port"])
        if not line or time.monotonic() > deadline:
            process.kill()
            raise SystemExit(
                f"server did not become READY (last line: {line!r})"
            )


def main() -> int:
    wal_dir = tempfile.mkdtemp(prefix="serve-smoke-wal-")
    process, port = _boot(wal_dir)
    try:
        with ServiceClient(port=port) as client:
            assert client.ping()
            for fid, terms in _FILTERS.items():
                client.register(fid, terms)
            assert client.server_protocol == 2, client.server_protocol
            qid = client.register_query(_QUERY, query_id=_QUERY_ID)
            assert qid == _QUERY_ID, qid
            client.finalize()
            before = {}
            for doc_id, terms in _DOCS.items():
                plan = client.ingest(doc_id, terms=terms)
                assert plan["matched"] == _expected_matches(terms), (
                    doc_id,
                    plan["matched"],
                )
                before[doc_id] = plan["matched"]
            stats_before = client.stats()
        # Crash hard: no drain, no graceful anything.
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()

    process, port = _boot(wal_dir)
    try:
        with ServiceClient(port=port) as client:
            stats_after = client.stats()
            for key in (
                "active_filters",
                "documents_published",
                "filters_registered",
            ):
                assert stats_after[key] == stats_before[key], (
                    key,
                    stats_before[key],
                    stats_after[key],
                )
            probe_terms = ["alpha", "zeta", "unseen"]
            plan = client.ingest("probe", terms=probe_terms)
            assert plan["matched"] == _expected_matches(probe_terms), (
                plan["matched"]
            )
            metrics = client.metrics()
            assert "repro_documents_published" in metrics
            client.shutdown()
        process.wait(timeout=60)
        assert process.returncode == 0, process.returncode
    finally:
        if process.poll() is None:
            process.kill()
    print("serve smoke OK: recovered after SIGKILL with state intact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
