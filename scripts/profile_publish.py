#!/usr/bin/env python
"""cProfile the batched publish path and print the top-N hot spots.

The companion to docs/PERFORMANCE.md's methodology section: builds one
scheme over a scaled workload (registration/allocation excluded from
the profile), runs ``publish_batch`` under cProfile, and prints the
top-N functions by cumulative time.  Use it to find the next
bottleneck before touching the dissemination hot path.

Examples::

    python scripts/profile_publish.py --scheme move
    python scripts/profile_publish.py --scheme rs --threshold 0.15
    python scripts/profile_publish.py --scheme il --sort tottime --top 40
    python scripts/profile_publish.py --scheme central --threshold 0.2 \
        --backend python --backend csr
    python scripts/profile_publish.py --scheme move --memory \
        --storage slab

``--backend`` selects the matching-kernel backend (threshold mode
only); repeat it to profile the same workload under several backends,
one cProfile section each — the quickest way to see where the
vectorized CSR pass shifts the hot spots.

``--memory`` switches from cProfile to tracemalloc: each pipeline
stage (registration, finalize/allocation, publish) is snapshotted and
its top allocators printed by aggregate size — the tool that located
the per-filter overheads the slab store (``--storage slab``)
eliminates.

Run from the repository root; ``src/`` is put on ``sys.path``
automatically.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MoveSystem  # noqa: E402
from repro.experiments.harness import (  # noqa: E402
    ScaledWorkload,
    build_cluster,
    make_system,
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Profile the batched publish hot path."
    )
    parser.add_argument(
        "--scheme",
        default="move",
        choices=["move", "il", "rs", "central"],
        help="dissemination scheme to profile (default: move)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="VSM similarity threshold; omit for boolean semantics",
    )
    parser.add_argument(
        "--filters",
        type=int,
        default=4_000,
        help="number of registered filters (default: 4000)",
    )
    parser.add_argument(
        "--documents",
        type=int,
        default=300,
        help="number of published documents (default: 300)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=20,
        help="cluster size (default: 20)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="how many rows of the profile to print (default: 25)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--naive-scorer",
        action="store_true",
        help=(
            "disable the score-accumulation kernel (threshold mode "
            "only) to profile the pre-kernel naive scoring loop"
        ),
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help=(
            "profile allocations (tracemalloc) instead of CPU: print "
            "the top allocation sites per pipeline stage"
        ),
    )
    parser.add_argument(
        "--storage",
        default=None,
        choices=["object", "slab"],
        help="filter storage layout (default: the config default)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=["python", "csr"],
        default=None,
        help=(
            "matching-kernel backend to profile; repeat the flag to "
            "emit one cProfile section per backend (default: the "
            "config's auto-resolved backend)"
        ),
    )
    return parser.parse_args(argv)


def build_system(args, backend=None):
    workload = ScaledWorkload(
        num_filters=args.filters,
        num_documents=args.documents,
        num_nodes=args.nodes,
    )
    bundle = workload.build()
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=0
    )
    if args.naive_scorer:
        config = replace(config, matching_kernel=False)
    if backend is not None:
        config = replace(config, matching_backend=backend)
    if args.storage is not None:
        config = replace(config, filter_storage=args.storage)
    system = make_system(
        args.scheme, cluster, config, threshold=args.threshold
    )
    system.subscribe(bundle.filters)
    if isinstance(system, MoveSystem):
        system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    return system, bundle


def profile_backend(args, backend=None) -> None:
    """One cProfile section: fresh system, one profiled publish."""
    system, bundle = build_system(args, backend=backend)
    documents = bundle.documents
    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    plans = system.publish_batch(documents)
    profile.disable()
    elapsed = time.perf_counter() - start
    print(f"== backend={system.matching_backend} ==")
    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue())
    matches = sum(len(plan.matched_filter_ids) for plan in plans)
    mode = (
        f"threshold={args.threshold}"
        if args.threshold is not None
        else "boolean"
    )
    kernel = (
        "naive scorer"
        if args.naive_scorer or args.threshold is None
        else f"kernel/{system.matching_backend}"
    )
    print(
        f"# {args.scheme} ({mode}, {kernel}): "
        f"{len(documents)} docs in {elapsed * 1e3:.1f} ms "
        f"({len(documents) / elapsed:.0f} docs/s), "
        f"{matches} matches over {args.filters} filters"
    )


def _print_memory_stage(
    label: str, before, after, top: int
) -> None:
    """Top allocators of one stage (diff of two snapshots)."""
    import tracemalloc

    stats = after.compare_to(before, "lineno")
    print(f"-- {label}: top {top} allocators --")
    total = sum(stat.size_diff for stat in stats)
    for stat in stats[:top]:
        frame = stat.traceback[0]
        print(
            f"  {stat.size_diff / 1024:+10.1f} KiB  "
            f"({stat.count_diff:+d} blocks)  "
            f"{frame.filename}:{frame.lineno}"
        )
    print(f"  {'':>10}  stage net: {total / (1024 * 1024):+.2f} MiB")


def profile_memory(args, backend=None) -> None:
    """tracemalloc per pipeline stage: register, finalize, publish.

    Filters the traces to this repository so interpreter noise does
    not drown the stage diffs, and reports net bytes per stage plus
    the peak traced size — the numbers docs/PERFORMANCE.md's
    memory-budget section is built from.
    """
    import tracemalloc

    workload = ScaledWorkload(
        num_filters=args.filters,
        num_documents=args.documents,
        num_nodes=args.nodes,
    )
    bundle = workload.build()
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=0
    )
    if args.naive_scorer:
        config = replace(config, matching_kernel=False)
    if backend is not None:
        config = replace(config, matching_backend=backend)
    if args.storage is not None:
        config = replace(config, filter_storage=args.storage)

    root = str(Path(__file__).resolve().parent.parent)
    tracemalloc.start(1)
    try:
        baseline = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.Filter(True, root + "/*")]
        )
        system = make_system(
            args.scheme, cluster, config, threshold=args.threshold
        )
        system.subscribe(bundle.filters)
        registered = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.Filter(True, root + "/*")]
        )
        if isinstance(system, MoveSystem):
            system.seed_frequencies(bundle.offline_corpus())
        system.finalize_registration()
        finalized = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.Filter(True, root + "/*")]
        )
        plans = system.publish_batch(bundle.documents)
        published = tracemalloc.take_snapshot().filter_traces(
            [tracemalloc.Filter(True, root + "/*")]
        )
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    storage = config.filter_storage
    print(f"== memory profile: {args.scheme} (storage={storage}) ==")
    _print_memory_stage(
        "registration", baseline, registered, args.top
    )
    _print_memory_stage(
        "finalize/allocation", registered, finalized, args.top
    )
    _print_memory_stage("publish", finalized, published, args.top)
    matches = sum(len(plan.matched_filter_ids) for plan in plans)
    register_bytes = sum(
        stat.size_diff
        for stat in registered.compare_to(baseline, "lineno")
    )
    print(
        f"# {args.filters} filters, {len(bundle.documents)} docs, "
        f"{matches} matches; registration net "
        f"{register_bytes / (1024 * 1024):.2f} MiB "
        f"({register_bytes / max(1, args.filters):.0f} B/filter), "
        f"traced peak {peak / (1024 * 1024):.2f} MiB"
    )


def main(argv=None) -> int:
    args = parse_args(argv)
    backends = args.backend if args.backend else [None]
    for backend in backends:
        if args.memory:
            profile_memory(args, backend=backend)
        else:
            profile_backend(args, backend=backend)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
