#!/usr/bin/env python
"""cProfile the batched publish path and print the top-N hot spots.

The companion to docs/PERFORMANCE.md's methodology section: builds one
scheme over a scaled workload (registration/allocation excluded from
the profile), runs ``publish_batch`` under cProfile, and prints the
top-N functions by cumulative time.  Use it to find the next
bottleneck before touching the dissemination hot path.

Examples::

    python scripts/profile_publish.py --scheme move
    python scripts/profile_publish.py --scheme rs --threshold 0.15
    python scripts/profile_publish.py --scheme il --sort tottime --top 40
    python scripts/profile_publish.py --scheme central --threshold 0.2 \
        --backend python --backend csr

``--backend`` selects the matching-kernel backend (threshold mode
only); repeat it to profile the same workload under several backends,
one cProfile section each — the quickest way to see where the
vectorized CSR pass shifts the hot spots.

Run from the repository root; ``src/`` is put on ``sys.path``
automatically.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import MoveSystem  # noqa: E402
from repro.experiments.harness import (  # noqa: E402
    ScaledWorkload,
    build_cluster,
    make_system,
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Profile the batched publish hot path."
    )
    parser.add_argument(
        "--scheme",
        default="move",
        choices=["move", "il", "rs", "central"],
        help="dissemination scheme to profile (default: move)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="VSM similarity threshold; omit for boolean semantics",
    )
    parser.add_argument(
        "--filters",
        type=int,
        default=4_000,
        help="number of registered filters (default: 4000)",
    )
    parser.add_argument(
        "--documents",
        type=int,
        default=300,
        help="number of published documents (default: 300)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=20,
        help="cluster size (default: 20)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="how many rows of the profile to print (default: 25)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--naive-scorer",
        action="store_true",
        help=(
            "disable the score-accumulation kernel (threshold mode "
            "only) to profile the pre-kernel naive scoring loop"
        ),
    )
    parser.add_argument(
        "--backend",
        action="append",
        choices=["python", "csr"],
        default=None,
        help=(
            "matching-kernel backend to profile; repeat the flag to "
            "emit one cProfile section per backend (default: the "
            "config's auto-resolved backend)"
        ),
    )
    return parser.parse_args(argv)


def build_system(args, backend=None):
    workload = ScaledWorkload(
        num_filters=args.filters,
        num_documents=args.documents,
        num_nodes=args.nodes,
    )
    bundle = workload.build()
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=0
    )
    if args.naive_scorer:
        config = replace(config, matching_kernel=False)
    if backend is not None:
        config = replace(config, matching_backend=backend)
    system = make_system(
        args.scheme, cluster, config, threshold=args.threshold
    )
    system.register_batch(bundle.filters)
    if isinstance(system, MoveSystem):
        system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    return system, bundle


def profile_backend(args, backend=None) -> None:
    """One cProfile section: fresh system, one profiled publish."""
    system, bundle = build_system(args, backend=backend)
    documents = bundle.documents
    profile = cProfile.Profile()
    start = time.perf_counter()
    profile.enable()
    plans = system.publish_batch(documents)
    profile.disable()
    elapsed = time.perf_counter() - start
    print(f"== backend={system.matching_backend} ==")
    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue())
    matches = sum(len(plan.matched_filter_ids) for plan in plans)
    mode = (
        f"threshold={args.threshold}"
        if args.threshold is not None
        else "boolean"
    )
    kernel = (
        "naive scorer"
        if args.naive_scorer or args.threshold is None
        else f"kernel/{system.matching_backend}"
    )
    print(
        f"# {args.scheme} ({mode}, {kernel}): "
        f"{len(documents)} docs in {elapsed * 1e3:.1f} ms "
        f"({len(documents) / elapsed:.0f} docs/s), "
        f"{matches} matches over {args.filters} filters"
    )


def main(argv=None) -> int:
    args = parse_args(argv)
    backends = args.backend if args.backend else [None]
    for backend in backends:
        profile_backend(args, backend=backend)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
