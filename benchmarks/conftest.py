"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: the
timed body runs the experiment once (``rounds=1`` — these are
system-level experiments, not micro-ops), prints the regenerated
rows/series, and records the headline numbers in
``benchmark.extra_info`` so ``--benchmark-json`` output carries them.

Run everything with::

    pytest benchmarks/ --benchmark-only

Scale: the workloads are the scaled-down paper defaults described in
EXPERIMENTS.md; absolute numbers are simulator units, the reproduction
target is each figure's *shape*.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import ScaledWorkload

#: Shared scaled workload for the cluster benchmarks (Figure 8/9).
BENCH_WORKLOAD = ScaledWorkload(num_filters=4_000, num_documents=300)

#: Reduced variant for the heavier sweeps.
LIGHT_WORKLOAD = ScaledWorkload(num_filters=2_000, num_documents=200)


def run_once(benchmark, runner, *args, **kwargs):
    """Time ``runner`` exactly once and return its result."""
    return benchmark.pedantic(
        runner, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def record(benchmark, **extra):
    """Stash headline numbers into the benchmark's extra info."""
    for key, value in extra.items():
        benchmark.extra_info[key] = value
