"""Hot-path bench — batched dissemination vs the seed per-document loop.

Times the Figure-8 ``BENCH_WORKLOAD`` (4k filters / 300 docs)
dissemination loop two ways on all four schemes:

- *reference* — per-document :meth:`publish` with the ring's home-node
  memo disabled: singleton batches with fresh caches per document,
  recovering the seed implementation's per-term work (MD5 + bisect per
  ring lookup, Bloom hashing per term per document, posting lists
  re-materialized per retrieval);
- *batched* — :meth:`publish_batch` with all hot-path caches live
  (interned term ids, ring memo, per-batch routing and retrieval
  memos shared across the whole stream).

Each scheme is benched in two matching modes: the paper's boolean
any-term semantics and the VSM similarity-threshold extension.  In the
threshold benches the reference loop additionally disables the
score-accumulation kernel (``SystemConfig(matching_kernel=False)``),
recovering the naive score-per-candidate scorer, so the ratio gates
the kernel (:mod:`repro.matching.kernel`); those benches assert the
ISSUE-3 acceptance floor of >= 3x for every scheme.

The speedup ratio is recorded in ``extra_info`` (and asserted >= 2x
for MOVE, the paper's scheme); the committed ``BENCH_hot_path.json``
baseline lets ``scripts/run_benchmarks.py`` flag regressions.

The ``test_csr_*`` benches gate the vectorized CSR matching backend
(ISSUE-6) against the python kernel — both kernels enabled, scores
bit-identical, only throughput differs.  The headline >= 3x acceptance
floor runs on the matching-dominant 50k-filter SiftMatcher loop; the
whole-pipeline variants assert never-worse floors.  Every floor is
recorded as ``csr_floor`` in ``extra_info`` and re-asserted by
``scripts/run_benchmarks.py`` in both gate modes.

``test_tracing_disabled_overhead`` gates the observability layer's
disabled path (ISSUE-4): with the default no-op tracer installed,
``publish_batch`` must run within 2% of the traced-twin-free engine
loop — the only extra work is one ``tracer.enabled`` check per batch.

The predicate benches gate the first-class subscription layer:
``test_predicate_mix_throughput`` times the Figure-8 workload with a
20% boolean-predicate mix against its anchor-only flat twin (the
ratio is the delivery gate's whole cost), and
``test_predicate_flat_overhead`` re-runs the paired dispatcher
measurement on a predicate-free system — the dispatcher now also
checks ``has_predicates`` per batch, and flat workloads must stay
within the same 2% budget.

Set ``REPRO_BENCH_PROFILE=1`` to print a cProfile breakdown of each
timed loop (the profiling methodology of docs/PERFORMANCE.md).
"""

from __future__ import annotations

import cProfile
import gc
import io
import os
import pstats
import statistics
import time
from dataclasses import replace

from repro.core import MoveSystem
from repro.experiments.harness import build_cluster, make_system

from conftest import BENCH_WORKLOAD, record, run_once

#: Flag gating the cProfile hook: profiling skews absolute timings, so
#: it is opt-in and the profiled run is separate from the timed run.
PROFILE_FLAG = "REPRO_BENCH_PROFILE"

#: Threshold for the VSM benches: low enough that candidate sets stay
#: non-trivial at the bench workload's scores, so matching does real
#: scoring work in both loops.
BENCH_THRESHOLD = 0.15


def _build_system(
    scheme: str,
    bundle,
    seed: int = 0,
    threshold=None,
    matching_kernel: bool = True,
    backend: str = None,
):
    """Register + allocate one scheme over the bench workload."""
    workload = bundle.workload
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=seed
    )
    if not matching_kernel:
        config = replace(config, matching_kernel=False)
    if backend is not None:
        config = replace(config, matching_backend=backend)
    system = make_system(scheme, cluster, config, threshold=threshold)
    system.subscribe(bundle.filters)
    if isinstance(system, MoveSystem):
        system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    return system


def _maybe_profile(label: str, runner):
    """Run ``runner`` under cProfile when the env flag is set."""
    if not os.environ.get(PROFILE_FLAG):
        return
    profile = cProfile.Profile()
    profile.enable()
    runner()
    profile.disable()
    stream = io.StringIO()
    pstats.Stats(profile, stream=stream).sort_stats("cumulative")
    pstats.Stats(profile, stream=stream).print_stats(25)
    print(f"\n# cProfile: {label}\n{stream.getvalue()}")


def _time_reference(scheme: str, bundle, threshold=None) -> float:
    """Seconds for the seed-equivalent per-document publish loop.

    With a threshold, the scoring kernel is also disabled so matching
    runs the naive per-candidate cosine loop — the pre-kernel work.
    """
    system = _build_system(
        scheme, bundle, threshold=threshold, matching_kernel=False
    )
    system.cluster.ring.cache_enabled = False
    documents = bundle.documents
    start = time.perf_counter()
    for document in documents:
        system.publish(document)
    return time.perf_counter() - start


def _time_batched(scheme: str, bundle, threshold=None) -> float:
    """Seconds for the batched fast path."""
    system = _build_system(scheme, bundle, threshold=threshold)
    documents = bundle.documents
    start = time.perf_counter()
    system.publish_batch(documents)
    return time.perf_counter() - start


def _best_of(runs: int, timer, *args) -> float:
    """Minimum over ``runs`` fresh-system runs (noise suppression)."""
    return min(timer(*args) for _ in range(runs))


def _bench_scheme(benchmark, scheme: str, threshold=None) -> float:
    """Time both loops, record ratios, return the speedup."""
    bundle = BENCH_WORKLOAD.build()
    label = f"{scheme}+vsm" if threshold is not None else scheme
    _maybe_profile(
        f"{label} reference publish loop",
        lambda: _time_reference(scheme, bundle, threshold),
    )
    _maybe_profile(
        f"{label} publish_batch",
        lambda: _time_batched(scheme, bundle, threshold),
    )
    reference_s = _best_of(5, _time_reference, scheme, bundle, threshold)
    batched_s = _best_of(5, _time_batched, scheme, bundle, threshold)
    # One extra timed run for pytest-benchmark's own stats; the
    # regression gate reads the controlled best-of numbers from
    # extra_info, not this row's wall time (which includes the
    # register/allocate system build).
    run_once(benchmark, _time_batched, scheme, bundle, threshold)
    speedup = reference_s / batched_s
    docs = len(bundle.documents)
    print(
        f"\n{label}: reference {reference_s * 1e3:.1f} ms "
        f"({docs / reference_s:.0f} docs/s) -> batched "
        f"{batched_s * 1e3:.1f} ms ({docs / batched_s:.0f} docs/s), "
        f"speedup {speedup:.2f}x"
    )
    record(
        benchmark,
        reference_seconds=reference_s,
        batched_seconds=batched_s,
        speedup=speedup,
        docs_per_second_batched=docs / batched_s,
        docs_per_second_reference=docs / reference_s,
    )
    return speedup


def test_hot_path_move(benchmark):
    """MOVE dissemination loop: the acceptance gate is >= 1.5x.

    (Originally 2x; the scale tier's cheaper memoized retrieval —
    ``InvertedIndex.retrieve_for_term`` — sped up the per-document
    reference loop itself, compressing the batched ratio to ~1.6-2.4x
    while both absolute paths got faster.)
    """
    speedup = _bench_scheme(benchmark, "move")
    assert speedup >= 1.5


def test_hot_path_il(benchmark):
    """IL baseline loop (no forwarding tables, purest posting path)."""
    speedup = _bench_scheme(benchmark, "il")
    assert speedup >= 2.0


def test_hot_path_rs(benchmark):
    """RS flooding loop, batched for the first time by the pipeline.

    RS floods every partition per document, so only the live-roster
    and per-replica retrieval memos amortize — the per-partition
    replica draw stays per-document work.  No ratio assert: the memo
    win depends on how many distinct replicas the draws visit.
    """
    speedup = _bench_scheme(benchmark, "rs")
    assert speedup > 0


def test_hot_path_central(benchmark):
    """Centralized system loop (single node, SIFT over all terms)."""
    speedup = _bench_scheme(benchmark, "central")
    assert speedup > 0


def test_hot_path_move_vsm(benchmark):
    """MOVE under the VSM threshold: kernel acceptance gate >= 3x."""
    speedup = _bench_scheme(benchmark, "move", threshold=BENCH_THRESHOLD)
    assert speedup >= 3.0


def test_hot_path_il_vsm(benchmark):
    """IL under the VSM threshold: kernel acceptance gate >= 3x."""
    speedup = _bench_scheme(benchmark, "il", threshold=BENCH_THRESHOLD)
    assert speedup >= 3.0


def test_hot_path_rs_vsm(benchmark):
    """RS under the VSM threshold: kernel acceptance gate >= 3x.

    RS is where score accumulation bites hardest — every replica runs
    the full SIFT walk, so the naive loop rescored every candidate at
    every partition.
    """
    speedup = _bench_scheme(benchmark, "rs", threshold=BENCH_THRESHOLD)
    assert speedup >= 3.0


def test_hot_path_central_vsm(benchmark):
    """Centralized under the VSM threshold: kernel gate >= 3x."""
    speedup = _bench_scheme(
        benchmark, "central", threshold=BENCH_THRESHOLD
    )
    assert speedup >= 3.0


# -- CSR backend vs python kernel (ISSUE-6) ----------------------------------
#
# Both backends are bit-identical (the equivalence matrix proves it),
# so these benches gate only throughput: the vectorized CSR block pass
# against the PR 3 python accumulators, kernel enabled on both sides.
# The leverage grows with posting-block size — per-posting python
# bookkeeping is what vectorization removes — so the headline >= 3x
# acceptance floor is asserted where matching dominates (the pure
# SiftMatcher loop at 50k filters) and the whole-pipeline benches
# assert honest never-worse floors (pipeline fixed costs — routing,
# Bloom, per-document vector builds — are backend-independent and
# dilute the ratio).  Each bench also records a ``csr_floor`` so
# ``scripts/run_benchmarks.py --check`` re-asserts the floor even if a
# bench's inline assert is ever relaxed.

import pytest

from repro.config import SystemConfig
from repro.matching import HAVE_NUMPY, InvertedIndex, SiftMatcher
from repro.matching.vsm import VsmScorer

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="CSR backend requires numpy"
)

#: Matching-dominant workload for the matcher-level benches: at 50k
#: filters the posting blocks are large enough that per-posting python
#: work dominates the python kernel's time.
CSR_BULK_FILTERS = 50_000
CSR_MID_FILTERS = 20_000
CSR_DOCUMENTS = 200

_CSR_BUNDLES = {}


def _csr_bundle(num_filters: int):
    """Build (once) and share the big CSR workloads across benches."""
    bundle = _CSR_BUNDLES.get(num_filters)
    if bundle is None:
        from repro.experiments.harness import ScaledWorkload

        bundle = ScaledWorkload(
            num_filters=num_filters,
            num_documents=CSR_DOCUMENTS,
            node_capacity=num_filters,
            seed=7,
        ).build()
        _CSR_BUNDLES[num_filters] = bundle
    return bundle


def _time_matcher(bundle, backend: str) -> float:
    """Best-of-3 seconds for the pure SiftMatcher threshold loop."""
    index = InvertedIndex()
    for profile in bundle.filters:
        index.add_filter(profile)
    matcher = SiftMatcher(
        index,
        scorer=VsmScorer(),
        threshold=BENCH_THRESHOLD,
        config=SystemConfig(matching_backend=backend),
    )
    documents = bundle.documents
    for document in documents[:10]:  # warm caches + CSR hydration
        matcher.match(document)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for document in documents:
            matcher.match(document)
        best = min(best, time.perf_counter() - start)
    return best


def _time_pipeline(scheme, bundle, backend: str) -> float:
    """Best-of-5 seconds for the whole threshold publish_batch."""
    system = _build_system(
        scheme, bundle, threshold=BENCH_THRESHOLD, backend=backend
    )
    documents = bundle.documents
    system.publish_batch(documents[:10])  # warm caches + CSR hydration
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        system.publish_batch(documents)
        best = min(best, time.perf_counter() - start)
    return best


def _bench_csr(benchmark, label, floor, timer, *args) -> float:
    """Time python vs csr, record the ratio, assert the floor."""
    python_s = timer(*args, "python")
    csr_s = timer(*args, "csr")
    run_once(benchmark, timer, *args, "csr")
    speedup = python_s / csr_s
    docs = len(args[-1].documents)  # the bundle is always last
    print(
        f"\n{label}: python {python_s * 1e3:.1f} ms "
        f"({docs / python_s:.0f} docs/s) -> csr "
        f"{csr_s * 1e3:.1f} ms ({docs / csr_s:.0f} docs/s), "
        f"speedup {speedup:.2f}x (floor {floor}x)"
    )
    record(
        benchmark,
        python_seconds=python_s,
        csr_seconds=csr_s,
        speedup=speedup,
        csr_floor=floor,
        docs_per_second_batched=docs / csr_s,
        docs_per_second_reference=docs / python_s,
    )
    assert speedup >= floor
    return speedup


@needs_numpy
def test_csr_matcher_50k(benchmark):
    """Pure matching at 50k filters: the >= 3x acceptance gate.

    The SiftMatcher loop is all kernel work (posting walk + scoring);
    this is the apples-to-apples bench of the CSR block pass against
    the PR 3 python accumulators.
    """
    bundle = _csr_bundle(CSR_BULK_FILTERS)
    _bench_csr(
        benchmark, "csr matcher 50k", 3.0, _time_matcher, bundle
    )


@needs_numpy
def test_csr_matcher_20k(benchmark):
    """Pure matching at 20k filters: mid-scale never-worse floor."""
    bundle = _csr_bundle(CSR_MID_FILTERS)
    _bench_csr(
        benchmark, "csr matcher 20k", 1.3, _time_matcher, bundle
    )


@needs_numpy
def test_csr_central_pipeline_20k(benchmark):
    """Whole Centralized publish_batch at 20k filters.

    One node sees every posting block, so this is the largest
    accumulation surface any scheme offers the backend; the remaining
    gap to the matcher-level ratio is pipeline fixed cost.
    """
    bundle = _csr_bundle(CSR_MID_FILTERS)
    _bench_csr(
        benchmark,
        "csr central pipeline 20k",
        1.3,
        _time_pipeline,
        "central",
        bundle,
    )


@needs_numpy
def test_csr_rs_pipeline_4k(benchmark):
    """Whole RS publish_batch on the Figure-8 workload.

    Every partition replica runs a block match per document, so RS
    multiplies the accumulation surface even at 4k filters.  The
    floor is near-parity, not a win: the memoized scalar retrieval
    path shared by both backends got cheaper
    (``InvertedIndex.retrieve_for_term`` builds the memo entry in one
    call, no RetrievalCost allocation), which ate most of the
    pipeline-level margin on the retrieval-heavy RS scheme — the
    ratio now hovers around 1.1-1.3x with run-to-run noise reaching
    parity, so the floor matches MOVE's parity class.  The
    kernel-level >= 3x acceptance is carried by the 50k matcher
    bench; central pipeline still gates a pipeline-level win.
    """
    bundle = BENCH_WORKLOAD.build()
    _bench_csr(
        benchmark,
        "csr rs pipeline 4k",
        0.75,
        _time_pipeline,
        "rs",
        bundle,
    )


@needs_numpy
def test_csr_move_pipeline_4k(benchmark):
    """Whole MOVE publish_batch on the Figure-8 workload.

    MOVE's home-subset matching mixes lookup mode (shared scalar path,
    backend-invariant by design) with smaller accumulation blocks, so
    the floor here is parity: the CSR default must never cost MOVE
    throughput.
    """
    bundle = BENCH_WORKLOAD.build()
    _bench_csr(
        benchmark,
        "csr move pipeline 4k",
        0.75,
        _time_pipeline,
        "move",
        bundle,
    )


# -- observability disabled-path gate (ISSUE-4) ------------------------------


def _paired_disabled_overhead(system, documents, rounds: int = 60):
    """Median paired public/raw ratio for the disabled tracing path.

    Times the public ``publish_batch`` (tracer dispatcher included)
    against the engine's ``_publish_batch_untraced`` — the *same* code
    object the dispatcher delegates to — on one shared system, so code
    layout, allocator state and cache warmth are identical for both
    paths and the ratio isolates exactly the dispatcher's cost (one
    ``getattr`` + ``enabled`` check + delegating call per batch).

    Noise control for shared/containerized hosts: three warm-up calls
    per path (the first publishes on a fresh system still populate
    interning tables, ring memos, and allocator arenas, and a single
    warm call leaves the first timed rounds measurably hot-vs-cold
    skewed), garbage collection paused across the timed region, the
    two paths alternated first/second every round, and the overhead
    taken as the median of the per-round paired ratios (a scheduler
    stall inflates one round's pair, not the median).
    """
    engine = system._engine
    public = engine.publish_batch
    raw = engine._publish_batch_untraced

    def timed(fn):
        start = time.perf_counter()
        fn(documents)
        return time.perf_counter() - start

    for _ in range(3):
        timed(public)
        timed(raw)
    public_times, raw_times = [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for index in range(rounds):
            if index % 2 == 0:
                public_times.append(timed(public))
                raw_times.append(timed(raw))
            else:
                raw_times.append(timed(raw))
                public_times.append(timed(public))
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios = sorted(
        pub / base for pub, base in zip(public_times, raw_times)
    )
    overhead = statistics.median(ratios) - 1.0
    return overhead, min(public_times), min(raw_times)


def test_tracing_disabled_overhead(benchmark):
    """Disabled-path guarantee: tracing off costs <= 2% on the hot path.

    The default tracer is the no-op singleton, so the public
    ``publish_batch`` does exactly one extra ``enabled`` check (plus
    the delegating call) per batch versus the raw engine loop; the
    paired-median protocol in :func:`_paired_disabled_overhead` keeps
    wall-clock noise inside the 2% budget.
    ``scripts/run_benchmarks.py --check`` re-asserts the recorded
    ``disabled_overhead`` as part of the CI gate.
    """
    bundle = BENCH_WORKLOAD.build()
    system = _build_system("move", bundle)
    overhead, public_s, raw_s = run_once(
        benchmark, _paired_disabled_overhead, system, bundle.documents
    )
    print(
        f"\ntracing disabled overhead: public {public_s * 1e3:.1f} ms vs "
        f"raw engine {raw_s * 1e3:.1f} ms (best-of-round) -> median "
        f"paired ratio {overhead * 100:+.2f}%"
    )
    record(
        benchmark,
        public_seconds=public_s,
        raw_engine_seconds=raw_s,
        disabled_overhead=overhead,
    )
    assert overhead <= 0.02


# -- predicate subscriptions (first-class boolean filters) -------------------


def _time_batched_system(system, documents) -> float:
    """Best-of-5 seconds for publish_batch on a prebuilt system."""
    system.publish_batch(documents[:10])  # warm caches
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        system.publish_batch(documents)
        best = min(best, time.perf_counter() - start)
    return best


def test_predicate_mix_throughput(benchmark):
    """Figure-8 workload with a 20% boolean-predicate mix.

    The predicated system registers the mixed subscriptions; the flat
    twin registers the same profiles reduced to their anchor terms, so
    routing, allocation, and matching work are identical and the ratio
    isolates the delivery gate (predicate lookups + AST evaluation on
    matched candidates).  ``speedup`` records flat/predicated — a
    same-host ratio the ``--check`` gate tracks; it should hover near
    1x because the gate only touches matched candidates.
    """
    from repro.model import Filter, Subscription

    workload = replace(BENCH_WORKLOAD, predicate_fraction=0.2)
    bundle = workload.build()
    flat_profiles = [
        Filter(
            filter_id=p.filter_id, terms=p.terms, owner=p.owner
        )
        if isinstance(p, Subscription)
        else p
        for p in bundle.filters
    ]

    def build(profiles):
        cluster, config = build_cluster(
            workload.num_nodes, workload.node_capacity, seed=0
        )
        system = make_system("move", cluster, config, threshold=None)
        system.subscribe(profiles)
        system.seed_frequencies(bundle.offline_corpus())
        system.finalize_registration()
        return system

    predicated = build(bundle.filters)
    flat = build(flat_profiles)
    assert predicated.has_predicates and not flat.has_predicates
    documents = bundle.documents
    _maybe_profile(
        "move 20% predicate mix publish_batch",
        lambda: predicated.publish_batch(documents),
    )
    flat_s = _time_batched_system(flat, documents)
    predicated_s = run_once(
        benchmark, _time_batched_system, predicated, documents
    )
    ratio = flat_s / predicated_s
    docs = len(documents)
    evaluated = predicated.metrics.counter("predicate_evaluated").value
    rejected = predicated.metrics.counter("predicate_rejected").value
    print(
        f"\nmove 20% predicate mix: flat twin {flat_s * 1e3:.1f} ms "
        f"({docs / flat_s:.0f} docs/s) -> predicated "
        f"{predicated_s * 1e3:.1f} ms ({docs / predicated_s:.0f} docs/s), "
        f"flat/predicated {ratio:.2f}x; gate evaluated {evaluated:.0f}, "
        f"rejected {rejected:.0f}"
    )
    record(
        benchmark,
        flat_seconds=flat_s,
        predicated_seconds=predicated_s,
        speedup=ratio,
        docs_per_second_batched=docs / predicated_s,
        docs_per_second_reference=docs / flat_s,
        predicate_evaluated=evaluated,
        predicate_rejected=rejected,
    )
    assert evaluated > 0 and rejected > 0


def test_predicate_flat_overhead(benchmark):
    """Flat workloads pay <= 2% for the predicate-capable dispatcher.

    Same paired-median protocol as the tracing gate, on a system with
    zero predicated subscriptions: the public ``publish_batch`` now
    performs the ``has_predicates`` check (plus the tracer check) per
    batch before delegating to the identical untraced loop, and that
    dispatch must stay within the 2% hot-path budget.
    ``scripts/run_benchmarks.py --check`` re-asserts the recorded
    ``predicate_flat_overhead``.
    """
    bundle = BENCH_WORKLOAD.build()
    system = _build_system("move", bundle)
    assert not system.has_predicates
    overhead, public_s, raw_s = run_once(
        benchmark, _paired_disabled_overhead, system, bundle.documents
    )
    print(
        f"\npredicate flat overhead: public {public_s * 1e3:.1f} ms vs "
        f"raw engine {raw_s * 1e3:.1f} ms (best-of-round) -> median "
        f"paired ratio {overhead * 100:+.2f}%"
    )
    record(
        benchmark,
        public_seconds=public_s,
        raw_engine_seconds=raw_s,
        predicate_flat_overhead=overhead,
    )
    assert overhead <= 0.02
