"""Hot-path bench — batched dissemination vs the seed per-document loop.

Times the Figure-8 ``BENCH_WORKLOAD`` (4k filters / 300 docs)
dissemination loop two ways on all four schemes:

- *reference* — per-document :meth:`publish` with the ring's home-node
  memo disabled: singleton batches with fresh caches per document,
  recovering the seed implementation's per-term work (MD5 + bisect per
  ring lookup, Bloom hashing per term per document, posting lists
  re-materialized per retrieval);
- *batched* — :meth:`publish_batch` with all hot-path caches live
  (interned term ids, ring memo, per-batch routing and retrieval
  memos shared across the whole stream).

Each scheme is benched in two matching modes: the paper's boolean
any-term semantics and the VSM similarity-threshold extension.  In the
threshold benches the reference loop additionally disables the
score-accumulation kernel (``SystemConfig(matching_kernel=False)``),
recovering the naive score-per-candidate scorer, so the ratio gates
the kernel (:mod:`repro.matching.kernel`); those benches assert the
ISSUE-3 acceptance floor of >= 3x for every scheme.

The speedup ratio is recorded in ``extra_info`` (and asserted >= 2x
for MOVE, the paper's scheme); the committed ``BENCH_hot_path.json``
baseline lets ``scripts/run_benchmarks.py`` flag regressions.

``test_tracing_disabled_overhead`` gates the observability layer's
disabled path (ISSUE-4): with the default no-op tracer installed,
``publish_batch`` must run within 2% of the traced-twin-free engine
loop — the only extra work is one ``tracer.enabled`` check per batch.

Set ``REPRO_BENCH_PROFILE=1`` to print a cProfile breakdown of each
timed loop (the profiling methodology of docs/PERFORMANCE.md).
"""

from __future__ import annotations

import cProfile
import gc
import io
import os
import pstats
import statistics
import time
from dataclasses import replace

from repro.core import MoveSystem
from repro.experiments.harness import build_cluster, make_system

from conftest import BENCH_WORKLOAD, record, run_once

#: Flag gating the cProfile hook: profiling skews absolute timings, so
#: it is opt-in and the profiled run is separate from the timed run.
PROFILE_FLAG = "REPRO_BENCH_PROFILE"

#: Threshold for the VSM benches: low enough that candidate sets stay
#: non-trivial at the bench workload's scores, so matching does real
#: scoring work in both loops.
BENCH_THRESHOLD = 0.15


def _build_system(
    scheme: str,
    bundle,
    seed: int = 0,
    threshold=None,
    matching_kernel: bool = True,
):
    """Register + allocate one scheme over the bench workload."""
    workload = bundle.workload
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=seed
    )
    if not matching_kernel:
        config = replace(config, matching_kernel=False)
    system = make_system(scheme, cluster, config, threshold=threshold)
    system.register_batch(bundle.filters)
    if isinstance(system, MoveSystem):
        system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    return system


def _maybe_profile(label: str, runner):
    """Run ``runner`` under cProfile when the env flag is set."""
    if not os.environ.get(PROFILE_FLAG):
        return
    profile = cProfile.Profile()
    profile.enable()
    runner()
    profile.disable()
    stream = io.StringIO()
    pstats.Stats(profile, stream=stream).sort_stats("cumulative")
    pstats.Stats(profile, stream=stream).print_stats(25)
    print(f"\n# cProfile: {label}\n{stream.getvalue()}")


def _time_reference(scheme: str, bundle, threshold=None) -> float:
    """Seconds for the seed-equivalent per-document publish loop.

    With a threshold, the scoring kernel is also disabled so matching
    runs the naive per-candidate cosine loop — the pre-kernel work.
    """
    system = _build_system(
        scheme, bundle, threshold=threshold, matching_kernel=False
    )
    system.cluster.ring.cache_enabled = False
    documents = bundle.documents
    start = time.perf_counter()
    for document in documents:
        system.publish(document)
    return time.perf_counter() - start


def _time_batched(scheme: str, bundle, threshold=None) -> float:
    """Seconds for the batched fast path."""
    system = _build_system(scheme, bundle, threshold=threshold)
    documents = bundle.documents
    start = time.perf_counter()
    system.publish_batch(documents)
    return time.perf_counter() - start


def _best_of(runs: int, timer, *args) -> float:
    """Minimum over ``runs`` fresh-system runs (noise suppression)."""
    return min(timer(*args) for _ in range(runs))


def _bench_scheme(benchmark, scheme: str, threshold=None) -> float:
    """Time both loops, record ratios, return the speedup."""
    bundle = BENCH_WORKLOAD.build()
    label = f"{scheme}+vsm" if threshold is not None else scheme
    _maybe_profile(
        f"{label} reference publish loop",
        lambda: _time_reference(scheme, bundle, threshold),
    )
    _maybe_profile(
        f"{label} publish_batch",
        lambda: _time_batched(scheme, bundle, threshold),
    )
    reference_s = _best_of(5, _time_reference, scheme, bundle, threshold)
    batched_s = _best_of(5, _time_batched, scheme, bundle, threshold)
    # One extra timed run for pytest-benchmark's own stats; the
    # regression gate reads the controlled best-of numbers from
    # extra_info, not this row's wall time (which includes the
    # register/allocate system build).
    run_once(benchmark, _time_batched, scheme, bundle, threshold)
    speedup = reference_s / batched_s
    docs = len(bundle.documents)
    print(
        f"\n{label}: reference {reference_s * 1e3:.1f} ms "
        f"({docs / reference_s:.0f} docs/s) -> batched "
        f"{batched_s * 1e3:.1f} ms ({docs / batched_s:.0f} docs/s), "
        f"speedup {speedup:.2f}x"
    )
    record(
        benchmark,
        reference_seconds=reference_s,
        batched_seconds=batched_s,
        speedup=speedup,
        docs_per_second_batched=docs / batched_s,
        docs_per_second_reference=docs / reference_s,
    )
    return speedup


def test_hot_path_move(benchmark):
    """MOVE dissemination loop: the acceptance gate is >= 2x."""
    speedup = _bench_scheme(benchmark, "move")
    assert speedup >= 2.0


def test_hot_path_il(benchmark):
    """IL baseline loop (no forwarding tables, purest posting path)."""
    speedup = _bench_scheme(benchmark, "il")
    assert speedup >= 2.0


def test_hot_path_rs(benchmark):
    """RS flooding loop, batched for the first time by the pipeline.

    RS floods every partition per document, so only the live-roster
    and per-replica retrieval memos amortize — the per-partition
    replica draw stays per-document work.  No ratio assert: the memo
    win depends on how many distinct replicas the draws visit.
    """
    speedup = _bench_scheme(benchmark, "rs")
    assert speedup > 0


def test_hot_path_central(benchmark):
    """Centralized system loop (single node, SIFT over all terms)."""
    speedup = _bench_scheme(benchmark, "central")
    assert speedup > 0


def test_hot_path_move_vsm(benchmark):
    """MOVE under the VSM threshold: kernel acceptance gate >= 3x."""
    speedup = _bench_scheme(benchmark, "move", threshold=BENCH_THRESHOLD)
    assert speedup >= 3.0


def test_hot_path_il_vsm(benchmark):
    """IL under the VSM threshold: kernel acceptance gate >= 3x."""
    speedup = _bench_scheme(benchmark, "il", threshold=BENCH_THRESHOLD)
    assert speedup >= 3.0


def test_hot_path_rs_vsm(benchmark):
    """RS under the VSM threshold: kernel acceptance gate >= 3x.

    RS is where score accumulation bites hardest — every replica runs
    the full SIFT walk, so the naive loop rescored every candidate at
    every partition.
    """
    speedup = _bench_scheme(benchmark, "rs", threshold=BENCH_THRESHOLD)
    assert speedup >= 3.0


def test_hot_path_central_vsm(benchmark):
    """Centralized under the VSM threshold: kernel gate >= 3x."""
    speedup = _bench_scheme(
        benchmark, "central", threshold=BENCH_THRESHOLD
    )
    assert speedup >= 3.0


# -- observability disabled-path gate (ISSUE-4) ------------------------------


def _paired_disabled_overhead(system, documents, rounds: int = 30):
    """Median paired public/raw ratio for the disabled tracing path.

    Times the public ``publish_batch`` (tracer dispatcher included)
    against the engine's ``_publish_batch_untraced`` — the *same* code
    object the dispatcher delegates to — on one shared system, so code
    layout, allocator state and cache warmth are identical for both
    paths and the ratio isolates exactly the dispatcher's cost (one
    ``getattr`` + ``enabled`` check + delegating call per batch).

    Noise control for shared/containerized hosts: one warm-up call per
    path, garbage collection paused across the timed region, the two
    paths alternated first/second every round, and the overhead taken
    as the median of the per-round paired ratios (a scheduler stall
    inflates one round's pair, not the median).
    """
    engine = system._engine
    public = engine.publish_batch
    raw = engine._publish_batch_untraced

    def timed(fn):
        start = time.perf_counter()
        fn(documents)
        return time.perf_counter() - start

    timed(public)
    timed(raw)
    public_times, raw_times = [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for index in range(rounds):
            if index % 2 == 0:
                public_times.append(timed(public))
                raw_times.append(timed(raw))
            else:
                raw_times.append(timed(raw))
                public_times.append(timed(public))
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios = sorted(
        pub / base for pub, base in zip(public_times, raw_times)
    )
    overhead = statistics.median(ratios) - 1.0
    return overhead, min(public_times), min(raw_times)


def test_tracing_disabled_overhead(benchmark):
    """Disabled-path guarantee: tracing off costs <= 2% on the hot path.

    The default tracer is the no-op singleton, so the public
    ``publish_batch`` does exactly one extra ``enabled`` check (plus
    the delegating call) per batch versus the raw engine loop; the
    paired-median protocol in :func:`_paired_disabled_overhead` keeps
    wall-clock noise inside the 2% budget.
    ``scripts/run_benchmarks.py --check`` re-asserts the recorded
    ``disabled_overhead`` as part of the CI gate.
    """
    bundle = BENCH_WORKLOAD.build()
    system = _build_system("move", bundle)
    overhead, public_s, raw_s = run_once(
        benchmark, _paired_disabled_overhead, system, bundle.documents
    )
    print(
        f"\ntracing disabled overhead: public {public_s * 1e3:.1f} ms vs "
        f"raw engine {raw_s * 1e3:.1f} ms (best-of-round) -> median "
        f"paired ratio {overhead * 100:+.2f}%"
    )
    record(
        benchmark,
        public_seconds=public_s,
        raw_engine_seconds=raw_s,
        disabled_overhead=overhead,
    )
    assert overhead <= 0.02
