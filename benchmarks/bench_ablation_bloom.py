"""Ablation bench — the Bloom-filter membership check (Section V).

"The term membership check helps reduce the forwarding cost": terms a
document shares with no registered filter never leave the ingest node.
This ablation runs MOVE with the Bloom filter on and off and compares
routing messages and throughput.

Expected shape: with the check off, every document term produces a
routing message (fanout grows towards the number of distinct home
nodes), while throughput drops only moderately — the pruned visits are
cheap no-match lookups — matching the paper's framing of the check as
a forwarding-cost optimization.
"""

from __future__ import annotations

from repro.config import (
    AllocationConfig,
    SystemConfig,
)
from repro.core import MoveSystem
from repro.experiments.harness import (
    ClusterThroughputHarness,
    build_cluster,
)
from conftest import BENCH_WORKLOAD, record, run_once


def _run(use_bloom: bool, bundle):
    workload = bundle.workload
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=0
    )
    config = SystemConfig(
        cluster=config.cluster,
        cost_model=config.cost_model,
        allocation=config.allocation,
        use_bloom_filter=use_bloom,
        expected_filter_terms=config.expected_filter_terms,
        seed=config.seed,
    )
    system = MoveSystem(cluster, config)
    system.subscribe(bundle.filters)
    system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    messages = 0
    for document in bundle.documents[:100]:
        messages += system.publish(document).routing_messages
    harness = ClusterThroughputHarness(
        system, cluster, injection_rate=workload.injection_rate
    )
    result = harness.run(bundle.documents[100:])
    return messages, result.throughput


def _sweep():
    bundle = BENCH_WORKLOAD.build()
    with_bloom = _run(True, bundle)
    without_bloom = _run(False, bundle)
    return {"on": with_bloom, "off": without_bloom}


def test_ablation_bloom_filter(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    print("# Ablation: bloom membership check")
    for key in ("on", "off"):
        messages, throughput = results[key]
        print(
            f"  bloom {key:3s}: {messages:6d} routing messages / 100 "
            f"docs, {throughput:8.1f} docs/s"
        )
    record(
        benchmark,
        messages_on=results["on"][0],
        messages_off=results["off"][0],
        tput_on=results["on"][1],
        tput_off=results["off"][1],
    )
    # The membership check prunes forwarding (paper Section V).
    assert results["on"][0] < results["off"][0]
