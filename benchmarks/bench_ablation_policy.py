"""Ablation bench — proactive vs passive allocation (Section V).

The paper argues for proactive allocation: the passive policy only
allocates after the traffic patterns are learned, by which time the
hot home nodes have already absorbed the unbalanced matching load, and
the filter movement lands on top of it.  This bench drives both
policies over the same stream and compares the hot-spot exposure
during the learning window.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.config import AllocationConfig, SystemConfig
from repro.core import (
    MoveSystem,
    PassivePolicy,
    ProactivePolicy,
    run_policy,
)
from repro.experiments.harness import build_cluster
from conftest import LIGHT_WORKLOAD, record, run_once


def _run(policy_name: str, bundle):
    workload = bundle.workload
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=0
    )
    system = MoveSystem(cluster, config)
    system.subscribe(bundle.filters)
    policy = (
        ProactivePolicy()
        if policy_name == "proactive"
        else PassivePolicy(learn_documents=len(bundle.documents) // 4)
    )
    return run_policy(
        policy,
        system,
        bundle.offline_corpus(),
        bundle.documents,
    )


def _sweep():
    bundle = LIGHT_WORKLOAD.build()
    return {
        name: _run(name, bundle) for name in ("proactive", "passive")
    }


def test_ablation_allocation_policy(benchmark):
    reports = run_once(benchmark, _sweep)
    print()
    print("# Ablation: proactive vs passive allocation")
    for name, report in reports.items():
        print(
            f"  {name:9s}: warmup hot-node entries "
            f"{report.warmup_hot_entries:10.0f}, steady "
            f"{report.steady_hot_entries:10.0f}, "
            f"{report.allocations} allocation(s)"
        )
    record(
        benchmark,
        warmup_proactive=reports["proactive"].warmup_hot_entries,
        warmup_passive=reports["passive"].warmup_hot_entries,
    )
    # The paper's argument: passive exposes a hotter learning window.
    assert (
        reports["passive"].warmup_hot_entries
        >= reports["proactive"].warmup_hot_entries
    )
