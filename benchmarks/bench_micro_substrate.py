"""Micro-benchmarks of the cluster substrate (storage, gossip, client).

Companion to ``bench_micro_components.py``: times the LSM column-family
store's write/read/compaction paths, gossip round costs, and the
replicated client's put/get — the substrate operations under every
system-level number.
"""

from __future__ import annotations

from repro.cluster import (
    Cluster,
    ColumnFamilyStore,
    GossipMembership,
    KeyValueClient,
)
from repro.config import ClusterConfig


def test_micro_lsm_writes(benchmark):
    def write_batch():
        store = ColumnFamilyStore("cf", memtable_flush_threshold=500)
        for i in range(5_000):
            store.put(f"row{i % 1_000}", f"col{i % 5}", i)
        return store.flushes

    flushes = benchmark(write_batch)
    assert flushes >= 1


def test_micro_lsm_reads_across_runs(benchmark):
    store = ColumnFamilyStore("cf", memtable_flush_threshold=200)
    for i in range(2_000):
        store.put(f"row{i % 400}", "col", i)
    store.flush()

    def read_batch():
        return sum(
            store.get(f"row{i}", "col") or 0 for i in range(400)
        )

    total = benchmark(read_batch)
    assert total > 0


def test_micro_lsm_compaction(benchmark):
    def build_and_compact():
        store = ColumnFamilyStore("cf", memtable_flush_threshold=100)
        for i in range(2_000):
            store.put(f"row{i % 500}", "col", i)
        store.compact()
        return store.sstable_count

    count = benchmark(build_and_compact)
    assert count == 1


def test_micro_gossip_rounds(benchmark):
    def run_rounds():
        gossip = GossipMembership(
            [f"n{i}" for i in range(50)], seed=1
        )
        gossip.tick(10)
        return gossip.round_number

    rounds = benchmark(run_rounds)
    assert rounds == 10


def test_micro_client_put_get(benchmark):
    cluster = Cluster(ClusterConfig(num_nodes=16, num_racks=4, seed=1))
    client = KeyValueClient(cluster, replica_count=3)

    def roundtrip_batch():
        for i in range(200):
            client.put(f"key{i}", i)
        return sum(client.get(f"key{i}") for i in range(200))

    total = benchmark(roundtrip_batch)
    assert total == sum(range(200))
