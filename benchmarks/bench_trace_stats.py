"""Section VI-A statistics tables bench.

Regenerates the two textual statistics tables of the evaluation setup:

- **tbl-msn** — the MSN filter-trace statistics (mean 2.843
  terms/query; cumulative <=1/2/3-term shares 31.33/67.75/85.31 %;
  top-1000 accumulated popularity 0.437 of 2.843),
- **tbl-overlap** — the top-1000 query-term vs document-term overlaps
  (26.9 % for AP, 31.3 % for WT).
"""

from __future__ import annotations

from repro.experiments.fig4_term_popularity import run_fig4
from repro.workloads import SharedVocabulary, TREC_AP_PROFILE, TREC_WT_PROFILE
from conftest import record, run_once


def _stats_tables():
    trace = run_fig4(num_filters=20_000, vocabulary_size=10_000)
    overlaps = {}
    for profile in (TREC_AP_PROFILE, TREC_WT_PROFILE):
        vocabulary = SharedVocabulary(
            size=10_000,
            overlap_fraction=profile.query_overlap,
            seed=7,
        )
        overlaps[profile.name] = vocabulary.measured_overlap()
    return trace, overlaps


def test_trace_statistics_tables(benchmark):
    trace, overlaps = run_once(benchmark, _stats_tables)
    print()
    print(trace.format_report())
    print("# top-1000-equivalent query/document term overlap")
    print(f"  trec-ap: {overlaps['trec-ap']:.3f}   (paper: 0.269)")
    print(f"  trec-wt: {overlaps['trec-wt']:.3f}   (paper: 0.313)")
    record(
        benchmark,
        mean_terms=trace.mean_terms_per_query,
        ap_overlap=overlaps["trec-ap"],
        wt_overlap=overlaps["trec-wt"],
    )
    assert abs(trace.mean_terms_per_query - 2.843) < 0.1
    assert abs(overlaps["trec-ap"] - 0.269) < 0.02
    assert abs(overlaps["trec-wt"] - 0.313) < 0.02
