"""Figure 9(d) bench — filter availability under failure by placement.

Regenerates the availability comparison under rack-correlated failures
(0.3 of the nodes, whole racks first).  Reproduction targets: rack
placement has the lowest availability (a dead rack takes the home node
and every copy), ring placement the highest, and Move's hybrid close
to ring — the reason MOVE combines both policies.
"""

from __future__ import annotations

from repro.experiments.fig9_maintenance import run_fig9cd
from conftest import LIGHT_WORKLOAD, record, run_once


def test_fig9d_failure_availability(benchmark):
    result = run_once(
        benchmark,
        run_fig9cd,
        failure_rates=(0.0, 0.3),
        base=LIGHT_WORKLOAD,
        rack_correlated=True,
    )
    print()
    print(result.format_report())
    record(
        benchmark,
        **{
            f"avail_{placement}_{rate:g}": value
            for (placement, rate), value in result.availability.items()
        },
    )
    rack = result.availability[("rack", 0.3)]
    ring = result.availability[("ring", 0.3)]
    move = result.availability[("move", 0.3)]
    assert rack <= ring
    assert rack <= move
    assert move >= 0.9  # hybrid keeps availability near ring's
