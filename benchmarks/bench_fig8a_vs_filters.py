"""Figure 8(a) bench — cluster throughput vs number of filters.

Regenerates the Move/IL/RS curves over the scaled filter-count sweep
(paper: 1e5 → 1e7; here /1000).  Reproduction targets: every scheme's
throughput falls as P grows, and at the paper's default operating
point the ordering is Move > RS > IL (paper: 93 / 70 / 42 at P=1e7).
"""

from __future__ import annotations

from repro.experiments.fig8_cluster import run_fig8a
from conftest import BENCH_WORKLOAD, record, run_once


def test_fig8a_throughput_vs_filters(benchmark):
    sweep = run_once(
        benchmark,
        run_fig8a,
        filter_counts=(1_000, 4_000, 10_000),
        base=BENCH_WORKLOAD,
    )
    print()
    print(sweep.format_report())
    final = {s: sweep.series[s].ys[-1] for s in ("Move", "IL", "RS")}
    record(benchmark, **{f"tput_{k}": v for k, v in final.items()})
    for scheme in ("Move", "IL", "RS"):
        ys = sweep.series[scheme].ys
        assert ys[0] > ys[-1]
    # Paper ordering at every swept point: Move first.
    assert sweep.final_ordering()[0] == "Move"
    move_ys = sweep.series["Move"].ys
    il_ys = sweep.series["IL"].ys
    assert all(m > i for m, i in zip(move_ys, il_ys))
