#!/usr/bin/env python
"""Service dataplane ingest bench: wire protocol x WAL durability.

The serve-mode companion to ``bench_scale.py``: it measures what the
dataplane throughput overhaul actually buys by driving N concurrent
:class:`~repro.serve.client.ServiceClient` connections through a real
:class:`~repro.serve.server.ServiceServer` +
:class:`~repro.serve.runtime.ServiceRuntime` (TCP loopback, WAL on
disk), sweeping the four axes of the hot path::

    connections x client batching x fsync_interval x protocol

The **seed path** is emulated exactly: ``protocol="json"`` with
``wal_group_commit=False`` at ``fsync_interval=1`` is one JSON line
and one fsync per append, which is what the service spoke before the
binary protocol and group commit landed.  The headline ratio divides
the binary + group-commit configuration by that baseline — a
same-host ratio, so it is machine-portable the same way the
``--check`` gate's other ratios are.

The second half times **recovery**: the journal written by the
headline run is recovered twice — full replay, then checkpoint +
snapshot-boot — and the recovered twins are checked bit-identical
(RNG fingerprint + stored replicas).  Checkpointed recovery must beat
full replay by ``recovery_speedup_min``.

Two tiers::

    python benchmarks/bench_serve_ingest.py --tier small   # CI smoke
    python benchmarks/bench_serve_ingest.py --tier full --json BENCH_serve.json

Floors travel inside the JSON (see ``FLOORS``) and are re-asserted
from the committed file by ``scripts/run_benchmarks.py`` in both gate
modes; the bench itself also hard-fails when a fresh run misses them.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import shutil
import sys
import tempfile
import threading
import time
import zlib
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.model import Filter  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeConfig,
    ServiceClient,
    ServiceRuntime,
    ServiceServer,
)
from repro.serve.journal import JournaledSystem  # noqa: E402

#: Self-describing floors recorded into the JSON and re-asserted from
#: the committed file by scripts/run_benchmarks.py.  Both are
#: same-host ratios (new path vs old path on identical hardware), so
#: they are machine-portable.
FLOORS = {
    # Binary + group commit vs seed JSON + per-append fsync, both at
    # fsync_interval=1 (the ISSUE's >= 2x acceptance criterion).
    "ingest_speedup_min": 2.0,
    # Snapshot-boot recovery vs full-history replay of the same WAL.
    "recovery_speedup_min": 5.0,
}

TIERS = {
    "small": {"docs": 1_200, "filters": 200, "connections": 2},
    "full": {"docs": 8_000, "filters": 500, "connections": 4},
}

_VOCAB_SIZE = 600
_DOC_TERMS = 8
_NODES = 4


def _vocab():
    return [f"term{i:04d}" for i in range(_VOCAB_SIZE)]


def _profiles(count: int):
    rng = random.Random(11)
    vocab = _vocab()
    return [
        {
            "filter_id": f"f{i:05d}",
            "terms": sorted(rng.sample(vocab, rng.randint(2, 4))),
        }
        for i in range(count)
    ]


def _doc_entries(worker: int, count: int):
    """Deterministic per-connection document stream."""
    rng = random.Random(1000 + worker)
    vocab = _vocab()
    return [
        {
            "doc_id": f"w{worker}-d{i}",
            "terms": rng.choices(vocab, k=_DOC_TERMS),
        }
        for i in range(count)
    ]


def _sweep(tier: dict):
    """The benchmark grid: every config publishes the same workload."""
    conns = tier["connections"]
    grid = [
        # The seed path: JSON lines, one fsync per WAL append.
        dict(name="json-per-append", protocol="json",
             group_commit=False, fsync_interval=1,
             connections=conns, client_batch=1),
        # Group commit alone (protocol held at JSON).
        dict(name="json-group-commit", protocol="json",
             group_commit=True, fsync_interval=1,
             connections=conns, client_batch=1),
        # Binary frames alone, per-document requests.
        dict(name="binary-group-commit", protocol="binary",
             group_commit=True, fsync_interval=1,
             connections=conns, client_batch=1),
        # The headline: binary frames + batched requests + group
        # commit — the full overhaul.
        dict(name="binary-batched", protocol="binary",
             group_commit=True, fsync_interval=1,
             connections=conns, client_batch=16),
        # Connection-count sweep around the headline.
        dict(name="binary-batched-conn1", protocol="binary",
             group_commit=True, fsync_interval=1,
             connections=1, client_batch=16),
        # fsync_interval sweep: batched fsync instead of (or on top
        # of) the commit window.
        dict(name="binary-batched-fsync8", protocol="binary",
             group_commit=True, fsync_interval=8,
             connections=conns, client_batch=16),
    ]
    if tier["connections"] >= 4:
        grid.append(
            dict(name="binary-batched-conn8", protocol="binary",
                 group_commit=True, fsync_interval=1,
                 connections=8, client_batch=16)
        )
    return grid


def run_config(spec: dict, tier: dict, wal_dir: str) -> dict:
    """Serve one configuration and hammer it from client threads."""
    total_docs = tier["docs"]
    connections = spec["connections"]
    per_worker = total_docs // connections
    profiles = _profiles(tier["filters"])
    errors: list = []

    def client_work(worker: int, port: int) -> None:
        try:
            with ServiceClient(
                port=port, protocol=spec["protocol"]
            ) as client:
                entries = _doc_entries(worker, per_worker)
                step = spec["client_batch"]
                for start in range(0, len(entries), step):
                    chunk = entries[start:start + step]
                    if step == 1:
                        client.ingest(
                            chunk[0]["doc_id"], terms=chunk[0]["terms"]
                        )
                    else:
                        client.ingest_batch(chunk)
        except Exception as error:  # noqa: BLE001 - reported below
            errors.append(error)

    async def scenario() -> dict:
        runtime = ServiceRuntime(
            ServeConfig(
                scheme="move",
                num_nodes=_NODES,
                seed=0,
                wal_dir=wal_dir,
                fsync_interval=spec["fsync_interval"],
                wal_group_commit=spec["group_commit"],
                queue_capacity=4_096,
            )
        )
        server = ServiceServer(runtime, port=0)
        await server.start()
        await runtime.command(
            "register_batch",
            [
                Filter.from_terms(p["filter_id"], p["terms"])
                for p in profiles
            ],
        )
        await runtime.command("finalize")
        writer = runtime.journal.writer
        fsyncs_before = writer.fsyncs
        records_before = writer.records_synced
        threads = [
            threading.Thread(target=client_work, args=(w, server.port))
            for w in range(connections)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        await asyncio.gather(
            *(asyncio.to_thread(t.join) for t in threads)
        )
        elapsed = time.perf_counter() - started
        fsyncs = writer.fsyncs - fsyncs_before
        records = writer.records_synced - records_before
        group_commits = writer.group_commits
        await server.close()
        return {
            "elapsed": elapsed,
            "fsyncs": fsyncs,
            "records": records,
            "group_commits": group_commits,
        }

    measured = asyncio.run(scenario())
    if errors:
        raise RuntimeError(
            f"{spec['name']}: client worker failed: {errors[0]!r}"
        )
    docs = per_worker * connections
    elapsed = measured["elapsed"]
    return {
        **{k: spec[k] for k in (
            "name", "protocol", "connections", "client_batch",
            "fsync_interval", "group_commit",
        )},
        "docs": docs,
        "seconds": round(elapsed, 3),
        "docs_per_second": round(docs / elapsed, 1),
        "wal_fsyncs": measured["fsyncs"],
        "wal_records": measured["records"],
        "records_per_fsync": round(
            measured["records"] / max(1, measured["fsyncs"]), 2
        ),
        "wal_group_commits": measured["group_commits"],
    }


def _fingerprint(journal: JournaledSystem) -> tuple:
    system = journal.system
    replicas = {
        node_id: index.stored_replica_count()
        for node_id, index in system._home_indexes.items()
    }
    # The checkpoint marker logged between the two boots bumps the
    # lsn without touching state, so the lsn is not part of the print.
    return (
        zlib.crc32(repr(system._rng.getstate()).encode()),
        tuple(sorted(replicas.items())),
    )


def run_recovery(wal_dir: str) -> dict:
    """Full replay vs checkpoint + snapshot boot over the same WAL."""
    full = JournaledSystem(wal_dir)
    full_seconds = full.recovery_seconds
    full_records = full.recovery_replayed_records
    full_print = _fingerprint(full)
    checkpoint = full.checkpoint()
    full.close()

    snap = JournaledSystem(wal_dir)
    snap_seconds = snap.recovery_seconds
    snap_records = snap.recovery_replayed_records
    snap_print = _fingerprint(snap)
    snap.close()

    return {
        "full_replay_seconds": round(full_seconds, 4),
        "full_replayed_records": full_records,
        "checkpoint_seconds": round(checkpoint["seconds"], 4),
        "snapshot_bytes": checkpoint["bytes"],
        "segments_removed": checkpoint["segments_removed"],
        "snapshot_recovery_seconds": round(snap_seconds, 4),
        "tail_replayed_records": snap_records,
        "speedup": round(full_seconds / max(1e-9, snap_seconds), 1),
        "bit_identical": full_print == snap_print,
    }


def run_tier(tier_name: str) -> dict:
    tier = TIERS[tier_name]
    configs = []
    headline_wal: str | None = None
    for spec in _sweep(tier):
        wal_dir = tempfile.mkdtemp(prefix=f"serve-bench-{spec['name']}-")
        result = run_config(spec, tier, wal_dir)
        configs.append(result)
        print(
            f"   {result['name']:<22s} {result['docs_per_second']:>9,.0f} "
            f"docs/s  ({result['connections']} conns, batch "
            f"{result['client_batch']}, fsync {result['fsync_interval']}"
            f"{', GC' if result['group_commit'] else ''}; "
            f"{result['records_per_fsync']:.1f} rec/fsync)",
            flush=True,
        )
        if spec["name"] == "binary-batched":
            headline_wal = wal_dir  # recovery reuses this journal
        else:
            shutil.rmtree(wal_dir, ignore_errors=True)

    by_name = {entry["name"]: entry for entry in configs}
    baseline = by_name["json-per-append"]
    headline = by_name["binary-batched"]
    speedup = round(
        headline["docs_per_second"] / baseline["docs_per_second"], 2
    )
    print(
        f"   ingest speedup: {speedup:.2f}x "
        f"({headline['name']} vs {baseline['name']}, floor "
        f"{FLOORS['ingest_speedup_min']}x)",
        flush=True,
    )

    assert headline_wal is not None
    recovery = run_recovery(headline_wal)
    shutil.rmtree(headline_wal, ignore_errors=True)
    print(
        f"   recovery speedup: {recovery['speedup']:.1f}x "
        f"(full {recovery['full_replay_seconds']:.3f}s / "
        f"{recovery['full_replayed_records']} records vs snapshot "
        f"{recovery['snapshot_recovery_seconds']:.4f}s / "
        f"{recovery['tail_replayed_records']} tail records; twins "
        f"{'identical' if recovery['bit_identical'] else 'DIVERGED'})",
        flush=True,
    )

    failures = []
    if speedup < FLOORS["ingest_speedup_min"]:
        failures.append(
            f"ingest speedup {speedup:.2f}x below floor "
            f"{FLOORS['ingest_speedup_min']}x"
        )
    if recovery["speedup"] < FLOORS["recovery_speedup_min"]:
        failures.append(
            f"recovery speedup {recovery['speedup']:.1f}x below floor "
            f"{FLOORS['recovery_speedup_min']}x"
        )
    if not recovery["bit_identical"]:
        failures.append("snapshot-recovered twin diverged from replay")
    for failure in failures:
        print(f"FAILURE: {failure}", file=sys.stderr)
    if failures:
        raise SystemExit(1)

    return {
        "workload": {
            "docs": tier["docs"],
            "filters": tier["filters"],
            "vocabulary": _VOCAB_SIZE,
            "doc_terms": _DOC_TERMS,
            "nodes": _NODES,
        },
        "configs": configs,
        "ingest": {
            "baseline": baseline["name"],
            "headline": headline["name"],
            "baseline_docs_per_second": baseline["docs_per_second"],
            "headline_docs_per_second": headline["docs_per_second"],
            "speedup": speedup,
        },
        "recovery": recovery,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Service dataplane ingest/recovery bench."
    )
    parser.add_argument(
        "--tier",
        default="small",
        choices=["small", "full", "both"],
        help="workload tier (default: small)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write the result trajectory to this file",
    )
    args = parser.parse_args(argv)

    tiers = ["small", "full"] if args.tier == "both" else [args.tier]
    payload = {
        "version": 1,
        "datetime": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "floors": FLOORS,
        "tiers": {},
    }
    for tier_name in tiers:
        print(f"== tier: {tier_name} ==", flush=True)
        payload["tiers"][tier_name] = run_tier(tier_name)
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
