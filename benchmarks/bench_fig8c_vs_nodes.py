"""Figure 8(c) bench — cluster throughput vs node count.

Regenerates the throughput-vs-N curves over the paper's axis (20 to
100 nodes).  Reproduction targets: every scheme improves with more
nodes, and Move stays the highest across the sweep.
"""

from __future__ import annotations

from repro.experiments.fig8_cluster import run_fig8c
from conftest import BENCH_WORKLOAD, record, run_once


def test_fig8c_throughput_vs_nodes(benchmark):
    sweep = run_once(
        benchmark,
        run_fig8c,
        node_counts=(20, 40, 60, 80, 100),
        base=BENCH_WORKLOAD,
    )
    print()
    print(sweep.format_report())
    final = {s: sweep.series[s].ys[-1] for s in ("Move", "IL", "RS")}
    record(benchmark, **{f"tput_{k}": v for k, v in final.items()})
    for scheme in ("Move", "IL", "RS"):
        ys = sweep.series[scheme].ys
        assert ys[-1] > ys[0]  # more nodes, higher throughput
    # Move highest at every point of the paper's axis.
    for index in range(len(sweep.series["Move"].ys)):
        move = sweep.series["Move"].ys[index]
        assert move >= sweep.series["IL"].ys[index]
        assert move >= sweep.series["RS"].ys[index]
