"""Figure 9(c) bench — throughput under node failure by placement.

Regenerates the throughput comparison of the three placements of
allocated filters (Move's hybrid vs pure ring vs pure rack) at failure
rates 0 and 0.3.  Reproduction targets: rack-aware placement has the
highest throughput (cheap intra-rack transfers) and ring-based the
lowest, with Move's hybrid in between — at both failure rates.
"""

from __future__ import annotations

from repro.experiments.fig9_maintenance import run_fig9cd
from conftest import LIGHT_WORKLOAD, record, run_once


def test_fig9c_failure_throughput(benchmark):
    result = run_once(
        benchmark,
        run_fig9cd,
        failure_rates=(0.0, 0.3),
        base=LIGHT_WORKLOAD,
    )
    print()
    print(result.format_report())
    record(
        benchmark,
        **{
            f"tput_{placement}_{rate:g}": value
            for (placement, rate), value in result.throughput.items()
        },
    )
    for rate in (0.0, 0.3):
        rack = result.throughput[("rack", rate)]
        ring = result.throughput[("ring", rate)]
        move = result.throughput[("move", rate)]
        assert rack >= ring  # paper: rack fastest, ring slowest
        assert rack >= move * 0.95
