"""Figure 6 bench — single-node throughput, TREC-AP-like documents.

Regenerates the fixed-R sweeps (R scaled from the paper's 1e5–1e7):
throughput falls as Q grows at each fixed R, and at the largest R the
smallest Q dips below its neighbour because the filter working set
overflows memory (the paper's Q=2 exception, bound C ~ 5e6 at paper
scale).
"""

from __future__ import annotations

from repro.experiments.fig67_single_node import run_fig6
from conftest import record, run_once


def test_fig6_single_node_ap(benchmark):
    sweep = run_once(benchmark, run_fig6)
    print()
    print(sweep.format_report())
    largest = sweep.series[-1]
    record(
        benchmark,
        corpus=sweep.corpus,
        largest_r_label=largest.label,
        q2=largest.ys[0],
        q10=largest.ys[1],
    )
    # Declining trend at every fixed R (from Q=10 onward).
    for series in sweep.series:
        assert series.ys[1] > series.ys[-1]
    # Disk knee: Q=2 below Q=10 at the largest R only.
    assert largest.ys[0] < largest.ys[1]
    assert sweep.series[0].ys[0] > sweep.series[0].ys[1]
