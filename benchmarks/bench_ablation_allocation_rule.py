"""Ablation bench — the allocation rule (DESIGN.md section 5).

Compares the throughput of MOVE under the three sqrt rules and a
uniform-allocation control at the default operating point:

- ``sqrt_q``      — Theorem 1 (n_i proportional to sqrt(q_i)),
- ``sqrt_beta_q`` — Theorem 2 (n_i proportional to sqrt(1 + beta q_i)),
- ``sqrt_pq``     — the general capacity-limited rule MOVE deploys,
- ``uniform``     — every home node gets the same allocation factor.

Expected shape: the statistics-driven rules beat uniform on the skewed
workload; ``sqrt_pq`` should be competitive with the best.
"""

from __future__ import annotations

from repro.experiments.harness import run_scheme_once
from conftest import BENCH_WORKLOAD, record, run_once

RULES = ("sqrt_q", "sqrt_beta_q", "sqrt_pq", "uniform")


def _sweep():
    bundle = BENCH_WORKLOAD.build()
    return {
        rule: run_scheme_once(
            "Move", bundle, allocation_rule=rule
        ).throughput
        for rule in RULES
    }


def test_ablation_allocation_rule(benchmark):
    throughput = run_once(benchmark, _sweep)
    print()
    print("# Ablation: allocation rule (Move throughput, docs/s)")
    for rule in RULES:
        print(f"  {rule:12s} {throughput[rule]:10.1f}")
    record(benchmark, **{f"tput_{k}": v for k, v in throughput.items()})
    best_adaptive = max(
        throughput[rule] for rule in RULES if rule != "uniform"
    )
    # Statistics-driven allocation should not lose to uniform.
    assert best_adaptive >= throughput["uniform"] * 0.95
    # The deployed rule is competitive with the best adaptive rule.
    assert throughput["sqrt_pq"] >= best_adaptive * 0.7
