"""Micro-benchmarks of the hot components.

Not paper figures — these time the building blocks the figure
experiments stress (stemming, Bloom filter, posting lists, ring
lookup, SIFT vs home-node matching) so performance regressions in the
substrate are visible independently of the system-level numbers.
"""

from __future__ import annotations

import random

from repro.cluster import ConsistentHashRing
from repro.matching import BloomFilter, InvertedIndex, SiftMatcher
from repro.model import Document, Filter
from repro.text import PorterStemmer


WORDS = [
    "relational", "conditional", "operational", "distributed",
    "computing", "clusters", "allocation", "separation",
    "replication", "dissemination", "throughput", "filtering",
]


def test_micro_porter_stemmer(benchmark):
    stemmer = PorterStemmer()

    def stem_batch():
        return [stemmer.stem_word(word) for word in WORDS * 50]

    result = benchmark(stem_batch)
    assert len(result) == len(WORDS) * 50


def test_micro_bloom_filter(benchmark):
    bloom = BloomFilter(expected_items=10_000)
    bloom.update(f"term{i}" for i in range(10_000))
    probes = [f"term{i}" for i in range(0, 20_000, 2)]

    def probe_batch():
        return sum(1 for p in probes if p in bloom)

    hits = benchmark(probe_batch)
    assert hits >= len(probes) // 2


def test_micro_posting_list_operations(benchmark):
    from repro.matching import PostingList

    base = PostingList("t", range(0, 20_000, 2))
    other = PostingList("t", range(0, 20_000, 3))

    def merge():
        return len(base.union(other)), len(base.intersect(other))

    union_len, intersect_len = benchmark(merge)
    assert union_len > intersect_len


def test_micro_ring_lookup(benchmark):
    ring = ConsistentHashRing(vnodes=64)
    for i in range(100):
        ring.add_node(f"node{i:03d}")
    keys = [f"term{i}" for i in range(1_000)]

    def lookup_batch():
        return [ring.home_node(key) for key in keys]

    owners = benchmark(lookup_batch)
    assert len(set(owners)) > 10


def _build_index(num_filters: int) -> InvertedIndex:
    rng = random.Random(5)
    index = InvertedIndex()
    for i in range(num_filters):
        terms = [f"t{rng.randrange(2_000)}" for _ in range(3)]
        index.add_filter(Filter.from_terms(f"f{i}", terms))
    return index


def test_micro_sift_matching(benchmark):
    index = _build_index(5_000)
    matcher = SiftMatcher(index)
    rng = random.Random(6)
    document = Document.from_terms(
        "d", [f"t{rng.randrange(2_000)}" for _ in range(65)]
    )

    def match():
        filters, cost = matcher.match(document)
        return len(filters), cost.posting_entries

    matched, entries = benchmark(match)
    assert entries >= matched


def test_micro_query_evaluation(benchmark):
    from repro.matching import parse_query

    node = parse_query(
        "(storm OR surge) AND (flood OR rain) NOT sports"
    )
    term_sets = [
        frozenset({"storm", "flood", f"w{i}"}) for i in range(500)
    ]

    def evaluate_batch():
        return sum(1 for terms in term_sets if node.matches(terms))

    hits = benchmark(evaluate_batch)
    assert hits == 500


def test_micro_home_node_matching(benchmark):
    index = _build_index(5_000)
    term = index.terms()[0]
    document = Document.from_terms("d", [term, "zz1", "zz2"])

    def match():
        filters, cost = index.match_document_single_term(document, term)
        return len(filters)

    benchmark(match)
