"""Figure 4 bench — ranked filter-term popularity of the MSN-like trace.

Regenerates the log–log popularity curve and the trace summary
statistics (mean terms/query, length CDF, top-k draw share) that the
paper reports for the MSN query history.
"""

from __future__ import annotations

from repro.experiments.fig4_term_popularity import run_fig4
from conftest import record, run_once


def test_fig4_term_popularity(benchmark):
    result = run_once(
        benchmark, run_fig4, num_filters=20_000, vocabulary_size=10_000
    )
    print()
    print(result.format_report())
    print(result.series.format_table().splitlines()[0])
    for x, y in result.series.rows()[:10]:
        print(f"  rank {int(x):4d}  p_i {y:.6f}")
    record(
        benchmark,
        mean_terms_per_query=result.mean_terms_per_query,
        top_k_mass=result.top_k_mass,
        distinct_terms=result.distinct_terms,
    )
    # Shape assertions (paper statistics).
    assert abs(result.mean_terms_per_query - 2.843) < 0.1
    ys = result.series.ys
    assert all(ys[i] >= ys[i + 1] for i in range(len(ys) - 1))
