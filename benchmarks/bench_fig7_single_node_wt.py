"""Figure 7 bench — single-node throughput, TREC-WT-like documents.

Same sweep as Figure 6 on the short-document corpus; also reproduces
the headline cross-figure ratio: WT throughput exceeds AP roughly by
the mean-document-length ratio (paper: ~81.84x at a ~93x length ratio;
here ~9x at our ~9.3x scaled length ratio).
"""

from __future__ import annotations

from repro.experiments.fig67_single_node import (
    run_fig6,
    run_fig7,
)
from conftest import record, run_once


def test_fig7_single_node_wt(benchmark):
    sweep = run_once(benchmark, run_fig7)
    print()
    print(sweep.format_report())
    # Cross-figure ratio at R=1e5, Q=100 (scaled from paper's R=1e6).
    ap = run_fig6(r_values=(1e5,), q_values=(100,))
    wt_tput = sweep.throughput_at(1e5, 100)
    ap_tput = ap.throughput_at(1e5, 100)
    ratio = wt_tput / ap_tput
    print(f"WT/AP throughput ratio at R=1e5, Q=100: {ratio:.1f}")
    record(benchmark, corpus=sweep.corpus, wt_over_ap=ratio)
    for series in sweep.series:
        assert series.ys[1] > series.ys[-1]
    # WT far faster than AP, tracking the document-length ratio.
    assert ratio > 3.0
