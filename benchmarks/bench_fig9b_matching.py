"""Figure 9(b) bench — ranked per-node matching cost.

Regenerates the normalized per-node matching-cost (documents received)
distribution.  Reproduction targets: IL the most skewed (term
frequency q_i concentrates documents on hot home nodes); Move more
even than RS (random partition choice spreads documents over the
1/r_i partitions).
"""

from __future__ import annotations

from repro.experiments.fig9_maintenance import run_fig9b
from conftest import LIGHT_WORKLOAD, record, run_once


def test_fig9b_matching_distribution(benchmark):
    result = run_once(benchmark, run_fig9b, base=LIGHT_WORKLOAD)
    print()
    print(result.format_report())
    imbalances = {
        scheme: result.imbalance(scheme)
        for scheme in ("Move", "IL", "RS")
    }
    record(
        benchmark,
        **{f"imbalance_{k}": v for k, v in imbalances.items()},
    )
    assert imbalances["IL"] > imbalances["Move"]
    # The paper's Figure 9b: Move's matching cost is more even than
    # RS's (random row choice spreads documents).
    assert imbalances["Move"] <= imbalances["RS"] * 1.1
