"""Ablation bench — the allocation-movement cost (INTERPRETATION.md §4).

Section V names cross-cluster filter movement as the ring placement's
downside.  This ablation runs MOVE with the movement charge on and off
and compares the placement policies' throughput gap: with the charge
disabled, rack and ring placement converge (locality no longer buys
anything at allocation time); with it enabled, rack placement's cheap
in-rack copies pull ahead — the Figure 9(c) mechanism isolated.
"""

from __future__ import annotations

from repro.config import AllocationConfig, SystemConfig
from repro.core import MoveSystem
from repro.experiments.harness import (
    ClusterThroughputHarness,
    build_cluster,
)
from conftest import LIGHT_WORKLOAD, record, run_once


def _run(placement: str, movement_factor: float, bundle) -> float:
    workload = bundle.workload
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=0
    )
    config = SystemConfig(
        cluster=config.cluster,
        cost_model=config.cost_model,
        allocation=AllocationConfig(
            node_capacity=config.allocation.node_capacity,
            placement=placement,
        ),
        seed=config.seed,
    )
    system = MoveSystem(cluster, config)
    system.subscribe(bundle.filters)
    system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    harness = ClusterThroughputHarness(
        system,
        cluster,
        injection_rate=workload.injection_rate,
        movement_cost_factor=movement_factor,
    )
    return harness.run(bundle.documents).throughput


def _sweep():
    bundle = LIGHT_WORKLOAD.build()
    results = {}
    for factor in (0.0, 0.3):
        for placement in ("ring", "rack"):
            results[(placement, factor)] = _run(
                placement, factor, bundle
            )
    return results


def test_ablation_movement_cost(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    print("# Ablation: allocation movement charge")
    for factor in (0.0, 0.3):
        ring = results[("ring", factor)]
        rack = results[("rack", factor)]
        print(
            f"  factor {factor:.1f}: ring {ring:8.1f}, rack "
            f"{rack:8.1f}, rack/ring {rack / ring:.2f}x"
        )
    record(
        benchmark,
        gap_without=results[("rack", 0.0)] / results[("ring", 0.0)],
        gap_with=results[("rack", 0.3)] / results[("ring", 0.3)],
    )
    # The movement charge is what separates the placements.
    gap_without = results[("rack", 0.0)] / results[("ring", 0.0)]
    gap_with = results[("rack", 0.3)] / results[("ring", 0.3)]
    assert gap_with > gap_without
