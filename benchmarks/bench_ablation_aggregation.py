"""Ablation bench — node-level statistic aggregation (Section V).

The paper replaces per-term forwarding tables with one table per home
node ("the forwarding table on the node m_i maintains only one
two-dimensional array (instead of T_i arrays) ... the approach greatly
reduces the maintenance cost").  This ablation runs MOVE both ways and
compares forwarding-table count (the maintenance cost the paper is
worried about) and throughput.

Expected shape: per-term mode maintains far more tables for comparable
throughput — the reason the paper aggregates.
"""

from __future__ import annotations

from repro.config import AllocationConfig, SystemConfig
from repro.core import MoveSystem
from repro.experiments.harness import (
    ClusterThroughputHarness,
    build_cluster,
)
from conftest import LIGHT_WORKLOAD, record, run_once


def _run(aggregate: bool, bundle):
    workload = bundle.workload
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=0
    )
    config = SystemConfig(
        cluster=config.cluster,
        cost_model=config.cost_model,
        allocation=AllocationConfig(
            node_capacity=config.allocation.node_capacity,
            aggregate_per_node=aggregate,
        ),
        seed=config.seed,
    )
    system = MoveSystem(cluster, config)
    system.subscribe(bundle.filters)
    system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    tables = len(system.plan.tables) if system.plan else 0
    harness = ClusterThroughputHarness(
        system, cluster, injection_rate=workload.injection_rate
    )
    result = harness.run(bundle.documents)
    return tables, result.throughput


def _sweep():
    bundle = LIGHT_WORKLOAD.build()
    return {
        "aggregated": _run(True, bundle),
        "per_term": _run(False, bundle),
    }


def test_ablation_node_aggregation(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    print("# Ablation: per-node aggregation vs per-term tables")
    for mode, (tables, throughput) in results.items():
        print(
            f"  {mode:10s}: {tables:5d} forwarding tables, "
            f"{throughput:8.1f} docs/s"
        )
    record(
        benchmark,
        tables_aggregated=results["aggregated"][0],
        tables_per_term=results["per_term"][0],
        tput_aggregated=results["aggregated"][1],
        tput_per_term=results["per_term"][1],
    )
    # Section V's maintenance-cost argument.
    assert results["per_term"][0] > results["aggregated"][0]
