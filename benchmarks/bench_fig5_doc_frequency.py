"""Figure 5 bench — ranked document-term frequency of both corpora.

Regenerates the AP/WT ranked frequency curves, their entropy ordering
(WT skewer than AP — paper: 6.7593 vs 9.4473 at paper scale) and the
top-1000 query/document term overlaps (26.9 % AP, 31.3 % WT).
"""

from __future__ import annotations

from repro.experiments.fig5_doc_frequency import run_fig5
from conftest import record, run_once


def test_fig5_doc_frequency(benchmark):
    result = run_once(
        benchmark, run_fig5, num_documents=2_000, vocabulary_size=10_000
    )
    print()
    print(result.format_report())
    for skew in (result.ap, result.wt):
        print(f"-- {skew.name} top ranks --")
        for x, y in skew.series.rows()[:8]:
            print(f"  rank {int(x):3d}  q_i {y:.6f}")
    record(
        benchmark,
        ap_entropy=result.ap.entropy_bits,
        wt_entropy=result.wt.entropy_bits,
        ap_overlap=result.ap.top_k_overlap,
        wt_overlap=result.wt.top_k_overlap,
    )
    assert result.wt.normalized_entropy < result.ap.normalized_entropy
    assert abs(result.ap.top_k_overlap - 0.269) < 0.02
    assert abs(result.wt.top_k_overlap - 0.313) < 0.02
