"""Sensitivity-study bench — scheme ordering vs vocabulary density.

Not a paper figure: quantifies the reproduction finding that MOVE's
advantage over rendezvous flooding needs a sparse term space (the
regime of the paper's real traces: ~5.3 filters per distinct query
term at 4M filters / 758k terms).  See
``repro.experiments.density_study`` and EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.density_study import run_density_study
from conftest import record, run_once


def test_density_sensitivity(benchmark):
    result = run_once(
        benchmark,
        run_density_study,
        vocabulary_sizes=(1_000, 10_000),
        num_documents=250,
    )
    print()
    print(result.format_report())
    record(
        benchmark,
        move_advantage_dense=result.move_advantage(0),
        move_advantage_sparse=result.move_advantage(-1),
    )
    # The finding: Move's relative advantage grows with sparsity.
    assert result.move_advantage(-1) > result.move_advantage(0)
    # And in the paper's sparse regime Move wins outright.
    assert result.move_advantage(-1) > 1.0
