"""Ablation bench — the allocation ratio r_i (DESIGN.md section 5).

Section IV-B's analysis says smaller r_i (more replication, more
partitions) is better whenever capacity permits.  This ablation pins
the ratio at the two extremes and compares against the capacity-tuned
deployment value:

- pure replication  (r = 1/n — one subset, n partition rows),
- pure separation   (r = 1   — n subsets, one partition row),
- capacity-tuned    (the deployed max(1/n, S/(n*C))).

Expected shape: pure separation is the slowest (every document fans
out to all n nodes, paying n transfer+seek costs and no spread of
documents); the tuned ratio tracks pure replication when capacity is
plentiful.
"""

from __future__ import annotations

from repro.core import coordinator as coordinator_module
from repro.core.allocation import required_ratio
from repro.experiments.harness import run_scheme_once
from conftest import BENCH_WORKLOAD, record, run_once

MODES = ("replication", "separation", "tuned")


def _run_with_ratio(mode: str, bundle) -> float:
    original = coordinator_module.required_ratio
    try:
        if mode == "replication":
            coordinator_module.required_ratio = (
                lambda stored, n, capacity: 1.0 / n
            )
        elif mode == "separation":
            coordinator_module.required_ratio = (
                lambda stored, n, capacity: 1.0
            )
        return run_scheme_once("Move", bundle).throughput
    finally:
        coordinator_module.required_ratio = original


def _sweep():
    bundle = BENCH_WORKLOAD.build()
    return {mode: _run_with_ratio(mode, bundle) for mode in MODES}


def test_ablation_allocation_ratio(benchmark):
    throughput = run_once(benchmark, _sweep)
    print()
    print("# Ablation: allocation ratio (Move throughput, docs/s)")
    for mode in MODES:
        print(f"  {mode:12s} {throughput[mode]:10.1f}")
    record(benchmark, **{f"tput_{k}": v for k, v in throughput.items()})
    # Pure separation pays full fanout per document: slowest.
    assert throughput["separation"] <= throughput["replication"]
    assert throughput["separation"] <= throughput["tuned"]
    # With plentiful capacity the tuned ratio equals pure replication.
    assert throughput["tuned"] >= throughput["replication"] * 0.8
