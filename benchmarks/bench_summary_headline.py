"""Headline bench — the abstract's throughput-fold claim.

Regenerates the Move-vs-baselines comparison at the default (scaled)
operating point: the paper's Figure 8(a) anchor gives Move/RS = 1.33x
and Move/IL = 2.21x; the reproduction must preserve the ordering and
land in the same fold range.
"""

from __future__ import annotations

from repro.experiments.summary import run_summary
from conftest import BENCH_WORKLOAD, record, run_once


def test_headline_throughput_folds(benchmark):
    result = run_once(benchmark, run_summary, base=BENCH_WORKLOAD)
    print()
    print(result.format_report())
    record(
        benchmark,
        move_over_rs=result.fold("RS"),
        move_over_il=result.fold("IL"),
    )
    assert result.fold("RS") > 1.0
    assert result.fold("IL") > 1.3
    assert (
        result.throughput["Move"]
        > result.throughput["RS"]
        > result.throughput["IL"]
    )
