"""Figure 8(b) bench — cluster throughput vs document injection rate.

Regenerates the throughput-vs-Q curves.  Reproduction targets: all
three schemes degrade as the offered rate grows, and IL degrades by
the largest fold while Move degrades least (paper: IL 14.11x > RS
6.09x > Move 3.62x between Q=10 and Q=1000).
"""

from __future__ import annotations

from repro.experiments.fig8_cluster import degradation_folds, run_fig8b
from conftest import BENCH_WORKLOAD, record, run_once


def test_fig8b_throughput_vs_rate(benchmark):
    sweep = run_once(
        benchmark,
        run_fig8b,
        injection_rates=(10, 100, 1_000, 10_000),
        base=BENCH_WORKLOAD,
    )
    print()
    print(sweep.format_report())
    folds = degradation_folds(sweep)
    print(
        "degradation folds (Q=10 -> Q=1000): "
        + ", ".join(f"{k}={v:.2f}x" for k, v in folds.items())
    )
    record(benchmark, **{f"fold_{k}": v for k, v in folds.items()})
    for scheme in ("Move", "IL", "RS"):
        ys = sweep.series[scheme].ys
        assert ys[0] >= ys[2]  # higher rate, lower throughput
    # IL's hot spots make it degrade hardest; Move degrades least.
    assert folds["IL"] >= folds["RS"] >= folds["Move"]
