"""Reallocation bench — incremental engine vs from-scratch apply.

Times the steady-state coordinator refresh (Section VI-A's ~10-minute
renewal) on the Figure-8 ``BENCH_WORKLOAD`` (4k filters) under <= 1%
filter churn per refresh cycle: each cycle swaps ``CHURN_SWAPS``
filters for fresh clones over the same terms (demand-preserving churn,
the common case for long-lived subscriptions) and then calls
``reallocate()``.  Three configurations of the same system run the
identical churn schedule:

- *from-scratch* — ``AllocationConfig(incremental=False)``: every
  refresh replans and rebuilds every allocated subset index, the seed
  apply path;
- *incremental* — plan diffing (:mod:`repro.core.reallocation`):
  every refresh replans, but unchanged/delta keys keep their live
  indexes and only resized/new keys rebuild;
- *drift-gated* — incremental plus ``drift_epsilon=0.05``: the refresh
  first consults :meth:`MoveSystem.estimate_drift` and skips the
  replan outright while accumulated churn stays under the gate (at 1%
  churn per cycle the gate trips roughly every fifth cycle, replans,
  and resets — the designed steady state).

The headline ``speedup`` is the per-refresh *median* ratio between the
from-scratch and drift-gated paths; the ISSUE acceptance floor is
>= 5x and the raw ratio is asserted here.  Because the gated median is
a skip (drift check only, microseconds), the raw ratio is enormous and
machine-noisy, so the value recorded for the CI gate is capped at
``SPEEDUP_CAP`` — any healthy run saturates the cap, which keeps the
``--check`` tolerance band meaningful.  ``replan_speedup`` (always
replanning, incremental vs from-scratch apply) is recorded uncapped:
both sides pay the same planning cost, so it isolates the apply-path
win and stays a stable ms-scale ratio.

A correctness probe at the end publishes a document stream through all
three systems and asserts identical matched-filter sets — the
write-through grid maintenance keeps skipped/kept indexes exact.
"""

from __future__ import annotations

import time
from dataclasses import replace
from statistics import mean, median

from repro.experiments.harness import build_cluster, make_system
from repro.model import Filter

from conftest import BENCH_WORKLOAD, record, run_once

#: Refresh cycles per timed loop; with 1% churn per cycle the 5% drift
#: gate trips once mid-loop, so the schedule exercises both the skip
#: and the replan leg of the gated path.
CYCLES = 8

#: Filter swaps per cycle.  One swap is one unregister plus one
#: register, so 20 swaps = 40 churn operations = 1.0% of the 4k-filter
#: workload — the ISSUE's "<= 1% churn" steady state.
CHURN_SWAPS = 20

#: Drift gate for the gated configuration (matches DriftPolicy default).
DRIFT_EPSILON = 0.05

#: Cap on the recorded speedup (see module docstring): the raw
#: skip-vs-rebuild ratio is O(1000x) with microsecond denominators, so
#: the CI baseline tracks min(raw, cap) — stable, and still an order
#: of magnitude above the 5x acceptance floor.
SPEEDUP_CAP = 50.0


def _build_move(bundle, incremental: bool, drift_epsilon: float = 0.0):
    """Register + seed + allocate one MOVE system over the workload.

    Rounding is pinned deterministic: randomized rounding resamples
    every ``n_i`` on every replan, so even a demand-preserving refresh
    reshapes most grids and the diff degenerates to "everything
    resized".  A refresh loop that wants incremental apply wins needs
    plan stability, and deterministic rounding provides it (see
    docs/PERFORMANCE.md).
    """
    workload = bundle.workload
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=0
    )
    config = replace(
        config,
        allocation=replace(
            config.allocation,
            incremental=incremental,
            drift_epsilon=drift_epsilon,
            randomized_rounding=False,
        ),
    )
    system = make_system("move", cluster, config)
    system.subscribe(bundle.filters)
    system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    return system


def _churn(system, bundle, cycle: int) -> None:
    """Swap ``CHURN_SWAPS`` bundle filters for same-term clones.

    Victim slices are disjoint across cycles, so every victim is still
    registered; clones reuse the victim's exact terms, keeping the
    demand statistics (and therefore the plan) steady — churn without
    drift, the load the gate is designed to absorb.
    """
    start = cycle * CHURN_SWAPS
    victims = bundle.filters[start : start + CHURN_SWAPS]
    for profile in victims:
        system.unregister(profile.filter_id)
    for index, profile in enumerate(victims):
        system.register(
            Filter.from_terms(
                f"churn-{cycle}-{index}", profile.sorted_terms()
            )
        )


def _time_refreshes(system, bundle, cycles: int = CYCLES):
    """Per-refresh seconds for ``cycles`` churn-then-reallocate steps."""
    seconds = []
    for cycle in range(cycles):
        _churn(system, bundle, cycle)
        start = time.perf_counter()
        system.reallocate()
        seconds.append(time.perf_counter() - start)
    return seconds


def test_steady_state_reallocation(benchmark):
    """Steady-state refresh under 1% churn: acceptance gate >= 5x."""
    bundle = BENCH_WORKLOAD.build()
    scratch = _build_move(bundle, incremental=False)
    incremental = _build_move(bundle, incremental=True)
    gated = _build_move(
        bundle, incremental=True, drift_epsilon=DRIFT_EPSILON
    )

    scratch_s = _time_refreshes(scratch, bundle)
    incremental_s = _time_refreshes(incremental, bundle)
    gated_s = _time_refreshes(gated, bundle)
    # One extra timed loop on a fresh gated system for pytest-benchmark's
    # own stats row; the regression gate reads the controlled medians
    # from extra_info, not this row's wall time.
    run_once(
        benchmark,
        _time_refreshes,
        _build_move(bundle, incremental=True, drift_epsilon=DRIFT_EPSILON),
        bundle,
    )

    skipped = gated.metrics.counter("reallocations_skipped").value
    assert skipped >= CYCLES - 2  # the gate held through the loop

    # Write-through keeps kept/skipped indexes exact: all three systems
    # must match a probe stream identically.
    probes = bundle.documents[:20]
    expected = [p.matched_filter_ids for p in scratch.publish_all(probes)]
    for system in (incremental, gated):
        matched = [p.matched_filter_ids for p in system.publish_all(probes)]
        assert matched == expected

    scratch_med, incremental_med, gated_med = (
        median(scratch_s),
        median(incremental_s),
        median(gated_s),
    )
    raw_speedup = scratch_med / gated_med
    speedup = min(raw_speedup, SPEEDUP_CAP)
    replan_speedup = scratch_med / incremental_med
    print(
        f"\nreallocate under {100.0 * 2 * CHURN_SWAPS / len(bundle.filters):.1f}% "
        f"churn/cycle (median of {CYCLES}): from-scratch "
        f"{scratch_med * 1e3:.2f} ms -> incremental "
        f"{incremental_med * 1e3:.2f} ms ({replan_speedup:.2f}x) -> "
        f"drift-gated {gated_med * 1e6:.0f} us ({raw_speedup:.0f}x raw, "
        f"recorded {speedup:.1f}x); skipped {skipped:.0f}/{CYCLES}"
    )
    record(
        benchmark,
        scratch_seconds=scratch_med,
        incremental_seconds=incremental_med,
        gated_seconds=gated_med,
        scratch_mean_seconds=mean(scratch_s),
        gated_mean_seconds=mean(gated_s),
        speedup=speedup,
        speedup_uncapped=raw_speedup,
        replan_speedup=replan_speedup,
        refreshes_per_second=1.0 / incremental_med,
        refreshes_skipped=skipped,
    )
    # Both legs clear the >= 5x acceptance floor: the gated path by
    # skipping the replan, the always-replan path on apply cost alone.
    assert raw_speedup >= 5.0
    assert replan_speedup >= 5.0
