#!/usr/bin/env python
"""Million-filter scale bench: memory budget + streaming throughput.

The memory-tier companion to ``bench_hot_path.py``: where the hot-path
bench times the per-document pipeline at default scale, this one
measures what the ISSUE's scale tier actually buys — resident bytes
per registered filter, streamed registration throughput, batched
publish docs/sec and the p99 *simulated* match latency — across all
four schemes on workloads that are generated on the fly and never
materialized (``ScaledWorkload.stream``).

Two tiers::

    python benchmarks/bench_scale.py --tier ci            # ~100k filters
    python benchmarks/bench_scale.py --tier full          # 1M filters
    python benchmarks/bench_scale.py --tier both --json BENCH_scale.json

- **ci** runs every scheme twice — object storage and slab storage —
  over a 100k-filter / 2k-document stream, asserts the twins are
  bit-identical (match checksums, stored replicas, RNG fingerprints)
  and that the slab's bytes/filter is at least ``RATIO_FLOOR`` times
  lower than the object path's.  This is the CI smoke job.
- **full** runs the slab tier over 1M filters / 100k documents per
  scheme — the committed ``BENCH_scale.json`` trajectory.

Each measurement runs in its own subprocess (``--worker``) so RSS
deltas and peaks are clean per run; the parent collects one JSON
object per worker from stdout.  The recorded floors travel inside the
JSON (see ``FLOORS``) and are re-asserted from the committed file by
``scripts/run_benchmarks.py`` in both gate modes, so a regression in a
re-recorded trajectory fails the gate without any external config.

Simulated latency: each published document's latency is the slowest of
its delivery tasks under the cost model's ``match_time`` (the same
y_seek/y_p accounting the cluster harness charges), i.e. the parallel
completion time across nodes, excluding queueing.
"""

from __future__ import annotations

import argparse
import itertools
import json
import resource
import subprocess
import sys
import time
import zlib
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Marker line prefix a worker uses to hand its result to the parent.
RESULT_MARK = "BENCH_SCALE_RESULT:"

#: Acceptance floor: slab bytes/filter must beat object by this factor
#: at the CI tier (the ISSUE's >= 3x criterion).
RATIO_FLOOR = 3.0

#: Self-describing floors recorded into the JSON and re-asserted from
#: the committed file by scripts/run_benchmarks.py.  Values are
#: deliberately conservative: they catch a storage-layout or hot-path
#: collapse, not host-speed jitter.
FLOORS = {
    # Slab-mode resident bytes per registered filter, full tier.
    "slab_bytes_per_filter_max": 800.0,
    # Batched publish throughput, any scheme, full tier (docs/s).
    "docs_per_second_min": 50.0,
    # Object/slab bytes-per-filter ratio, ci tier.
    "object_slab_ratio_min": RATIO_FLOOR,
}

#: Tier geometry.  Vocabulary scales at ~0.19x filters (the ratio the
#: default 4k-filter/10k-vocab workload has at 1/1000 paper scale
#: keeps posting densities realistic without letting the shared
#: vocabulary dominate the memory measurement) and node capacity at
#: 3x P/N so the √(p·q) allocation stays capacity-bounded.
TIERS = {
    "ci": {
        "filters": 100_000,
        "documents": 2_000,
        "vocabulary": 19_000,
        "storages": ("object", "slab"),
    },
    "full": {
        "filters": 1_000_000,
        "documents": 100_000,
        "vocabulary": 190_000,
        "storages": ("slab",),
    },
}

SCHEMES = ("move", "il", "rs", "central")
NODES = 20
#: Streamed-registration chunk.  Deliberately modest: the transient
#: chunk list of Filter objects is itself resident while a chunk
#: registers, and at 20k filters/chunk that transient (~18 MB) would
#: dominate the slab path's bytes/filter measurement.
REGISTER_CHUNK = 5_000
PUBLISH_BATCH = 1_000


def _rss_bytes() -> int:
    """Resident set size right now (``/proc/self/statm``)."""
    with open("/proc/self/statm") as handle:
        pages = int(handle.read().split()[1])
    return pages * resource.getpagesize()


def _checksum(value: int, items) -> int:
    """Fold an iterable of strings into a running CRC32."""
    for item in items:
        value = zlib.crc32(item.encode(), value)
    return value


def run_worker(spec: dict) -> dict:
    """One measurement: build, stream-register, stream-publish."""
    from repro.core import MoveSystem
    from repro.experiments.harness import (
        ScaledWorkload,
        build_cluster,
        make_system,
    )
    from repro.sim.costs import MatchCostModel

    workload = ScaledWorkload(
        num_filters=spec["filters"],
        num_documents=spec["documents"],
        num_nodes=spec["nodes"],
        node_capacity=spec["capacity"],
        vocabulary_size=spec["vocabulary"],
        seed=spec["seed"],
    )
    stream = workload.stream()
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=spec["seed"]
    )
    config = replace(config, filter_storage=spec["storage"])
    system = make_system(spec["scheme"], cluster, config)
    cost_model = MatchCostModel(config.cost_model)

    rss_base = _rss_bytes()
    t0 = time.perf_counter()
    registered = len(
        system.subscribe(stream.iter_filters(), chunk_size=REGISTER_CHUNK)
    )
    register_seconds = time.perf_counter() - t0
    if isinstance(system, MoveSystem):
        system.seed_frequencies(stream.offline_corpus(200))
    t0 = time.perf_counter()
    system.finalize_registration()
    finalize_seconds = time.perf_counter() - t0
    rss_registered = _rss_bytes()

    match_checksum = 0
    total_matches = 0
    latencies = []
    documents = 0
    publish_seconds = 0.0
    doc_stream = stream.iter_documents()
    while True:
        chunk = list(itertools.islice(doc_stream, PUBLISH_BATCH))
        if not chunk:
            break
        t0 = time.perf_counter()
        plans = system.publish_batch(chunk)
        publish_seconds += time.perf_counter() - t0
        documents += len(chunk)
        for plan in plans:
            matched = sorted(plan.matched_filter_ids)
            total_matches += len(matched)
            match_checksum = _checksum(match_checksum, matched)
            latencies.append(
                max(
                    (
                        cost_model.match_time(
                            task.posting_lists, task.posting_entries
                        )
                        for task in plan.tasks
                    ),
                    default=0.0,
                )
            )

    latencies.sort()

    def quantile(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    rng = getattr(system, "_rng", None)
    storage = system.storage_distribution()
    result = {
        "scheme": spec["scheme"],
        "storage": spec["storage"],
        "filters": registered,
        "documents": documents,
        "register_seconds": round(register_seconds, 3),
        "filters_per_second": round(registered / register_seconds, 1),
        "finalize_seconds": round(finalize_seconds, 3),
        "publish_seconds": round(publish_seconds, 3),
        "docs_per_second": round(documents / publish_seconds, 1),
        "matches_per_doc": round(total_matches / documents, 3),
        "match_checksum": match_checksum,
        "rng_fingerprint": (
            zlib.crc32(repr(rng.getstate()).encode())
            if rng is not None
            else None
        ),
        "stored_replicas": int(sum(storage.values())),
        "bytes_per_filter": round(
            max(0, rss_registered - rss_base) / max(1, registered), 1
        ),
        "p50_sim_latency_ms": round(quantile(0.50) * 1e3, 4),
        "p99_sim_latency_ms": round(quantile(0.99) * 1e3, 4),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
    }
    if system.filter_slab is not None:
        stats = system.filter_slab.stats()
        result["slab"] = {
            key: stats[key]
            for key in ("live_filters", "slots", "term_cells",
                        "memory_bytes")
        }
    return result


def spawn_worker(spec: dict) -> dict:
    """Run one measurement in a clean subprocess; parse its result."""
    label = f"{spec['scheme']}/{spec['storage']}"
    print(f"-- {label}: {spec['filters']:,} filters, "
          f"{spec['documents']:,} docs", flush=True)
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--worker",
         json.dumps(spec)],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"worker {label} failed ({proc.returncode})")
    payload = None
    for line in proc.stdout.splitlines():
        if line.startswith(RESULT_MARK):
            payload = json.loads(line[len(RESULT_MARK):])
    if payload is None:
        sys.stderr.write(proc.stdout)
        raise RuntimeError(f"worker {label} produced no result line")
    print(
        f"   reg {payload['register_seconds']:.1f}s "
        f"({payload['filters_per_second']:,.0f} filters/s), "
        f"publish {payload['docs_per_second']:,.0f} docs/s, "
        f"{payload['bytes_per_filter']:,.0f} B/filter, "
        f"p99 {payload['p99_sim_latency_ms']:.3f} ms, "
        f"peak {payload['peak_rss_mb']:,.0f} MB "
        f"[{time.perf_counter() - t0:.0f}s wall]",
        flush=True,
    )
    return payload


def _twin_keys(run: dict) -> tuple:
    """The equivalence-contract fields of one worker result."""
    return (
        run["match_checksum"],
        run["matches_per_doc"],
        run["stored_replicas"],
        run["rng_fingerprint"],
        run["filters"],
        run["documents"],
    )


def run_tier(tier: str, schemes) -> dict:
    geometry = TIERS[tier]
    results = {}
    failures = []
    for scheme in schemes:
        per_storage = {}
        for storage in geometry["storages"]:
            spec = {
                "scheme": scheme,
                "storage": storage,
                "filters": geometry["filters"],
                "documents": geometry["documents"],
                "vocabulary": geometry["vocabulary"],
                "nodes": NODES,
                "capacity": 3 * geometry["filters"] // NODES,
                "seed": 7,
            }
            per_storage[storage] = spawn_worker(spec)
        entry = dict(per_storage)
        if "object" in per_storage and "slab" in per_storage:
            obj, slab = per_storage["object"], per_storage["slab"]
            if _twin_keys(obj) != _twin_keys(slab):
                failures.append(
                    f"{scheme}: object/slab twins diverged "
                    f"({_twin_keys(obj)} vs {_twin_keys(slab)})"
                )
            ratio = obj["bytes_per_filter"] / max(
                1.0, slab["bytes_per_filter"]
            )
            entry["object_slab_ratio"] = round(ratio, 2)
            entry["equivalent"] = _twin_keys(obj) == _twin_keys(slab)
            status = "ok" if ratio >= RATIO_FLOOR else "FAIL"
            print(
                f"   {status} {scheme}: slab saves {ratio:.1f}x "
                f"bytes/filter (floor {RATIO_FLOOR}x), twins "
                f"{'identical' if entry['equivalent'] else 'DIVERGED'}",
                flush=True,
            )
            if ratio < RATIO_FLOOR:
                failures.append(
                    f"{scheme}: object/slab bytes-per-filter ratio "
                    f"{ratio:.2f} below floor {RATIO_FLOOR}"
                )
        results[scheme] = entry
    if failures:
        for failure in failures:
            print(f"FAILURE: {failure}", file=sys.stderr)
        raise SystemExit(1)
    return {
        "workload": {
            "filters": geometry["filters"],
            "documents": geometry["documents"],
            "vocabulary": geometry["vocabulary"],
            "nodes": NODES,
            "capacity": 3 * geometry["filters"] // NODES,
            "register_chunk": REGISTER_CHUNK,
            "publish_batch": PUBLISH_BATCH,
        },
        "schemes": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Million-filter scale tier bench."
    )
    parser.add_argument(
        "--tier",
        default="ci",
        choices=["ci", "full", "both"],
        help="workload tier (default: ci)",
    )
    parser.add_argument(
        "--scheme",
        action="append",
        choices=list(SCHEMES),
        default=None,
        help="scheme(s) to run (default: all four)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write the result trajectory to this file",
    )
    parser.add_argument(
        "--worker",
        default=None,
        help=argparse.SUPPRESS,  # internal: one measurement, JSON out
    )
    args = parser.parse_args(argv)

    if args.worker is not None:
        result = run_worker(json.loads(args.worker))
        print(RESULT_MARK + json.dumps(result))
        return 0

    schemes = args.scheme or list(SCHEMES)
    tiers = ["ci", "full"] if args.tier == "both" else [args.tier]
    payload = {
        "version": 1,
        "datetime": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "floors": FLOORS,
        "tiers": {},
    }
    for tier in tiers:
        print(f"== tier: {tier} ==", flush=True)
        payload["tiers"][tier] = run_tier(tier, schemes)
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
