"""Figure 9(a) bench — ranked per-node storage cost.

Regenerates the normalized (to the RS mean) per-node storage-cost
distribution.  Reproduction targets: IL is the most skewed (term
popularity p_i), RS the most even (consistent hashing of filter ids),
and Move balanced in between.
"""

from __future__ import annotations

from repro.experiments.fig9_maintenance import run_fig9a
from conftest import LIGHT_WORKLOAD, record, run_once


def test_fig9a_storage_distribution(benchmark):
    result = run_once(benchmark, run_fig9a, base=LIGHT_WORKLOAD)
    print()
    print(result.format_report())
    imbalances = {
        scheme: result.imbalance(scheme)
        for scheme in ("Move", "IL", "RS")
    }
    record(
        benchmark,
        **{f"imbalance_{k}": v for k, v in imbalances.items()},
    )
    assert imbalances["IL"] > imbalances["Move"]
    assert imbalances["IL"] > imbalances["RS"]
    # RS's consistent hashing is at least as even as Move's allocation
    # (the paper's observation for Figure 9a).
    assert imbalances["RS"] <= imbalances["Move"] * 1.25
