"""Normalization and tokenization pipeline.

Mirrors the paper's corpus pre-processing (Section VI-A): lowercase,
split on non-alphanumerics, drop stop words, Porter-stem the remainder.
Both documents and filters are passed through the same pipeline so a
user query for "distributed systems" matches a document containing
"distribute system".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List

from .porter import PorterStemmer
from .stopwords import STOP_WORDS

_TOKEN_RE = re.compile(r"[a-z0-9]+")


@dataclass(frozen=True)
class TokenizerConfig:
    """Pipeline switches.

    ``min_token_length`` drops one-character noise tokens; the classic
    IR convention (and the one the TREC pre-processing used) keeps
    tokens of two or more characters.

    ``ngram_size > 1`` additionally emits word n-grams (joined with
    ``_``) built from the processed unigrams — phrase-ish filters like
    "machine_learning" become matchable terms, at the cost of a larger
    term space (everything downstream, including the home-node
    mapping, treats an n-gram as just another term).
    """

    lowercase: bool = True
    remove_stop_words: bool = True
    apply_stemming: bool = True
    min_token_length: int = 2
    drop_pure_numbers: bool = False
    ngram_size: int = 1

    def __post_init__(self) -> None:
        if self.ngram_size < 1:
            raise ValueError(
                f"ngram_size must be >= 1, got {self.ngram_size}"
            )


class Tokenizer:
    """Callable text-to-terms pipeline.

    >>> Tokenizer()("The distributed systems are distributing!")
    ['distribut', 'system', 'distribut']
    """

    #: Per-instance stem memo size; stemming is pure, so memoization
    #: only trades memory for the ~30 suffix probes a stem costs.
    STEM_CACHE_SIZE = 1 << 16

    def __init__(self, config: TokenizerConfig | None = None) -> None:
        self.config = config or TokenizerConfig()
        self._stemmer = PorterStemmer()
        self._stem = lru_cache(maxsize=self.STEM_CACHE_SIZE)(
            self._stemmer.stem_word
        )

    def __call__(self, text: str) -> List[str]:
        return list(self.iter_terms(text))

    def iter_terms(self, text: str) -> Iterator[str]:
        """Yield pipeline-processed terms of ``text`` in order.

        With ``ngram_size > 1``, each unigram is followed by the
        n-grams (sizes 2..ngram_size) ending at it, joined with ``_``.
        """
        cfg = self.config
        if cfg.lowercase:
            text = text.lower()
        window: List[str] = []
        for match in _TOKEN_RE.finditer(text):
            token = match.group()
            if len(token) < cfg.min_token_length:
                continue
            if cfg.drop_pure_numbers and token.isdigit():
                continue
            if cfg.remove_stop_words and token in STOP_WORDS:
                continue
            if cfg.apply_stemming:
                token = self._stem(token)
            if len(token) < cfg.min_token_length:
                continue
            yield token
            if cfg.ngram_size > 1:
                window.append(token)
                if len(window) > cfg.ngram_size:
                    window.pop(0)
                for size in range(2, len(window) + 1):
                    yield "_".join(window[-size:])

    def unique_terms(self, text: str) -> List[str]:
        """Pipeline-processed terms, de-duplicated, first-seen order."""
        seen = set()
        ordered = []
        for term in self.iter_terms(text):
            if term not in seen:
                seen.add(term)
                ordered.append(term)
        return ordered


_SHARED = Tokenizer()


def tokenize(text: str) -> List[str]:
    """Tokenize with a shared default-configured :class:`Tokenizer`."""
    return _SHARED(text)
