"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

The algorithm reduces English words to stems through five rule phases.
Words are viewed as sequences of consonant/vowel runs ``[C](VC)^m[V]``;
the *measure* ``m`` counts the ``VC`` repetitions and gates most rules.

This implementation follows the original paper's rule tables and the
standard reference behaviour (e.g. words of length <= 2 are returned
unchanged).  It is deliberately dependency-free: the paper's evaluation
pre-processes every corpus with Porter stemming, so the stemmer is a
substrate of the reproduction rather than an external import.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer.

    Instances are cheap and reusable; :func:`stem` offers a module-level
    convenience wrapper around a shared instance.

    >>> PorterStemmer().stem_word("relational")
    'relat'
    >>> PorterStemmer().stem_word("caresses")
    'caress'
    """

    # -- consonant/vowel structure ------------------------------------

    @staticmethod
    def _is_consonant(word: str, index: int) -> bool:
        ch = word[index]
        if ch in _VOWELS:
            return False
        if ch == "y":
            if index == 0:
                return True
            return not PorterStemmer._is_consonant(word, index - 1)
        return True

    @classmethod
    def _measure(cls, stem_part: str) -> int:
        """Compute the measure ``m`` of ``stem_part``."""
        m = 0
        previous_was_vowel = False
        for i in range(len(stem_part)):
            consonant = cls._is_consonant(stem_part, i)
            if consonant and previous_was_vowel:
                m += 1
            previous_was_vowel = not consonant
        return m

    @classmethod
    def _contains_vowel(cls, stem_part: str) -> bool:
        return any(
            not cls._is_consonant(stem_part, i) for i in range(len(stem_part))
        )

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        if len(word) < 2 or word[-1] != word[-2]:
            return False
        return cls._is_consonant(word, len(word) - 1)

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """True if word ends consonant-vowel-consonant, last not w/x/y."""
        if len(word) < 3:
            return False
        third, second, last = len(word) - 3, len(word) - 2, len(word) - 1
        return (
            cls._is_consonant(word, third)
            and not cls._is_consonant(word, second)
            and cls._is_consonant(word, last)
            and word[last] not in "wxy"
        )

    # -- rule application helpers -------------------------------------

    @classmethod
    def _replace_if_measure(
        cls, word: str, suffix: str, replacement: str, min_measure: int
    ) -> Tuple[str, bool]:
        """Replace ``suffix`` by ``replacement`` when the remaining stem
        has measure > ``min_measure``.  Returns (word, rule_fired)."""
        if not word.endswith(suffix):
            return word, False
        stem_part = word[: len(word) - len(suffix)]
        if cls._measure(stem_part) > min_measure:
            return stem_part + replacement, True
        return word, True  # suffix matched; rule consumed even if no-op

    # -- the five steps -----------------------------------------------

    @classmethod
    def _step1a(cls, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    @classmethod
    def _step1b(cls, word: str) -> str:
        if word.endswith("eed"):
            stem_part = word[:-3]
            if cls._measure(stem_part) > 0:
                return word[:-1]
            return word
        fired = False
        if word.endswith("ed"):
            stem_part = word[:-2]
            if cls._contains_vowel(stem_part):
                word = stem_part
                fired = True
        elif word.endswith("ing"):
            stem_part = word[:-3]
            if cls._contains_vowel(stem_part):
                word = stem_part
                fired = True
        if not fired:
            return word
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if cls._ends_double_consonant(word) and not word.endswith(
            ("l", "s", "z")
        ):
            return word[:-1]
        if cls._measure(word) == 1 and cls._ends_cvc(word):
            return word + "e"
        return word

    @classmethod
    def _step1c(cls, word: str) -> str:
        if word.endswith("y") and cls._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES: Tuple[Tuple[str, str], ...] = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    _STEP3_RULES: Tuple[Tuple[str, str], ...] = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    _STEP4_SUFFIXES: Tuple[str, ...] = (
        "al",
        "ance",
        "ence",
        "er",
        "ic",
        "able",
        "ible",
        "ant",
        "ement",
        "ment",
        "ent",
        "ion",
        "ou",
        "ism",
        "ate",
        "iti",
        "ous",
        "ive",
        "ize",
    )

    @classmethod
    def _apply_rule_table(
        cls, word: str, rules: Iterable[Tuple[str, str]]
    ) -> str:
        for suffix, replacement in rules:
            if word.endswith(suffix):
                new_word, _ = cls._replace_if_measure(
                    word, suffix, replacement, 0
                )
                return new_word
        return word

    @classmethod
    def _step4(cls, word: str) -> str:
        for suffix in cls._STEP4_SUFFIXES:
            if not word.endswith(suffix):
                continue
            stem_part = word[: len(word) - len(suffix)]
            if suffix == "ion" and (
                not stem_part or stem_part[-1] not in "st"
            ):
                return word
            if cls._measure(stem_part) > 1:
                return stem_part
            return word
        return word

    @classmethod
    def _step5a(cls, word: str) -> str:
        if not word.endswith("e"):
            return word
        stem_part = word[:-1]
        m = cls._measure(stem_part)
        if m > 1:
            return stem_part
        if m == 1 and not cls._ends_cvc(stem_part):
            return stem_part
        return word

    @classmethod
    def _step5b(cls, word: str) -> str:
        if (
            word.endswith("ll")
            and cls._measure(word[:-1]) > 1
        ):
            return word[:-1]
        return word

    # -- public API -----------------------------------------------------

    def stem_word(self, word: str) -> str:
        """Stem a single lowercase word.

        Words shorter than three characters are returned unchanged, per
        the reference implementation.
        """
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._apply_rule_table(word, self._STEP2_RULES)
        word = self._apply_rule_table(word, self._STEP3_RULES)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    def stem_words(self, words: Iterable[str]) -> List[str]:
        """Stem every word in ``words``, preserving order."""
        return [self.stem_word(word) for word in words]


_SHARED = PorterStemmer()


def stem(word: str) -> str:
    """Stem ``word`` with a shared :class:`PorterStemmer` instance."""
    return _SHARED.stem_word(word)
