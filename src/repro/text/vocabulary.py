"""Term interning: bidirectional mapping between terms and dense ids.

Workload generators and statistics trackers operate on integer term
ids; the vocabulary is the single place strings are held.  Interning
keeps posting lists and statistic arrays compact (NumPy-friendly).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Vocabulary:
    """Append-only term dictionary.

    Ids are assigned densely in first-seen order, so a vocabulary built
    from a generator replays identically under the same seed.

    >>> vocab = Vocabulary()
    >>> vocab.intern("cloud")
    0
    >>> vocab.intern("storm"), vocab.intern("cloud")
    (1, 0)
    >>> vocab.term(1)
    'storm'
    """

    def __init__(self, terms: Optional[Iterable[str]] = None) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        if terms is not None:
            for term in terms:
                self.intern(term)

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def intern(self, term: str) -> int:
        """Return the id for ``term``, assigning a new one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        term_id = len(self._id_to_term)
        self._term_to_id[term] = term_id
        self._id_to_term.append(term)
        return term_id

    def intern_all(self, terms: Iterable[str]) -> List[int]:
        """Intern every term in ``terms``, preserving order."""
        return [self.intern(term) for term in terms]

    def lookup(self, term: str) -> Optional[int]:
        """Id of ``term`` or None if it was never interned."""
        return self._term_to_id.get(term)

    def term(self, term_id: int) -> str:
        """Term string for ``term_id``.

        Raises ``IndexError`` for ids that were never assigned.
        """
        if term_id < 0:
            raise IndexError(f"term ids are non-negative, got {term_id}")
        return self._id_to_term[term_id]

    def terms(self, term_ids: Iterable[int]) -> List[str]:
        """Term strings for each id in ``term_ids``."""
        return [self.term(term_id) for term_id in term_ids]
