"""Text pre-processing substrate.

The paper pre-processes the TREC corpora "with the Porter algorithm"
and removes "common stop words such as 'the', 'and'" (Section VI-A).
This package provides that pipeline from scratch:

- :mod:`repro.text.porter` — the Porter stemming algorithm,
- :mod:`repro.text.stopwords` — a classic English stop-word list,
- :mod:`repro.text.tokenizer` — normalization + tokenization pipeline,
- :mod:`repro.text.vocabulary` — term interning to dense integer ids,
- :mod:`repro.text.interning` — the shared process-wide interner plus
  LRU-memoized stemming/tokenization (the hot-path fast lane).
"""

from .interning import (
    DEFAULT_INTERNER,
    TermInterner,
    cached_stem,
    cached_tokenize,
    cached_tokenize_ids,
    intern_term,
    intern_terms,
    term_for_id,
)
from .porter import PorterStemmer, stem
from .stopwords import STOP_WORDS, is_stop_word
from .tokenizer import Tokenizer, TokenizerConfig, tokenize
from .vocabulary import Vocabulary

__all__ = [
    "PorterStemmer",
    "stem",
    "STOP_WORDS",
    "is_stop_word",
    "Tokenizer",
    "TokenizerConfig",
    "tokenize",
    "Vocabulary",
    "TermInterner",
    "DEFAULT_INTERNER",
    "intern_term",
    "intern_terms",
    "term_for_id",
    "cached_stem",
    "cached_tokenize",
    "cached_tokenize_ids",
]
