"""Process-wide term interning and memoized text pre-processing.

The dissemination hot path touches every document term many times —
ring lookups, Bloom checks, posting retrievals, statistics — and each
touch re-hashes the term string.  This module provides the integer
fast path the batched pipeline runs on:

- :class:`TermInterner` — an append-only string ↔ dense int32 term-id
  dictionary (a thin, bounds-checked specialization of
  :class:`~repro.text.vocabulary.Vocabulary` semantics) with a shared
  process-wide instance, so every subsystem agrees on term ids;
- :func:`cached_stem` — an LRU memo around
  :meth:`~repro.text.porter.PorterStemmer.stem_word` (Porter stemming
  is pure but ~30 rule probes per word; real corpora repeat words
  constantly);
- :func:`cached_tokenize` — an LRU memo around the default
  :func:`~repro.text.tokenizer.tokenize` pipeline (filter queries
  repeat far more than documents, so short texts hit often).

:class:`~repro.model.Document` and :class:`~repro.model.Filter` expose
``term_ids`` computed against :data:`DEFAULT_INTERNER`, which lets hot
loops key per-term caches by a dense integer instead of re-hashing
strings.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from .porter import PorterStemmer
from .tokenizer import Tokenizer

#: Dense ids are int32 by contract so downstream array('i') /
#: NumPy-backed structures never need to widen.
MAX_TERM_ID = 2**31 - 1

#: Memo sizes: the stem cache comfortably covers a TREC-scale working
#: vocabulary; the tokenize cache targets repeated short filter queries.
_STEM_CACHE_SIZE = 1 << 16
_TOKENIZE_CACHE_SIZE = 1 << 12


class TermInterner:
    """Append-only term dictionary assigning dense int32 ids.

    Ids are assigned in first-seen order, so workloads replayed under a
    fixed seed intern identically.

    >>> interner = TermInterner()
    >>> interner.intern("cloud")
    0
    >>> interner.intern("storm"), interner.intern("cloud")
    (1, 0)
    >>> interner.term(1)
    'storm'
    """

    __slots__ = ("_term_to_id", "_id_to_term")

    def __init__(self, terms: Optional[Iterable[str]] = None) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        if terms is not None:
            for term in terms:
                self.intern(term)

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def intern(self, term: str) -> int:
        """Return the dense id for ``term``, assigning one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        term_id = len(self._id_to_term)
        if term_id > MAX_TERM_ID:
            raise OverflowError(
                f"term dictionary exceeded int32 capacity ({MAX_TERM_ID})"
            )
        self._term_to_id[term] = term_id
        self._id_to_term.append(term)
        return term_id

    def intern_all(self, terms: Iterable[str]) -> Tuple[int, ...]:
        """Intern every term, preserving order."""
        intern = self.intern
        return tuple(intern(term) for term in terms)

    def lookup(self, term: str) -> Optional[int]:
        """Id of ``term`` or None if it was never interned."""
        return self._term_to_id.get(term)

    def term(self, term_id: int) -> str:
        """Term string for ``term_id`` (IndexError if unassigned)."""
        if term_id < 0:
            raise IndexError(f"term ids are non-negative, got {term_id}")
        return self._id_to_term[term_id]

    def terms(self, term_ids: Iterable[int]) -> List[str]:
        return [self.term(term_id) for term_id in term_ids]


#: The process-wide interner `Document.term_ids` / `Filter.term_ids`
#: resolve against.  Sharing one instance is what makes term ids
#: comparable across documents, filters, and subsystem caches.
DEFAULT_INTERNER = TermInterner()


def intern_term(term: str) -> int:
    """Intern ``term`` in the shared :data:`DEFAULT_INTERNER`."""
    return DEFAULT_INTERNER.intern(term)


def intern_terms(terms: Iterable[str]) -> Tuple[int, ...]:
    """Intern every term in the shared interner, preserving order."""
    return DEFAULT_INTERNER.intern_all(terms)


def term_for_id(term_id: int) -> str:
    """Inverse of :func:`intern_term`."""
    return DEFAULT_INTERNER.term(term_id)


_shared_stemmer = PorterStemmer()


@lru_cache(maxsize=_STEM_CACHE_SIZE)
def cached_stem(word: str) -> str:
    """Memoized :meth:`PorterStemmer.stem_word` (pure function)."""
    return _shared_stemmer.stem_word(word)


_shared_tokenizer = Tokenizer()


@lru_cache(maxsize=_TOKENIZE_CACHE_SIZE)
def cached_tokenize(text: str) -> Tuple[str, ...]:
    """Memoized default-pipeline tokenization.

    Returns a tuple (hashable, safely shareable between callers) of
    the same terms :func:`repro.text.tokenizer.tokenize` yields.
    """
    return tuple(_shared_tokenizer(text))


def cached_tokenize_ids(text: str) -> Tuple[int, ...]:
    """Tokenize ``text`` and intern each term: the one-call fast path
    from raw text to dense term ids."""
    return intern_terms(cached_tokenize(text))


def interned_id_set(terms: Iterable[str]) -> FrozenSet[int]:
    """Frozen set of shared-interner ids for ``terms``."""
    intern = DEFAULT_INTERNER.intern
    return frozenset(intern(term) for term in terms)
