"""Typed stats snapshots: the uniform ``system.stats()`` payload.

Before this module each system exposed its counters ad hoc (raw
``metrics.counter(...)`` probes scattered across experiment code).
:class:`SystemStats` is the one snapshot shape all four dissemination
systems now return from ``system.stats()``, built entirely from the
system's :class:`~repro.obs.metrics.MetricsRegistry` so experiments
and the registry can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .metrics import MetricsRegistry


@dataclass(frozen=True)
class SystemStats:
    """Point-in-time totals for one dissemination system.

    The named fields are the cross-scheme comparable core (identical
    totals on all four systems for the same workload); scheme-specific
    extras remain reachable through :attr:`counters` /
    :attr:`load_totals`, which snapshot the whole registry.
    """

    #: Scheme label ("Move", "IL", "RS", "Central").
    system: str
    #: Currently registered filters (registrations minus removals).
    active_filters: int
    #: Documents pushed through ``publish``/``publish_batch``.
    documents_published: float
    #: Lifetime filter registrations (monotone; includes removed ones).
    filters_registered: float
    #: Lifetime filter removals.
    filters_unregistered: float
    #: Total document deliveries summed over nodes (Figure 9a numerator).
    documents_received: float
    #: Total posting entries scanned, summed over nodes (Figure 9b).
    posting_entries: float
    #: Distinct nodes that ever received a document.
    nodes_touched: int
    #: Coordinator refreshes invoked (MOVE only; 0.0 elsewhere).
    reallocations: float = 0.0
    #: Refreshes the drift gate skipped without replanning.
    reallocations_skipped: float = 0.0
    #: Every counter's value, keyed by name.
    counters: Dict[str, float] = field(default_factory=dict)
    #: Every load tracker's total, keyed by name.
    load_totals: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_registry(
        cls,
        system: str,
        registry: MetricsRegistry,
        active_filters: int,
    ) -> "SystemStats":
        """Snapshot ``registry`` into the uniform shape."""
        counters = {
            name: counter.value
            for name, counter in registry.counters.items()
        }
        load_totals = {
            name: load.total() for name, load in registry.loads.items()
        }
        received = registry.loads.get("documents_received")
        return cls(
            system=system,
            active_filters=active_filters,
            documents_published=counters.get("documents_published", 0.0),
            filters_registered=counters.get("filters_registered", 0.0),
            filters_unregistered=counters.get("filters_unregistered", 0.0),
            documents_received=load_totals.get("documents_received", 0.0),
            posting_entries=load_totals.get("posting_entries", 0.0),
            nodes_touched=(
                len(received.as_dict()) if received is not None else 0
            ),
            reallocations=counters.get("reallocations", 0.0),
            reallocations_skipped=counters.get(
                "reallocations_skipped", 0.0
            ),
            counters=counters,
            load_totals=load_totals,
        )
