"""The unified metrics model: counters, gauges, loads, histograms.

Experiments read every reported number from here so there is a single
definition of, e.g., "matching cost" (Figure 9b) or "throughput"
(Figures 6–8) shared by all four systems under comparison.  The
:class:`Counter` / :class:`LoadTracker` / :class:`ThroughputMeter`
primitives are the original ``repro.sim.metrics`` ones (that module now
re-exports them from here); :class:`Gauge` and
:class:`LatencyHistogram` extend the registry for the tracing layer,
which records one histogram per span name.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotone named counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative add {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named point-in-time value (may go up or down)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


def _default_latency_bounds() -> Tuple[float, ...]:
    """Geometric bucket bounds from 1 µs to ~100 s (factor √10).

    Fifteen fixed buckets cover the whole range a publish stage can
    realistically span — from sub-microsecond dict probes to a full
    batch over a large workload — with ~half-decade resolution.
    """
    return tuple(1e-6 * math.sqrt(10.0) ** i for i in range(16))


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds).

    Bucket bounds are fixed at construction (geometric by default) so
    recording is one bisect + one increment and merging histograms
    across systems is well defined.  Values above the last bound land
    in a final overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "max")

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        chosen = (
            _default_latency_bounds() if bounds is None else tuple(bounds)
        )
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError(
                f"histogram {name}: bounds must be non-empty and sorted"
            )
        self.bounds = chosen
        self.counts = [0] * (len(chosen) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample."""
        if seconds < 0:
            raise ValueError(
                f"histogram {self.name}: negative sample {seconds}"
            )
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the q-th bucket.

        ``q`` is in [0, 1].  The overflow bucket reports the observed
        maximum (there is no finite upper bound to return).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank and bucket:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, count) pairs; the overflow bound is ``inf``."""
        bounds = list(self.bounds) + [math.inf]
        return [
            (bound, count)
            for bound, count in zip(bounds, self.counts)
            if count
        ]

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram({self.name}: n={self.count}, "
            f"mean={self.mean():.2e}s, max={self.max:.2e}s)"
        )


class LoadTracker:
    """Per-key (typically per-node) load accumulator.

    Used for Figure 9(a) storage cost and Figure 9(b) matching cost.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._load: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        self._load[key] += amount

    def set(self, key: str, amount: float) -> None:
        self._load[key] = amount

    def get(self, key: str) -> float:
        return self._load.get(key, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._load)

    def total(self) -> float:
        return sum(self._load.values())

    def mean(self) -> float:
        if not self._load:
            return 0.0
        return self.total() / len(self._load)

    def ranked(self, descending: bool = True) -> List[Tuple[str, float]]:
        """(key, load) pairs sorted by load."""
        return sorted(
            self._load.items(), key=lambda kv: kv[1], reverse=descending
        )

    def normalized_ranked(
        self, reference_mean: Optional[float] = None, descending: bool = True
    ) -> List[float]:
        """Loads divided by a reference mean, ranked.

        Figure 9 plots each node's load over the *RS scheme's* overall
        average load; pass that mean as ``reference_mean``.
        """
        mean = self.mean() if reference_mean is None else reference_mean
        if mean == 0.0:
            return [0.0 for _ in self._load]
        return [
            load / mean for _, load in self.ranked(descending=descending)
        ]

    def imbalance(self) -> float:
        """Max/mean ratio — 1.0 is perfectly balanced."""
        if not self._load:
            return 1.0
        mean = self.mean()
        if mean == 0.0:
            return 1.0
        return max(self._load.values()) / mean


class ThroughputMeter:
    """Counts completed documents and reports docs/second.

    The paper (Section VI-A): "for a document, if all matching filters
    are found, we then add the throughput by 1" — callers invoke
    :meth:`complete` exactly once per fully matched document.
    """

    def __init__(self) -> None:
        self.completed = 0
        self.started = 0
        self._first_completion: Optional[float] = None
        self._last_completion: Optional[float] = None

    def start(self) -> None:
        self.started += 1

    def complete(self, now: float) -> None:
        self.completed += 1
        if self._first_completion is None:
            self._first_completion = now
        self._last_completion = now

    def throughput(self, elapsed: float) -> float:
        """Documents fully matched per second over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed

    @property
    def completion_span(self) -> float:
        if self._first_completion is None or self._last_completion is None:
            return 0.0
        return self._last_completion - self._first_completion


@dataclass
class MetricsRegistry:
    """Bag of named metrics owned by one system (or tracer) instance.

    Counters, per-node loads, and the throughput meter predate this
    package and keep their exact semantics; gauges and latency
    histograms were added for the tracing layer (each finished span
    observes its duration into the ``span.<name>`` histogram).
    """

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, LatencyHistogram] = field(default_factory=dict)
    loads: Dict[str, LoadTracker] = field(default_factory=dict)
    meter: ThroughputMeter = field(default_factory=ThroughputMeter)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> LatencyHistogram:
        """Get-or-create; ``bounds`` applies only on first creation."""
        if name not in self.histograms:
            self.histograms[name] = LatencyHistogram(name, bounds)
        return self.histograms[name]

    def load(self, name: str) -> LoadTracker:
        if name not in self.loads:
            self.loads[name] = LoadTracker(name)
        return self.loads[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat name→value view of all counters."""
        snap = {name: c.value for name, c in self.counters.items()}
        snap["documents_completed"] = float(self.meter.completed)
        return snap


def _prom_name(prefix: str, name: str) -> str:
    """Metric name mangled to the Prometheus charset."""
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{prefix}_{safe}" if prefix else safe


def prometheus_text(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    This is the scrape surface of the service mode (``python -m repro
    serve`` answers ``metrics`` requests with it).  Counters and
    gauges map directly; each :class:`LatencyHistogram` becomes the
    conventional cumulative ``_bucket{le=...}`` series plus ``_sum``
    and ``_count``; each :class:`LoadTracker` becomes one gauge series
    labelled by key.  Metric names are prefixed and mangled to the
    Prometheus charset (dots become underscores), and families are
    emitted in sorted name order so output is diffable.
    """
    lines: List[str] = []
    for name in sorted(registry.counters):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {registry.counters[name].value:g}")
    for name in sorted(registry.gauges):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {registry.gauges[name].value:g}")
    for name in sorted(registry.histograms):
        hist = registry.histograms[name]
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = list(hist.bounds) + [math.inf]
        for bound, count in zip(bounds, hist.counts):
            cumulative += count
            le = "+Inf" if math.isinf(bound) else f"{bound:g}"
            lines.append(
                f'{metric}_bucket{{le="{le}"}} {cumulative}'
            )
        lines.append(f"{metric}_sum {hist.total:g}")
        lines.append(f"{metric}_count {hist.count}")
    for name in sorted(registry.loads):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        for key, value in sorted(registry.loads[name].as_dict().items()):
            lines.append(f'{metric}{{key="{key}"}} {value:g}')
    meter = _prom_name(prefix, "documents_completed")
    lines.append(f"# TYPE {meter} counter")
    lines.append(f"{meter} {registry.meter.completed}")
    return "\n".join(lines) + "\n"
