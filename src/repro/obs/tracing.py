"""Pipeline tracing: nested spans over publish/batch dissemination.

The span model mirrors the staged pipeline
(:mod:`repro.core.pipeline`) one-to-one:

- ``publish_batch`` — root span, one per batch, tagged with the system
  name and batch size;
- ``publish`` — one child per document, tagged with the document id,
  fanout, and candidate/match counts once the plan is known;
- ``observe`` / ``ingest`` / ``route`` / ``execute`` / ``account`` —
  one child of ``publish`` per pipeline stage per document;
- ``execute_node`` — children of ``execute``, one per per-node work
  fold, tagged with the node id and its posting costs, so hot-node
  skew and partition-pick imbalance are directly visible.

Spans are plain records collected on the :class:`Tracer`; every
finished span also observes its duration into the tracer's
:class:`~repro.obs.metrics.MetricsRegistry` under the
``span.<name>`` histogram, which is what
:meth:`Tracer.stage_summary` and ``scripts/trace_report.py`` read.

The disabled path is free by construction: :data:`NULL_TRACER` (a
:class:`NullTracer`) reports ``enabled = False``, the pipeline checks
that flag once per batch and takes the untraced branch, and the
null tracer's :meth:`~NullTracer.span` returns one shared no-op span
object — no allocation anywhere on the path.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

from ..sim.engine import Clock, PERF_CLOCK
from .metrics import MetricsRegistry


class Span:
    """One timed, tagged region, nested under a parent span.

    Used as a context manager (``with tracer.span("route") as span:``);
    entering records the start time and parenthood, exiting records the
    end time and hands the finished span back to the tracer.  Extra
    tags may be attached mid-flight via :meth:`annotate` (e.g. the
    fanout, which is only known once the plan is built).
    """

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "tags",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        tags: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.tags = tags

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    def annotate(self, **tags: Any) -> "Span":
        """Attach extra tags to an open (or finished) span."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._pop(self)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready record (times relative to the tracer epoch)."""
        epoch = self.tracer._epoch
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start - epoch,
            "end_s": self.end - epoch,
            "duration_s": self.duration,
            "tags": self.tags,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name} #{self.span_id} "
            f"{self.duration * 1e6:.1f}us {self.tags})"
        )


class Tracer:
    """Collects nested spans and backs them with a metrics registry.

    Single-threaded by design (like the simulator): parenthood is a
    plain stack, so spans nest in call order.  Every finished span is
    appended to :attr:`spans` and its duration observed into the
    ``span.<name>`` histogram of :attr:`registry`; the per-span-name
    counter ``spans`` tracks the total emitted.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Timebase for span boundaries.  Defaults to the wall
        #: ``PERF_CLOCK``; pass the pipeline's clock (e.g. a
        #: :class:`~repro.sim.engine.Simulator`) so span times share
        #: the dataplane's timebase.
        self.clock = clock if clock is not None else PERF_CLOCK
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self._epoch = self.clock.now

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, **tags: Any) -> Span:
        """Open a new span; use as a context manager."""
        self._next_id += 1
        return Span(self, self._next_id, name, tags)

    def _push(self, span: Span) -> None:
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        self._stack.append(span)
        span.start = self.clock.now

    def _pop(self, span: Span) -> None:
        span.end = self.clock.now
        top = self._stack.pop()
        if top is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span {span.name!r} closed while {top.name!r} was open"
            )
        self._record(span)

    def emit(
        self, name: str, start: float, end: float, **tags: Any
    ) -> Span:
        """Record an already-timed span under the current parent.

        Used where the region boundaries are observed rather than
        wrapped — e.g. the per-node ``execute_node`` sub-spans, whose
        boundaries are the work-accumulator fold times.
        """
        self._next_id += 1
        span = Span(self, self._next_id, name, tags)
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        span.start = start
        span.end = end
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        self.spans.append(span)
        self.registry.counter("spans").add()
        self.registry.histogram(f"span.{span.name}").observe(span.duration)

    # -- reporting -----------------------------------------------------------

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name latency summary from the backing histograms.

        ``{name: {count, total_s, mean_s, p50_s, p95_s, max_s}}``,
        with histogram-bucket-resolution percentiles.
        """
        summary: Dict[str, Dict[str, float]] = {}
        for key, hist in sorted(self.registry.histograms.items()):
            if not key.startswith("span."):
                continue
            summary[key[len("span."):]] = {
                "count": float(hist.count),
                "total_s": hist.total,
                "mean_s": hist.mean(),
                "p50_s": hist.percentile(0.50),
                "p95_s": hist.percentile(0.95),
                "max_s": hist.max,
            }
        return summary

    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Export the collected spans as JSON lines; returns the count.

        ``destination`` is a path or an open text stream.  One JSON
        object per span, in completion order (children before their
        parents, as in any post-order trace).
        """
        if hasattr(destination, "write"):
            return self._write_stream(destination)
        with open(destination, "w", encoding="utf-8") as stream:
            return self._write_stream(stream)

    def _write_stream(self, stream: IO[str]) -> int:
        for span in self.spans:
            stream.write(json.dumps(span.as_dict(), sort_keys=True))
            stream.write("\n")
        return len(self.spans)

    def reset(self) -> None:
        """Drop collected spans and registry state (tests, reuse)."""
        if self._stack:
            raise RuntimeError("cannot reset a tracer with open spans")
        self.spans.clear()
        self.registry = MetricsRegistry()
        self._next_id = 0
        self._epoch = self.clock.now


class _NullSpan:
    """The shared do-nothing span the null tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **tags: Any) -> "_NullSpan":
        return self


#: The one no-op span instance; never allocated per call.
_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``enabled`` is False and every call is a no-op.

    The pipeline branches on :attr:`enabled` once per batch, so under
    the null tracer dissemination runs the exact untraced code path;
    even direct calls allocate nothing (:meth:`span` returns the one
    shared :class:`_NullSpan`).
    """

    enabled = False

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def emit(self, name: str, start: float, end: float, **tags: Any) -> None:
        return None


#: The process-wide disabled tracer (and the default for every system).
NULL_TRACER = NullTracer()

#: Module-level default handed to newly constructed systems.
_default_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def get_default_tracer() -> Union[Tracer, NullTracer]:
    """The tracer new systems adopt (``NULL_TRACER`` unless set)."""
    return _default_tracer


def set_default_tracer(
    tracer: Optional[Union[Tracer, NullTracer]],
) -> Union[Tracer, NullTracer]:
    """Install the default tracer; ``None`` restores :data:`NULL_TRACER`.

    Returns the previous default so callers can restore it (the
    ``--trace`` flag and tests use try/finally around this).
    """
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer if tracer is not None else NULL_TRACER
    return previous
