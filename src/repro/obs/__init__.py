"""Observability: tracing spans, unified metrics, stats snapshots.

This package is the one surface through which the four dissemination
systems report what they are doing — the per-stage spans the pipeline
emits (:mod:`repro.obs.tracing`), the counters / gauges / latency
histograms / per-node loads that back them
(:mod:`repro.obs.metrics`), and the typed :class:`SystemStats`
snapshot every system returns from ``system.stats()``
(:mod:`repro.obs.stats`).

Layering: ``obs`` sits near the very bottom of the import graph — it
imports only the standard library plus the :class:`~repro.sim.engine.
Clock` abstraction (the tracer's timebase) — so every other subsystem
(``sim``, ``cluster``, ``core``) may depend on it freely.

The default tracer is :data:`NULL_TRACER`, a disabled no-op singleton:
the pipeline checks ``tracer.enabled`` once per batch and runs the
untraced fast path, so observability costs nothing unless a real
:class:`Tracer` is installed (see ``docs/OBSERVABILITY.md``).
"""

from .metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    LoadTracker,
    MetricsRegistry,
    ThroughputMeter,
    prometheus_text,
)
from .stats import SystemStats
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_default_tracer,
    set_default_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "LoadTracker",
    "MetricsRegistry",
    "ThroughputMeter",
    "prometheus_text",
    "SystemStats",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_default_tracer",
    "set_default_tracer",
]
