"""Figure 4 — ranked filter-term popularity of the MSN-like trace.

The paper plots, on log–log axes, the popularity ``p_i`` of each query
term against its popularity rank, and reports three summary statistics
of the trace (Section VI-A):

- average 2.843 terms per query,
- cumulative share of queries with at most 1/2/3 terms:
  31.33 % / 67.75 % / 85.31 %,
- accumulated popularity of the top-1000 terms: 0.437.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..stats.term_stats import PopularityTracker
from ..workloads import FilterTraceGenerator, MSN_PROFILE, SharedVocabulary
from .harness import ExperimentSeries


@dataclass
class Fig4Result:
    """Ranked popularity curve plus the trace summary statistics."""

    series: ExperimentSeries
    mean_terms_per_query: float
    cumulative_length_shares: Tuple[float, float, float]
    top_k: int
    top_k_mass: float
    distinct_terms: int

    def format_report(self) -> str:
        paper_fraction = (
            MSN_PROFILE.top_1000_popularity_mass
            / MSN_PROFILE.mean_terms_per_query
        )
        measured_fraction = (
            self.top_k_mass / self.mean_terms_per_query
            if self.mean_terms_per_query
            else 0.0
        )
        lines = [
            "# Figure 4: filter term popularity (MSN-like trace)",
            f"mean terms/query:      {self.mean_terms_per_query:.3f}"
            f"   (paper: {MSN_PROFILE.mean_terms_per_query})",
            "cumulative <=1/2/3:    "
            + "/".join(
                f"{share:.4f}" for share in self.cumulative_length_shares
            )
            + "   (paper: 0.3133/0.6775/0.8531)",
            f"top-{self.top_k} draw share:  {measured_fraction:.3f}"
            f"   (paper: {paper_fraction:.3f} = 0.437/2.843 for "
            f"top-1000 of 757,996 terms)",
            f"distinct terms:        {self.distinct_terms}",
        ]
        from ..experiments.plotting import ascii_plot

        lines.append(
            ascii_plot(
                [self.series],
                log_x=True,
                log_y=True,
                title="ranked term popularity (log-log)",
            )
        )
        return "\n".join(lines)


def run_fig4(
    num_filters: int = 20_000,
    vocabulary_size: int = 10_000,
    seed: int = 7,
    max_rank_points: int = 2_000,
) -> Fig4Result:
    """Generate a scaled MSN-like trace and measure its skew."""
    vocabulary = SharedVocabulary(
        size=vocabulary_size, overlap_fraction=0.3, seed=seed
    )
    generator = FilterTraceGenerator(vocabulary, seed=seed)
    tracker = PopularityTracker()
    length_counts: Dict[int, int] = {}
    total_terms = 0
    for profile in generator.iter_generate(num_filters):
        tracker.register(profile)
        length = len(profile)
        length_counts[length] = length_counts.get(length, 0) + 1
        total_terms += length

    ranked = tracker.ranked()
    series = ExperimentSeries(
        label="MSN trace",
        x_label="ranking id",
        y_label="term popularity",
    )
    for rank, (_term, popularity) in enumerate(
        ranked[:max_rank_points], start=1
    ):
        series.add(float(rank), popularity)

    cumulative = []
    running = 0
    for length in (1, 2, 3):
        running += length_counts.get(length, 0)
        cumulative.append(running / num_filters)

    # Scale-equivalent of the paper's top-1000 (of 757,996 terms).
    top_k = max(1, int(round(vocabulary_size * 1000 / 757_996)))
    return Fig4Result(
        series=series,
        mean_terms_per_query=total_terms / num_filters,
        cumulative_length_shares=tuple(cumulative),  # type: ignore[arg-type]
        top_k=top_k,
        top_k_mass=tracker.top_mass(top_k),
        distinct_terms=len(ranked),
    )
