"""Figure 8 — cluster scalability of Move vs RS vs IL.

Three sweeps at the (scaled) defaults P = 4e6, Q = 1e3/s, N = 20,
C = 3e6, TREC WT documents:

- (a) throughput vs total filters P (paper 1e5 → 1e7; at 1e7 the
  throughputs are Move 93 > RS 70 > IL 42),
- (b) throughput vs injected documents per second Q (10 → 1e4; the
  degradation folds from 10 to 1000 are Move 3.62x < RS 6.09x <
  IL 14.11x),
- (c) throughput vs node count N (→ 100; all schemes improve, Move
  stays highest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .harness import (
    ExperimentSeries,
    ScaledWorkload,
    ThroughputResult,
    format_multi_series,
    run_scheme_once,
)

SCHEMES = ("Move", "IL", "RS")


@dataclass
class ClusterSweep:
    """One Figure 8 panel: throughput curves for all three schemes."""

    title: str
    series: Dict[str, ExperimentSeries]
    results: List[ThroughputResult]

    def format_report(self) -> str:
        from .plotting import ascii_plot

        table = format_multi_series(
            self.title, [self.series[s] for s in SCHEMES]
        )
        plot = ascii_plot(
            [self.series[s] for s in SCHEMES],
            log_x=True,
            log_y=True,
            title=f"{self.title} (log-log)",
        )
        return f"{table}\n{plot}"

    def final_ordering(self) -> List[str]:
        """Schemes ranked by throughput at the last x point."""
        return sorted(
            SCHEMES, key=lambda s: self.series[s].ys[-1], reverse=True
        )


def _new_series(x_label: str) -> Dict[str, ExperimentSeries]:
    return {
        scheme: ExperimentSeries(
            label=scheme,
            x_label=x_label,
            y_label="throughput (docs/s)",
        )
        for scheme in SCHEMES
    }


def run_fig8a(
    filter_counts: Sequence[int] = (100, 1_000, 4_000, 10_000),
    base: Optional[ScaledWorkload] = None,
    seed: int = 0,
) -> ClusterSweep:
    """Throughput vs number of registered filters (paper 1e5–1e7/1000)."""
    base = base or ScaledWorkload()
    series = _new_series("P: num filters")
    results: List[ThroughputResult] = []
    for count in filter_counts:
        workload = ScaledWorkload(
            num_filters=count,
            num_documents=base.num_documents,
            num_nodes=base.num_nodes,
            node_capacity=base.node_capacity,
            vocabulary_size=base.vocabulary_size,
            mean_doc_terms=base.mean_doc_terms,
            corpus_profile=base.corpus_profile,
            injection_rate=base.injection_rate,
            seed=base.seed,
        )
        bundle = workload.build()
        for scheme in SCHEMES:
            result = run_scheme_once(scheme, bundle, seed=seed)
            series[scheme].add(float(count), result.throughput)
            results.append(result)
    return ClusterSweep(
        title="Figure 8(a): throughput vs filters",
        series=series,
        results=results,
    )


def run_fig8b(
    injection_rates: Sequence[float] = (10, 100, 1_000, 10_000),
    base: Optional[ScaledWorkload] = None,
    seed: int = 0,
) -> ClusterSweep:
    """Throughput vs injected documents per second."""
    base = base or ScaledWorkload()
    bundle = base.build()
    series = _new_series("Q: docs per second")
    results: List[ThroughputResult] = []
    for rate in injection_rates:
        for scheme in SCHEMES:
            result = run_scheme_once(
                scheme, bundle, injection_rate=rate, seed=seed
            )
            series[scheme].add(float(rate), result.throughput)
            results.append(result)
    return ClusterSweep(
        title="Figure 8(b): throughput vs document rate",
        series=series,
        results=results,
    )


def degradation_folds(sweep: ClusterSweep) -> Dict[str, float]:
    """First-to-third-point throughput fold drop per scheme.

    With the default rates (10, 100, 1000, ...) this reproduces the
    paper's "when Q grows 10 to 1000" comparison: Move 3.62x,
    RS 6.09x, IL 14.11x at paper scale — the *ordering* (Move smallest)
    is the reproduction target.
    """
    folds = {}
    for scheme in SCHEMES:
        ys = sweep.series[scheme].ys
        reference = ys[min(2, len(ys) - 1)]
        folds[scheme] = ys[0] / reference if reference else float("inf")
    return folds


def run_fig8c(
    node_counts: Sequence[int] = (20, 40, 60, 80, 100),
    base: Optional[ScaledWorkload] = None,
    seed: int = 0,
) -> ClusterSweep:
    """Throughput vs cluster size (paper's x axis reaches 100)."""
    base = base or ScaledWorkload()
    bundle = base.build()
    series = _new_series("N: num nodes")
    results: List[ThroughputResult] = []
    for nodes in node_counts:
        for scheme in SCHEMES:
            result = run_scheme_once(
                scheme, bundle, num_nodes=nodes, seed=seed
            )
            series[scheme].add(float(nodes), result.throughput)
            results.append(result)
    return ClusterSweep(
        title="Figure 8(c): throughput vs nodes",
        series=series,
        results=results,
    )
