"""Terminal plotting: render experiment series as ASCII charts.

The paper's figures are log–log or semi-log curves; these helpers give
the text-mode equivalent so ``python -m repro experiments`` output can
be eyeballed for shape without leaving the terminal.  No plotting
dependencies — just character grids.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .harness import ExperimentSeries

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"


def _transform(values: Sequence[float], log: bool) -> List[float]:
    if not log:
        return list(values)
    return [math.log10(v) if v > 0 else float("-inf") for v in values]


def ascii_plot(
    series_list: Sequence[ExperimentSeries],
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render one or more series on a shared character grid.

    Each series gets a marker from :data:`MARKERS`; a legend and axis
    ranges are appended.  Points with non-positive coordinates are
    dropped from log-scaled axes.
    """
    if width < 10 or height < 4:
        raise ValueError("plot must be at least 10x4 characters")
    populated = [s for s in series_list if s.xs]
    if not populated:
        return f"# {title or 'plot'}\n(no data)"

    all_x: List[float] = []
    all_y: List[float] = []
    for series in populated:
        xs = _transform(series.xs, log_x)
        ys = _transform(series.ys, log_y)
        for x, y in zip(xs, ys):
            if math.isfinite(x) and math.isfinite(y):
                all_x.append(x)
                all_y.append(y)
    if not all_x:
        return f"# {title or 'plot'}\n(no finite points)"
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(populated):
        marker = MARKERS[index % len(MARKERS)]
        xs = _transform(series.xs, log_x)
        ys = _transform(series.ys, log_y)
        for x, y in zip(xs, ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            column = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(f"# {title}")
    border = "+" + "-" * width + "+"
    lines.append(border)
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(border)

    def axis_label(lo: float, hi: float, log: bool) -> str:
        if log:
            return f"1e{lo:.2g} .. 1e{hi:.2g}"
        return f"{lo:.4g} .. {hi:.4g}"

    lines.append(
        f"x: {populated[0].x_label} [{axis_label(x_lo, x_hi, log_x)}]"
        f"{' (log)' if log_x else ''}"
    )
    lines.append(
        f"y: {populated[0].y_label} [{axis_label(y_lo, y_hi, log_y)}]"
        f"{' (log)' if log_y else ''}"
    )
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={s.label}"
        for i, s in enumerate(populated)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """One-line trend summary using block characters."""
    blocks = " .:-=+*#%@"
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))]
        if math.isfinite(v)
        else "?"
        for v in sampled
    )
