"""Figure 9 — maintenance: load distribution and fault tolerance.

- (a) ranked per-node **storage cost**, each node's load divided by the
  RS scheme's cluster-wide mean: RS is the most even (consistent
  hashing of filter ids), Move is balanced by allocation, IL is the
  most skewed (term popularity ``p_i``).
- (b) ranked per-node **matching cost** (documents received): IL is
  the most skewed (term frequency ``q_i``); Move is *more even than
  RS* because documents are spread over the ``1/r_i`` partitions.
- (c) throughput under node failure (rates 0 and 0.3) for the three
  placement policies: rack-aware placement is fastest (intra-rack
  transfers), ring placement slowest, Move's hybrid in between.
- (d) filter availability under (rack-correlated) failure: rack-aware
  is the least available (a dead rack takes every copy), ring the most,
  Move's hybrid close to ring — the reason MOVE combines both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import random

from ..core import MoveSystem
from .harness import (
    ExperimentSeries,
    ScaledWorkload,
    ThroughputResult,
    build_cluster,
    make_system,
    run_scheme_once,
)
from .fig8_cluster import SCHEMES


# ---------------------------------------------------------------------------
# Figure 9 (a)/(b): load distributions
# ---------------------------------------------------------------------------

@dataclass
class LoadDistributionResult:
    """Ranked normalized per-node loads for all three schemes."""

    metric: str  # "storage" or "matching"
    #: scheme -> loads ranked descending, normalized by the RS mean.
    ranked: Dict[str, List[float]]

    def imbalance(self, scheme: str) -> float:
        """Max over mean of the scheme's own distribution."""
        loads = self.ranked[scheme]
        if not loads:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def format_report(self) -> str:
        lines = [f"# Figure 9({'a' if self.metric == 'storage' else 'b'}): "
                 f"{self.metric} cost distribution (normalized to RS mean)"]
        header = f"{'rank':>6s}" + "".join(
            f"  {scheme:>10s}" for scheme in SCHEMES
        )
        lines.append(header)
        length = max(len(v) for v in self.ranked.values())
        for i in range(length):
            row = [f"{i + 1:6d}"]
            for scheme in SCHEMES:
                loads = self.ranked[scheme]
                row.append(
                    f"  {loads[i]:10.3f}" if i < len(loads) else " " * 12
                )
            lines.append("".join(row))
        lines.append(
            "imbalance (max/mean): "
            + ", ".join(
                f"{scheme}={self.imbalance(scheme):.2f}"
                for scheme in SCHEMES
            )
        )
        return "\n".join(lines)


def _build_and_run(
    scheme: str, bundle, seed: int = 0
) -> Tuple[object, object]:
    """Register, allocate, publish the full stream; return (system,
    cluster) with metrics populated."""
    workload = bundle.workload
    cluster, config = build_cluster(
        workload.num_nodes, workload.node_capacity, seed=seed
    )
    system = make_system(scheme, cluster, config)
    system.subscribe(bundle.filters)
    if isinstance(system, MoveSystem):
        system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    for document in bundle.documents:
        system.publish(document)
    return system, cluster


def run_fig9a(
    base: Optional[ScaledWorkload] = None, seed: int = 0
) -> LoadDistributionResult:
    """Ranked storage cost per node, normalized to the RS mean."""
    base = base or ScaledWorkload()
    bundle = base.build()
    distributions: Dict[str, Dict[str, float]] = {}
    for scheme in SCHEMES:
        system, _cluster = _build_and_run(scheme, bundle, seed=seed)
        distributions[scheme] = system.storage_distribution()
    rs_values = list(distributions["RS"].values())
    rs_mean = sum(rs_values) / len(rs_values) if rs_values else 1.0
    ranked = {
        scheme: sorted(
            (value / rs_mean for value in dist.values()), reverse=True
        )
        for scheme, dist in distributions.items()
    }
    return LoadDistributionResult(metric="storage", ranked=ranked)


def run_fig9b(
    base: Optional[ScaledWorkload] = None, seed: int = 0
) -> LoadDistributionResult:
    """Ranked matching cost (documents received) per node."""
    base = base or ScaledWorkload()
    bundle = base.build()
    distributions: Dict[str, Dict[str, float]] = {}
    for scheme in SCHEMES:
        system, cluster = _build_and_run(scheme, bundle, seed=seed)
        received = system.metrics.load("documents_received").as_dict()
        # Nodes that received nothing still count in the distribution.
        for node_id in cluster.node_ids():
            received.setdefault(node_id, 0.0)
        distributions[scheme] = received
    rs_values = list(distributions["RS"].values())
    rs_mean = sum(rs_values) / len(rs_values) if rs_values else 1.0
    ranked = {
        scheme: sorted(
            (value / rs_mean for value in dist.values()), reverse=True
        )
        for scheme, dist in distributions.items()
    }
    return LoadDistributionResult(metric="matching", ranked=ranked)


# ---------------------------------------------------------------------------
# Figure 9 (c)/(d): node failure
# ---------------------------------------------------------------------------

PLACEMENTS = ("move", "ring", "rack")


@dataclass
class FailureResult:
    """Throughput and availability per placement and failure rate."""

    #: (placement, failure_rate) -> throughput (docs/s).
    throughput: Dict[Tuple[str, float], float] = field(
        default_factory=dict
    )
    #: (placement, failure_rate) -> matched / expected match ratio.
    availability: Dict[Tuple[str, float], float] = field(
        default_factory=dict
    )

    def format_report(self) -> str:
        lines = ["# Figure 9(c/d): node failure"]
        rates = sorted({rate for _p, rate in self.throughput})
        header = f"{'placement':>10s}" + "".join(
            f"  tput@{rate:g}  avail@{rate:g}" for rate in rates
        )
        lines.append(header)
        for placement in PLACEMENTS:
            row = [f"{placement:>10s}"]
            for rate in rates:
                tput = self.throughput.get((placement, rate), float("nan"))
                avail = self.availability.get(
                    (placement, rate), float("nan")
                )
                row.append(f"  {tput:8.1f}  {avail:9.3f}")
            lines.append("".join(row))
        return "\n".join(lines)


def run_fig9cd(
    failure_rates: Sequence[float] = (0.0, 0.3),
    base: Optional[ScaledWorkload] = None,
    rack_correlated: bool = True,
    seed: int = 0,
) -> FailureResult:
    """Run MOVE under each placement policy and failure rate.

    ``placement='move'`` is the paper's hybrid.  Availability is the
    fraction of should-have-matched filter deliveries that were still
    reachable, relative to the failure-free run (the paper's "rate of
    still available filters under failure against the case without
    failure").
    """
    base = base or ScaledWorkload()
    bundle = base.build()
    result = FailureResult()
    placement_mode = {"move": "hybrid", "ring": "ring", "rack": "rack"}
    baseline_matches: Dict[str, int] = {}
    for placement in PLACEMENTS:
        for rate in failure_rates:
            run = run_scheme_once(
                "Move",
                bundle,
                placement=placement_mode[placement],
                fail_fraction=rate,
                fail_whole_racks=rack_correlated,
                seed=seed,
            )
            result.throughput[(placement, rate)] = run.throughput
            if rate == 0.0:
                baseline_matches[placement] = run.total_matches
                result.availability[(placement, rate)] = 1.0
            else:
                reference = baseline_matches.get(placement)
                result.availability[(placement, rate)] = (
                    run.total_matches / reference
                    if reference
                    else float("nan")
                )
    return result
