"""Figures 6 and 7 — single-node throughput at fixed ``R = P * Q``.

On one node, the paper fixes the product ``R`` of filter count ``P``
and document count ``Q`` and sweeps ``Q``: throughput rises as ``Q``
shrinks (fewer large documents, more short filters), except at very
large ``P`` where the working set spills and disk IO becomes the
bottleneck — with ``R = 1e7``, ``Q = 2`` (``P = 5e6``) is slightly
*slower* than ``Q = 10`` (``P = 1e6``).

Figure 6 uses TREC AP documents (huge articles), Figure 7 TREC WT
(small web pages); the paper finds WT throughput ~81.84x higher at
``R = 1e6, Q = 100``, roughly tracking the document-length ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.centralized import CentralizedSift
from ..config import CostModelConfig
from ..sim.costs import MatchCostModel
from ..workloads import (
    CorpusGenerator,
    CorpusProfile,
    FilterTraceGenerator,
    SharedVocabulary,
    TREC_AP_PROFILE,
    TREC_WT_PROFILE,
)
from .harness import ExperimentSeries, format_multi_series


@dataclass
class SingleNodeSweep:
    """One corpus's family of fixed-R curves."""

    corpus: str
    series: List[ExperimentSeries]

    def format_report(self) -> str:
        return format_multi_series(
            f"Figures 6/7: single node throughput ({self.corpus})",
            self.series,
        )

    def throughput_at(self, r_value: float, q: int) -> float:
        for s in self.series:
            if s.label == f"P*Q = {r_value:g}":
                for x, y in s.rows():
                    if int(x) == q:
                        return y
        raise KeyError(f"no point R={r_value}, Q={q}")


def run_single_node(
    profile: CorpusProfile,
    r_values: Sequence[float] = (1e4, 1e5, 1e6),
    q_values: Sequence[int] = (2, 10, 50, 100, 200, 1000),
    vocabulary_size: int = 10_000,
    mean_doc_terms: Optional[float] = None,
    memory_capacity: int = 300_000,
    disk_pressure_slope: float = 0.5,
    seed: int = 11,
) -> SingleNodeSweep:
    """Sweep ``Q`` at each fixed ``R`` on a single SIFT node.

    ``R`` values are scaled from the paper's 1e5–1e7 by the same
    ~1/10 factor per axis as the cluster experiments;
    ``memory_capacity`` scales the paper's ~5e6-filter disk knee
    accordingly (Q=2 at the largest R exceeds it and dips below Q=10,
    reproducing Figure 6's exception).  The cost model's ``y_p`` is
    raised relative to the seek cost so the paper's 8.92x fixed-R fold
    is matched (see EXPERIMENTS.md for the calibration).
    """
    if mean_doc_terms is None:
        mean_doc_terms = (
            600.0 if profile is TREC_AP_PROFILE else 64.8
        )
    cost_model = MatchCostModel(
        CostModelConfig(y_p=2e-5, y_d=1e-4, y_seek=5e-5)
    )
    vocabulary = SharedVocabulary(
        size=vocabulary_size,
        overlap_fraction=profile.query_overlap,
        seed=seed,
    )
    filter_gen = FilterTraceGenerator(vocabulary, seed=seed + 1)
    corpus_gen = CorpusGenerator(
        vocabulary,
        profile,
        seed=seed + 2,
        mean_terms_override=mean_doc_terms,
    )
    all_series: List[ExperimentSeries] = []
    for r_value in r_values:
        series = ExperimentSeries(
            label=f"P*Q = {r_value:g}",
            x_label="Q: num docs",
            y_label="throughput (match work/s)",
        )
        for q in q_values:
            p = max(1, int(round(r_value / q)))
            node = CentralizedSift(
                cost_model=cost_model,
                memory_capacity=memory_capacity,
                disk_pressure_slope=disk_pressure_slope,
            )
            node.register_all(filter_gen.iter_generate(p, prefix=f"f{q}_"))
            documents = corpus_gen.generate(q, prefix=f"d{q}_")
            result = node.run_batch(documents)
            series.add(float(q), result.pair_throughput)
        all_series.append(series)
    return SingleNodeSweep(corpus=profile.name, series=all_series)


def run_fig6(**kwargs) -> SingleNodeSweep:
    """Figure 6: TREC AP documents."""
    return run_single_node(TREC_AP_PROFILE, **kwargs)


def run_fig7(**kwargs) -> SingleNodeSweep:
    """Figure 7: TREC WT documents."""
    return run_single_node(TREC_WT_PROFILE, **kwargs)


def wt_over_ap_ratio(
    r_value: float = 1e5,
    q: int = 100,
    **kwargs,
) -> float:
    """The Figure 6-vs-7 headline: WT throughput over AP throughput.

    The paper reports ~81.84x at R = 1e6, Q = 100 (paper scale),
    roughly the ratio of mean document lengths (6054.9 / 64.8 ≈ 93).
    """
    ap = run_fig6(r_values=(r_value,), q_values=(q,), **kwargs)
    wt = run_fig7(r_values=(r_value,), q_values=(q,), **kwargs)
    ap_tput = ap.throughput_at(r_value, q)
    wt_tput = wt.throughput_at(r_value, q)
    if ap_tput == 0:
        return float("inf")
    return wt_tput / ap_tput
