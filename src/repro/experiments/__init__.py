"""Experiment harness: one module per paper figure.

Every table and figure of the paper's evaluation (Section VI) has a
regenerating function here; ``benchmarks/`` wraps them in
pytest-benchmark targets and EXPERIMENTS.md records paper-vs-measured.

- :mod:`repro.experiments.harness` — the cluster throughput harness
  (discrete-event), workload builders, series/table reporting,
- :mod:`repro.experiments.fig4_term_popularity` — Figure 4,
- :mod:`repro.experiments.fig5_doc_frequency` — Figure 5,
- :mod:`repro.experiments.fig67_single_node` — Figures 6 and 7,
- :mod:`repro.experiments.fig8_cluster` — Figure 8 (a–c),
- :mod:`repro.experiments.fig9_maintenance` — Figure 9 (a–d),
- :mod:`repro.experiments.registry` — id → runner mapping.
"""

from .harness import (
    ClusterThroughputHarness,
    ExperimentSeries,
    ScaledWorkload,
    StreamingWorkload,
    ThroughputResult,
    build_cluster,
    make_system,
    register_streaming,
    run_scheme_once,
)
from .plotting import ascii_plot, sparkline

__all__ = [
    "ClusterThroughputHarness",
    "ThroughputResult",
    "ExperimentSeries",
    "ScaledWorkload",
    "StreamingWorkload",
    "register_streaming",
    "run_scheme_once",
    "build_cluster",
    "make_system",
    "ascii_plot",
    "sparkline",
]
