"""Cluster throughput harness and shared experiment plumbing.

The throughput experiment mirrors Section VI-A's methodology: register
all filters, then inject documents at a fixed rate from clients;
"for a document, if all matching filters are found, we then add the
throughput by 1; after all documents are published, we measure the
overall average throughput per second."

The harness executes each document's dissemination plan on the
discrete-event cluster: network hops (rack-locality aware) deliver the
payload, each destination node serves its match job on its disk-bound
FIFO queue, and the document completes when its last task finishes.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..baselines import (
    CentralizedSystem,
    DisseminationSystem,
    InvertedListSystem,
    RendezvousSystem,
)
from ..cluster.cluster import Cluster
from ..config import (
    AllocationConfig,
    ClusterConfig,
    CostModelConfig,
    SystemConfig,
)
from ..core import MoveSystem
from ..model import Document, Filter, Subscription
from ..text import tokenize
from ..sim.costs import MatchCostModel
from ..workloads import (
    CorpusGenerator,
    CorpusProfile,
    FilterTraceGenerator,
    SharedVocabulary,
    TREC_WT_PROFILE,
    UniformArrivals,
)


# ---------------------------------------------------------------------------
# Results and reporting
# ---------------------------------------------------------------------------

@dataclass
class ThroughputResult:
    """One throughput measurement (one point of Figures 8/9c).

    ``throughput`` is the paper's metric: documents fully matched per
    second of *bottleneck* processing time — the busiest node's busy
    time bounds how fast the cluster can drain matching work, so under
    saturation it equals completions per wall second.  ``elapsed`` (the
    arrival-to-last-completion span) is kept for diagnostics.
    """

    system: str
    documents: int
    completed: int
    elapsed: float
    bottleneck_busy: float
    throughput: float
    mean_fanout: float
    total_matches: int
    unreachable: int = 0

    def __str__(self) -> str:
        return (
            f"{self.system:>5s}: {self.throughput:10.2f} docs/s "
            f"({self.completed}/{self.documents} docs, "
            f"fanout {self.mean_fanout:.1f})"
        )


@dataclass
class ExperimentSeries:
    """A labelled (x, y) series — one curve of one figure."""

    label: str
    x_label: str
    y_label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.xs, self.ys))

    def format_table(self) -> str:
        lines = [
            f"# {self.label}",
            f"{self.x_label:>16s}  {self.y_label:>16s}",
        ]
        for x, y in self.rows():
            lines.append(f"{x:16.6g}  {y:16.6g}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + rows) for external plotting."""

        def quote(field: str) -> str:
            if any(ch in field for ch in ',"\n'):
                return '"' + field.replace('"', '""') + '"'
            return field

        lines = [f"{quote(self.x_label)},{quote(self.y_label)}"]
        lines.extend(f"{x:.10g},{y:.10g}" for x, y in self.rows())
        return "\n".join(lines) + "\n"

    def write_csv(self, path) -> None:
        """Write :meth:`to_csv` output to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_csv())


def format_multi_series(
    title: str, series: Sequence[ExperimentSeries]
) -> str:
    """Side-by-side table of several series sharing an x axis."""
    if not series:
        return f"# {title}\n(empty)"
    header = f"{series[0].x_label:>16s}" + "".join(
        f"  {s.label:>14s}" for s in series
    )
    lines = [f"# {title}", header]
    for row_index in range(len(series[0].xs)):
        cells = [f"{series[0].xs[row_index]:16.6g}"]
        for s in series:
            value = s.ys[row_index] if row_index < len(s.ys) else float("nan")
            cells.append(f"  {value:14.6g}")
        lines.append("".join(cells))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Workload construction (scaled-down paper defaults)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScaledWorkload:
    """A scaled version of the paper's evaluation workload.

    Paper scale: P = 4e6 filters, Q = 1e3 docs/s, N = 20 nodes,
    C = 3e6 filters/node, TREC WT documents.  The pure-Python default
    divides filter/document counts by 1000 and scales the per-node
    capacity in proportion so the storage-budget geometry (C / (P/N))
    is preserved — EXPERIMENTS.md records this factor.
    """

    num_filters: int = 4_000
    num_documents: int = 500
    num_nodes: int = 20
    node_capacity: int = 3_000
    vocabulary_size: int = 10_000
    mean_doc_terms: Optional[float] = 64.8
    corpus_profile: CorpusProfile = TREC_WT_PROFILE
    injection_rate: float = 1_000.0
    seed: int = 7
    #: Fraction of the filter trace upgraded to boolean predicate
    #: subscriptions (AND/OR/NOT over the filter's own terms, drawn
    #: from a dedicated ``seed + 4`` RNG stream so the flat workload
    #: at 0.0 — the default — is bit-identical to the pre-predicate
    #: harness, and build/stream stay twins at any fraction).
    predicate_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.predicate_fraction <= 1.0:
            raise ValueError(
                "predicate_fraction must be in [0, 1], got "
                f"{self.predicate_fraction}"
            )

    def build(self) -> "WorkloadBundle":
        vocabulary = SharedVocabulary(
            size=self.vocabulary_size,
            overlap_fraction=self.corpus_profile.query_overlap,
            overlap_k=max(10, self.vocabulary_size // 10),
            seed=self.seed,
        )
        filter_gen = FilterTraceGenerator(vocabulary, seed=self.seed + 1)
        corpus_gen = CorpusGenerator(
            vocabulary,
            self.corpus_profile,
            seed=self.seed + 2,
            mean_terms_override=self.mean_doc_terms,
        )
        filters = filter_gen.generate(self.num_filters)
        if self.predicate_fraction > 0.0:
            filters = list(
                _iter_with_predicates(iter(filters), self, vocabulary)
            )
        documents = corpus_gen.generate(self.num_documents)
        return WorkloadBundle(
            workload=self,
            vocabulary=vocabulary,
            filters=filters,
            documents=documents,
        )

    def stream(self) -> "StreamingWorkload":
        """The never-materialized twin of :meth:`build`.

        Only the shared vocabulary is held in memory; filters and
        documents are regenerated on demand from the same seeds, so a
        streamed run sees bit-identical workload objects to a built
        one without ever holding ``num_filters`` profiles at once.
        This is what lets the scale bench drive million-filter runs
        at a resident set bounded by the system under test, not the
        workload.
        """
        vocabulary = SharedVocabulary(
            size=self.vocabulary_size,
            overlap_fraction=self.corpus_profile.query_overlap,
            overlap_k=max(10, self.vocabulary_size // 10),
            seed=self.seed,
        )
        return StreamingWorkload(workload=self, vocabulary=vocabulary)


@dataclass
class WorkloadBundle:
    """Materialized workload: vocabulary, filters and documents."""

    workload: ScaledWorkload
    vocabulary: SharedVocabulary
    filters: List[Filter]
    documents: List[Document]

    def offline_corpus(self, size: int = 100) -> List[Document]:
        """The q_i bootstrap corpus (the paper uses 1000 documents)."""
        generator = CorpusGenerator(
            self.vocabulary,
            self.workload.corpus_profile,
            seed=self.workload.seed + 3,
            mean_terms_override=self.workload.mean_doc_terms,
        )
        return generator.generate(size, prefix="seed")


@dataclass
class StreamingWorkload:
    """Workload whose filters/documents are generated, never stored.

    Each ``iter_*`` call builds a fresh generator from the same seeds
    :meth:`ScaledWorkload.build` uses, so the yielded objects are
    bit-identical to the materialized bundle's — the streaming and
    built paths are twins, not approximations.
    """

    workload: ScaledWorkload
    vocabulary: SharedVocabulary

    def iter_filters(self) -> Iterator[Filter]:
        generator = FilterTraceGenerator(
            self.vocabulary, seed=self.workload.seed + 1
        )
        base = generator.iter_generate(self.workload.num_filters)
        if self.workload.predicate_fraction > 0.0:
            return _iter_with_predicates(
                base, self.workload, self.vocabulary
            )
        return base

    def iter_documents(self) -> Iterator[Document]:
        generator = CorpusGenerator(
            self.vocabulary,
            self.workload.corpus_profile,
            seed=self.workload.seed + 2,
            mean_terms_override=self.workload.mean_doc_terms,
        )
        return generator.iter_generate(self.workload.num_documents)

    def offline_corpus(self, size: int = 100) -> List[Document]:
        """Same bootstrap corpus as :meth:`WorkloadBundle.offline_corpus`."""
        generator = CorpusGenerator(
            self.vocabulary,
            self.workload.corpus_profile,
            seed=self.workload.seed + 3,
            mean_terms_override=self.workload.mean_doc_terms,
        )
        return generator.generate(size, prefix="seed")


def _iter_with_predicates(
    profiles: Iterator[Filter],
    workload: ScaledWorkload,
    vocabulary: SharedVocabulary,
) -> Iterator[Filter]:
    """Upgrade a deterministic fraction of a flat filter stream to
    boolean predicate subscriptions.

    Every upgrade decision and shape draw comes from one dedicated
    ``Random(seed + 4)`` stream consumed identically whether the
    workload is built or streamed, so the two stay bit-identical
    twins; the flat generators' own RNG streams are never touched.
    Upgraded subscriptions reuse the profile's id/owner and compose
    their query from the profile's own terms (conjunctions, an
    AND-of-OR shape, and NOT over a popular document term), so the
    predicate mix stresses exactly the delivery-gate path.  Terms the
    text pipeline would rewrite (a non-round-tripping stem) leave the
    profile flat rather than silently changing its term set.
    """
    fraction = workload.predicate_fraction
    rng = random.Random(workload.seed + 4)
    popular = min(200, vocabulary.size)
    for profile in profiles:
        if rng.random() >= fraction:
            yield profile
            continue
        # Draw the shape inputs unconditionally so the stream position
        # never depends on the fallback branches below.
        negated = vocabulary.doc_term(rng.randrange(popular))
        shape = rng.random()
        terms = list(profile.sorted_terms())
        if any(tokenize(term) != [term] for term in terms):
            yield profile
            continue
        if negated in terms or tokenize(negated) != [negated]:
            negated = ""
        if len(terms) == 1:
            if not negated:
                yield profile
                continue
            query = f"{terms[0]} NOT {negated}"
        elif len(terms) == 2:
            query = f"{terms[0]} AND {terms[1]}"
            if negated and shape < 0.5:
                query += f" NOT {negated}"
        elif shape < 0.5:
            query = f"{terms[0]} AND ({' OR '.join(terms[1:])})"
        else:
            query = " AND ".join(terms)
            if negated:
                query += f" NOT {negated}"
        yield Subscription.from_query(
            profile.filter_id, query, owner=profile.owner
        )


def register_streaming(
    system: DisseminationSystem,
    profiles: Iterable[Filter],
    chunk_size: int = 10_000,
) -> int:
    """Deprecated: use ``system.subscribe(profiles, chunk_size=...)``.

    Kept as a thin shim over the unified subscription entrypoint —
    same chunked all-or-nothing admission, same final state.  Returns
    the number registered.
    """
    warnings.warn(
        "register_streaming() is deprecated; use "
        "system.subscribe(profiles, chunk_size=...) (see docs/API.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return len(system.subscribe(profiles, chunk_size=chunk_size))


#: Cost-model constants for the scaled-down workloads.  The paper's
#: absolute latencies belong to 2012 hardware at P up to 1e7 filters;
#: at a 1/1000 filter scale the per-entry and per-seek costs are scaled
#: up so the cluster saturates at comparable document rates and the
#: relative scheme ordering is preserved (see EXPERIMENTS.md).
SCALED_COST = CostModelConfig(y_p=1e-4, y_d=2e-4, y_seek=4e-4)


def build_cluster(
    num_nodes: int,
    node_capacity: int,
    seed: int = 0,
    cost_model: Optional[CostModelConfig] = None,
) -> Tuple[Cluster, SystemConfig]:
    """A cluster plus a system config scaled to it."""
    cluster_config = ClusterConfig(
        num_nodes=num_nodes,
        num_racks=max(1, min(4, num_nodes // 4 or 1)),
        seed=seed,
    )
    system_config = SystemConfig(
        cluster=cluster_config,
        cost_model=cost_model or SCALED_COST,
        allocation=AllocationConfig(node_capacity=node_capacity),
        seed=seed,
    )
    return Cluster(cluster_config), system_config


def make_system(
    scheme: str,
    cluster: Cluster,
    config: SystemConfig,
    threshold: Optional[float] = None,
) -> DisseminationSystem:
    """Factory for the four schemes under comparison.

    ``threshold`` switches the built system from the paper's boolean
    any-term semantics to the VSM similarity-threshold extension.
    """
    scheme_lower = scheme.lower()
    if scheme_lower == "move":
        return MoveSystem(cluster, config, threshold=threshold)
    if scheme_lower == "il":
        return InvertedListSystem(cluster, config, threshold=threshold)
    if scheme_lower == "rs":
        return RendezvousSystem(cluster, config, threshold=threshold)
    if scheme_lower in ("central", "centralized"):
        return CentralizedSystem(cluster, config, threshold=threshold)
    raise ValueError(
        f"unknown scheme {scheme!r}; expected Move/IL/RS/Central"
    )


# ---------------------------------------------------------------------------
# The discrete-event throughput harness
# ---------------------------------------------------------------------------

class ClusterThroughputHarness:
    """Runs one system over one document stream on the event engine."""

    def __init__(
        self,
        system: DisseminationSystem,
        cluster: Cluster,
        cost_model: Optional[MatchCostModel] = None,
        injection_rate: float = 1_000.0,
        intra_rack_payload_discount: float = 0.25,
        disk_pressure_slope: float = 1.5,
        contention_coefficient: float = 3.0,
        refresh_interval: Optional[float] = None,
        movement_cost_factor: float = 0.3,
    ) -> None:
        """``contention_coefficient`` models disk-seek interference
        between concurrently pending match jobs: a job submitted behind
        ``w`` seconds of queued work runs ``(1 + c * sqrt(w))`` times
        slower (extra seeks between interleaved disk streams; the
        square root keeps the backlog feedback loop convergent).  This
        is what makes higher injection rates *reduce* measured
        throughput (Figure 8b) and punishes the IL scheme's hot-spot
        backlogs hardest, matching the paper's 14.11x (IL) vs 6.09x
        (RS) vs 3.62x (Move) degradation ordering.

        ``refresh_interval`` (simulated seconds) schedules MOVE's
        periodic statistics renewal and reallocation on the virtual
        clock — the paper's 10-minute refresh loop — for systems that
        expose ``reallocate``."""
        self.system = system
        self.cluster = cluster
        self.cost_model = cost_model or MatchCostModel(
            system.config.cost_model
        )
        self.arrivals = UniformArrivals(injection_rate)
        self.intra_rack_payload_discount = intra_rack_payload_discount
        self.disk_pressure_slope = disk_pressure_slope
        self.contention_coefficient = contention_coefficient
        self.refresh_interval = refresh_interval
        self.refreshes_performed = 0
        self.movement_cost_factor = movement_cost_factor

    # -- per-node disk pressure -----------------------------------------

    #: The disk-pressure knee sits above the allocation capacity ``C``:
    #: the paper allocates against C = 3e6 filters/node while the
    #: single-node experiments locate the working-set knee near 5e6
    #: (Figure 6) — the same 5/3 ratio is used here.
    MEMORY_KNEE_OVER_CAPACITY = 5.0 / 3.0

    def _pressure_factors(self) -> Dict[str, float]:
        """Service-time multiplier per node from stored-filter volume."""
        capacity = (
            self.system.config.allocation.node_capacity
            * self.MEMORY_KNEE_OVER_CAPACITY
        )
        stored = getattr(self.system, "storage_distribution", dict)()
        factors: Dict[str, float] = {}
        for node_id in self.cluster.node_ids():
            load = stored.get(node_id, 0.0)
            overflow = load / capacity - 1.0
            factors[node_id] = (
                1.0 + self.disk_pressure_slope * overflow
                if overflow > 0
                else 1.0
            )
        return factors

    def _hop_cost(self, source: str, destination: str) -> float:
        """Payload transfer cost of one hop (rack-aware y_d)."""
        y_d = self.cost_model.config.y_d
        if source == destination:
            return 0.0
        if self.cluster.topology.same_rack(source, destination):
            return y_d * self.intra_rack_payload_discount
        return y_d

    def _payload_cost(self, path: Sequence[str]) -> float:
        """Document transfer cost along a hop path."""
        if len(path) < 2:
            return 0.0
        return sum(
            self._hop_cost(source, destination)
            for source, destination in zip(path, path[1:])
        )

    def _receive_cost(self, path: Sequence[str]) -> float:
        """The executing node's work to ingest the payload (final hop).

        Receiving a document occupies the node (NIC + buffer write), so
        this cost lands in the service time — which is how cheap
        intra-rack placement translates into higher throughput
        (Figure 9c's rack-aware advantage)."""
        if len(path) < 2:
            return 0.0
        return self._hop_cost(path[-2], path[-1])

    # -- the run ---------------------------------------------------------------

    def _charge_allocation_movement(self) -> None:
        """Occupy receiving nodes with the filter-copy transfer work.

        Allocation moves filter subsets across the cluster; the paper
        flags this as the ring placement's cost.  Each moved filter
        costs one ``y_d`` of receive work (intra-rack discounted), so
        placements that keep copies in-rack start the measurement
        window with less backlog.
        """
        mover = getattr(self.system, "allocation_movement", None)
        if mover is None or self.movement_cost_factor <= 0:
            return
        # A filter copy is far smaller than a document payload; the
        # factor amortizes the periodic reallocation over the
        # measurement window (see EXPERIMENTS.md / INTERPRETATION.md).
        y_f = self.cost_model.config.y_d * self.movement_cost_factor
        for home_id, node_id, count in mover():
            node = self.cluster.node(node_id)
            if not node.alive:
                continue
            if self.cluster.topology.same_rack(home_id, node_id):
                cost = count * y_f * self.intra_rack_payload_discount
            else:
                cost = count * y_f
            node.submit_work(cost)

    def _schedule_refreshes(self, horizon: float) -> None:
        """Arm periodic statistic renewal on the virtual clock."""
        if self.refresh_interval is None:
            return
        reallocate = getattr(self.system, "reallocate", None)
        if reallocate is None:
            return
        sim = self.cluster.sim

        def refresh() -> None:
            reallocate()
            self.refreshes_performed += 1
            # Keep refreshing only while documents are still arriving,
            # so the event queue drains once the stream ends.
            if sim.now + self.refresh_interval <= horizon:
                sim.schedule(self.refresh_interval, refresh)

        if self.refresh_interval <= horizon:
            sim.schedule(self.refresh_interval, refresh)

    def run(
        self,
        documents: Iterable[Document],
        expected_documents: Optional[int] = None,
    ) -> ThroughputResult:
        """Drive one document stream to completion.

        ``documents`` is normally a materialized sequence (scheduled
        up front, exactly as before).  A generator may be passed
        instead together with ``expected_documents``: arrivals are
        then chained — injecting document *k* schedules arrival
        *k+1* — so at most one undelivered document is resident at a
        time and a million-document corpus never materializes.
        """
        try:
            total: int = len(documents)  # type: ignore[arg-type]
            streaming = False
        except TypeError:
            if expected_documents is None:
                raise ValueError(
                    "streaming document iterables require "
                    "expected_documents"
                )
            total = expected_documents
            streaming = True
        sim = self.cluster.sim
        pressure = self._pressure_factors()
        self._charge_allocation_movement()
        if total:
            horizon = total / self.arrivals.rate
            self._schedule_refreshes(horizon)
        meter_completed = 0
        last_completion = [0.0]
        total_fanout = 0
        total_matches = 0
        total_unreachable = 0

        outstanding: Dict[str, int] = {}

        def finish_task(doc_id: str) -> None:
            nonlocal meter_completed
            outstanding[doc_id] -= 1
            if outstanding[doc_id] == 0:
                meter_completed += 1
                last_completion[0] = max(last_completion[0], sim.now)

        def inject(document: Document) -> None:
            nonlocal total_fanout, total_matches, total_unreachable
            plan = self.system.publish(document)
            total_fanout += plan.fanout
            total_matches += len(plan.matched_filter_ids)
            total_unreachable += len(plan.unreachable_filter_ids)
            if not plan.tasks:
                nonlocal meter_completed
                meter_completed += 1
                last_completion[0] = max(last_completion[0], sim.now)
                return
            outstanding[document.doc_id] = len(plan.tasks)
            for task in plan.tasks:
                delay = self._payload_cost(task.path)
                for source, destination in zip(task.path, task.path[1:]):
                    delay += self.cluster.network.latency(
                        source, destination
                    )
                node = self.cluster.node(task.node_id)
                base_service = self._receive_cost(task.path) + (
                    pressure[task.node_id]
                    * self.cost_model.match_time(
                        task.posting_lists, task.posting_entries
                    )
                )
                doc_id = document.doc_id

                def deliver(
                    node=node, base=base_service, doc_id=doc_id
                ) -> None:
                    # Disk-seek interference: pending backlog inflates
                    # the job's effective service time (sublinear in
                    # queued work so the feedback converges).
                    contention = 1.0 + self.contention_coefficient * (
                        node.server.queued_work ** 0.5
                    )
                    node.submit_work(
                        base * contention, lambda: finish_task(doc_id)
                    )

                sim.schedule(delay, deliver)

        injected = 0

        def count_inject(document: Document) -> None:
            nonlocal injected
            injected += 1
            inject(document)

        if streaming:
            pairs = zip(self.arrivals.times(total), documents)

            def schedule_next() -> None:
                # Chained arrivals: pull one (time, document) pair and
                # arm the next pull for when it fires.  Arrival times
                # are non-decreasing, so scheduling from inside the
                # previous arrival's event never goes backwards.
                for arrival_time, document in pairs:

                    def fire(document=document) -> None:
                        count_inject(document)
                        schedule_next()

                    sim.schedule_at(arrival_time, fire)
                    return

            schedule_next()
        else:
            for arrival_time, document in zip(
                self.arrivals.times(total), documents
            ):
                sim.schedule_at(
                    arrival_time, lambda d=document: count_inject(d)
                )
        sim.run()

        elapsed = max(last_completion[0], sim.now) or 1.0
        completed = meter_completed
        bottleneck_busy = max(
            (
                node.server.stats.busy_time
                for node in self.cluster.nodes.values()
            ),
            default=0.0,
        )
        throughput = (
            completed / bottleneck_busy if bottleneck_busy > 0 else 0.0
        )
        return ThroughputResult(
            system=self.system.name,
            documents=injected,
            completed=completed,
            elapsed=elapsed,
            bottleneck_busy=bottleneck_busy,
            throughput=throughput,
            mean_fanout=(
                total_fanout / injected if injected else 0.0
            ),
            total_matches=total_matches,
            unreachable=total_unreachable,
        )


def run_scheme_once(
    scheme: str,
    bundle: Union[WorkloadBundle, StreamingWorkload],
    num_nodes: Optional[int] = None,
    node_capacity: Optional[int] = None,
    fail_fraction: float = 0.0,
    fail_whole_racks: bool = False,
    placement: Optional[str] = None,
    allocation_rule: Optional[str] = None,
    injection_rate: Optional[float] = None,
    seed: int = 0,
    tracer=None,
    register_chunk_size: int = 10_000,
    filter_storage: Optional[str] = None,
) -> ThroughputResult:
    """End-to-end: build cluster + system, register, allocate, run.

    The one-stop entry the figure modules and benches call.

    ``bundle`` may be a materialized :class:`WorkloadBundle` or a
    :class:`StreamingWorkload` (from :meth:`ScaledWorkload.stream`):
    the streaming form registers filters in ``register_chunk_size``
    batches and chains document arrivals, so the run's resident set is
    the system under test, not the workload.

    ``tracer`` (a :class:`repro.obs.Tracer`) attaches pipeline tracing
    to the built system: every publish in the run emits per-stage and
    per-node spans into it (the CLI's ``--trace`` flag builds one and
    writes its spans to JSON lines afterwards).
    """
    workload = bundle.workload
    cluster, config = build_cluster(
        num_nodes or workload.num_nodes,
        node_capacity or workload.node_capacity,
        seed=seed,
    )
    if placement is not None or allocation_rule is not None:
        # dataclasses.replace keeps every other knob (bloom_fp_rate,
        # matching_kernel, ...) at its built value.
        config = replace(
            config,
            allocation=AllocationConfig(
                node_capacity=config.allocation.node_capacity,
                rule=allocation_rule or config.allocation.rule,
                placement=placement or config.allocation.placement,
            ),
        )
    if filter_storage is not None:
        config = replace(config, filter_storage=filter_storage)
    system = make_system(scheme, cluster, config)
    if tracer is not None:
        system.tracer = tracer
    streaming = isinstance(bundle, StreamingWorkload)
    if streaming:
        system.subscribe(
            bundle.iter_filters(), chunk_size=register_chunk_size
        )
    else:
        system.subscribe(bundle.filters)
    if isinstance(system, MoveSystem):
        system.seed_frequencies(bundle.offline_corpus())
    system.finalize_registration()
    if fail_fraction > 0.0:
        _inject_failures(cluster, fail_fraction, fail_whole_racks, seed)
    harness = ClusterThroughputHarness(
        system,
        cluster,
        injection_rate=injection_rate or workload.injection_rate,
    )
    if streaming:
        return harness.run(
            bundle.iter_documents(),
            expected_documents=workload.num_documents,
        )
    return harness.run(bundle.documents)


def _inject_failures(
    cluster: Cluster,
    fraction: float,
    whole_racks: bool,
    seed: int,
) -> None:
    """Fail a fraction of nodes — random nodes or rack-correlated.

    Rack-correlated failures (whole racks going dark) are the scenario
    that separates the placement policies in Figure 9(d).
    """
    rng = random.Random(seed + 0x99)
    if not whole_racks:
        cluster.fail_fraction(fraction, rng)
        return
    target = int(round(fraction * len(cluster)))
    racks = cluster.topology.racks()
    rng.shuffle(racks)
    failed = 0
    for rack in racks:
        members = cluster.topology.nodes_in_rack(rack)
        if failed + len(members) <= target:
            failed += len(cluster.fail_rack(rack))
        else:
            # Partial last rack: fail just enough nodes to hit target.
            for node_id in members[: target - failed]:
                cluster.fail_node(node_id)
                failed += 1
        if failed >= target:
            break
