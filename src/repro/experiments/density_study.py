"""Sensitivity study: scheme ordering vs vocabulary density.

A reproduction finding, not a paper figure.  While calibrating the
scaled workloads we observed that MOVE's advantage over rendezvous
flooding depends on *term sparsity*: with a small vocabulary relative
to the filter count, almost every document term has registered
filters, so informed routing (IL/MOVE) degenerates towards flooding
and RS — perfectly balanced by construction — can win.  With a large
(realistic) vocabulary most document terms match nothing, the Bloom
check prunes them, and MOVE's selective routing dominates.

The paper's traces are very sparse (758k query terms for 4M filters,
~5.3 filters per term), which is exactly the regime where MOVE wins —
this study quantifies the crossover and explains why reproductions at
toy vocabulary sizes can reach the opposite conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .harness import (
    ExperimentSeries,
    ScaledWorkload,
    format_multi_series,
    run_scheme_once,
)

SCHEMES = ("Move", "IL", "RS")


@dataclass
class DensityStudyResult:
    """Throughput per scheme across vocabulary sizes."""

    series: Dict[str, ExperimentSeries]
    #: filters-per-distinct-term density at each swept point.
    densities: List[float] = field(default_factory=list)

    def format_report(self) -> str:
        table = format_multi_series(
            "Sensitivity: throughput vs vocabulary size "
            "(fixed filters/documents)",
            [self.series[s] for s in SCHEMES],
        )
        lines = [table, "# filters per distinct term at each point:"]
        lines.append(
            "  "
            + ", ".join(f"{density:.2f}" for density in self.densities)
        )
        lines.append(
            "sparser vocabularies (right) favour Move's informed "
            "routing; dense toy vocabularies can favour RS."
        )
        return "\n".join(lines)

    def move_advantage(self, index: int = -1) -> float:
        """Move/RS throughput ratio at a swept point."""
        rs = self.series["RS"].ys[index]
        return self.series["Move"].ys[index] / rs if rs else float("inf")


def run_density_study(
    vocabulary_sizes: Sequence[int] = (1_000, 4_000, 10_000, 20_000),
    num_filters: int = 4_000,
    num_documents: int = 300,
    seed: int = 0,
) -> DensityStudyResult:
    """Sweep the vocabulary size at fixed filter/document counts."""
    series = {
        scheme: ExperimentSeries(
            label=scheme,
            x_label="vocabulary size",
            y_label="throughput (docs/s)",
        )
        for scheme in SCHEMES
    }
    densities: List[float] = []
    for size in vocabulary_sizes:
        workload = ScaledWorkload(
            num_filters=num_filters,
            num_documents=num_documents,
            vocabulary_size=size,
        )
        bundle = workload.build()
        distinct_terms = len(
            {term for f in bundle.filters for term in f.terms}
        )
        densities.append(num_filters / max(distinct_terms, 1))
        for scheme in SCHEMES:
            result = run_scheme_once(scheme, bundle, seed=seed)
            series[scheme].add(float(size), result.throughput)
    return DensityStudyResult(series=series, densities=densities)
