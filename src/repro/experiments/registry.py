"""Registry mapping experiment ids to their runners.

``python -m repro.experiments.registry`` (or the ``run_experiment``
function) regenerates any table or figure of the paper by id; the
benchmark suite drives the same registry so there is exactly one
definition of each experiment.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .fig4_term_popularity import run_fig4
from .fig5_doc_frequency import run_fig5
from .fig67_single_node import run_fig6, run_fig7
from .fig8_cluster import run_fig8a, run_fig8b, run_fig8c
from .density_study import run_density_study
from .fig9_maintenance import run_fig9a, run_fig9b, run_fig9cd
from .summary import run_summary


def run_calibration():
    """Verify the default workload's statistics against the published
    targets (tbl-msn / corpus statistics)."""
    from ..workloads import (
        CorpusGenerator,
        FilterTraceGenerator,
        SharedVocabulary,
        TREC_WT_PROFILE,
    )
    from ..workloads.calibration import (
        CalibrationReport,
        verify_corpus,
        verify_filter_trace,
    )

    vocabulary = SharedVocabulary(
        size=10_000, overlap_fraction=0.313, seed=7
    )
    filters = FilterTraceGenerator(vocabulary, seed=8).generate(10_000)
    documents = CorpusGenerator(
        vocabulary, TREC_WT_PROFILE, seed=9
    ).generate(1_000)
    combined = CalibrationReport()
    combined.checks.extend(verify_filter_trace(filters).checks)
    combined.checks.extend(
        verify_corpus(documents, target_mean_terms=64.8).checks
    )
    return combined

#: Experiment id -> zero-argument runner returning a reportable result.
EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "summary": run_summary,
    "density": run_density_study,
    "calibration": run_calibration,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig8c": run_fig8c,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "fig9cd": run_fig9cd,
}


def experiment_ids() -> List[str]:
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str):
    """Run one experiment by id; raises ``KeyError`` on unknown ids."""
    runner = EXPERIMENTS.get(experiment_id)
    if runner is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(experiment_ids())}"
        )
    return runner()


def format_result(result: object) -> str:
    """Best-effort human-readable rendering of a runner's result."""
    formatter = getattr(result, "format_report", None)
    if formatter is not None:
        return formatter()
    return repr(result)


def _collect_series(result: object):
    """Find every ExperimentSeries reachable from a runner's result."""
    from .harness import ExperimentSeries

    found = []
    if isinstance(result, ExperimentSeries):
        found.append(result)
        return found
    candidates = []
    if hasattr(result, "__dict__"):
        candidates.extend(vars(result).values())
    for value in candidates:
        if isinstance(value, ExperimentSeries):
            found.append(value)
        elif isinstance(value, dict):
            found.extend(
                v for v in value.values()
                if isinstance(v, ExperimentSeries)
            )
        elif isinstance(value, (list, tuple)):
            found.extend(
                v for v in value if isinstance(v, ExperimentSeries)
            )
        elif hasattr(value, "__dict__"):
            found.extend(
                v
                for v in vars(value).values()
                if isinstance(v, ExperimentSeries)
            )
    return found


def export_csv(experiment_id: str, result: object, directory):
    """Write every series of ``result`` as CSV files in ``directory``.

    Returns the list of paths written.  File names are derived from the
    experiment id and a slug of the series label.
    """
    import os
    import re

    os.makedirs(directory, exist_ok=True)
    written = []
    for index, series in enumerate(_collect_series(result)):
        slug = re.sub(r"[^a-z0-9]+", "-", series.label.lower()).strip(
            "-"
        ) or f"series{index}"
        path = os.path.join(directory, f"{experiment_id}_{slug}.csv")
        series.write_csv(path)
        written.append(path)
    return written


def main(argv: List[str]) -> int:
    """CLI: run the named experiments (or all) and print reports."""
    targets = argv or experiment_ids()
    for experiment_id in targets:
        print(f"=== {experiment_id} ===")
        print(format_result(run_experiment(experiment_id)))
        print()
    return 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
