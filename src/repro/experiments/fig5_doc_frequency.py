"""Figure 5 — ranked document-term frequency of the TREC-like corpora.

The paper plots the ranked frequency rates ``q_i`` of the document
terms for both corpora (top-1e5 ranks) and distinguishes their skew by
entropy: 9.4473 for TREC AP versus 6.7593 for TREC WT — WT is the
skewer trace.  It also reports the top-1000 query/document term
overlaps (26.9 % AP, 31.3 % WT), reproduced here via the shared
vocabulary construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..model import Document
from ..stats.entropy import distribution_entropy, normalized_entropy
from ..stats.term_stats import FrequencyTracker
from ..workloads import (
    CorpusGenerator,
    CorpusProfile,
    SharedVocabulary,
    TREC_AP_PROFILE,
    TREC_WT_PROFILE,
)
from .harness import ExperimentSeries


@dataclass
class CorpusSkew:
    """Measured skew of one synthetic corpus."""

    name: str
    series: ExperimentSeries
    entropy_bits: float
    normalized_entropy: float
    top_k_overlap: float
    documents: int
    mean_terms: float


@dataclass
class Fig5Result:
    ap: CorpusSkew
    wt: CorpusSkew

    def format_report(self) -> str:
        lines = ["# Figure 5: document term frequency (TREC-like)"]
        for skew, paper_entropy in (
            (self.ap, TREC_AP_PROFILE.frequency_entropy),
            (self.wt, TREC_WT_PROFILE.frequency_entropy),
        ):
            lines.append(
                f"{skew.name:8s} entropy={skew.entropy_bits:.3f} bits "
                f"(normalized {skew.normalized_entropy:.3f}; paper "
                f"{paper_entropy} at paper scale), "
                f"overlap={skew.top_k_overlap:.3f}, "
                f"docs={skew.documents}, "
                f"mean terms={skew.mean_terms:.1f}"
            )
        skewer = (
            "WT"
            if self.wt.normalized_entropy < self.ap.normalized_entropy
            else "AP"
        )
        lines.append(
            f"skewer corpus: {skewer} (paper: WT)"
        )
        from .plotting import ascii_plot

        lines.append(
            ascii_plot(
                [self.ap.series, self.wt.series],
                log_x=True,
                log_y=True,
                title="ranked document term frequency (log-log)",
            )
        )
        return "\n".join(lines)


def _measure_corpus(
    profile: CorpusProfile,
    vocabulary: SharedVocabulary,
    num_documents: int,
    mean_terms: float,
    seed: int,
    max_rank_points: int,
) -> CorpusSkew:
    generator = CorpusGenerator(
        vocabulary, profile, seed=seed, mean_terms_override=mean_terms
    )
    tracker = FrequencyTracker()
    total_terms = 0
    for document in generator.iter_generate(num_documents):
        tracker.observe(document)
        total_terms += len(document)
    tracker.renew()
    ranked = tracker.ranked()
    series = ExperimentSeries(
        label=profile.name,
        x_label="ranking id",
        y_label="frequency rate",
    )
    for rank, (_term, frequency) in enumerate(
        ranked[:max_rank_points], start=1
    ):
        series.add(float(rank), frequency)
    weights = [frequency for _term, frequency in ranked]
    return CorpusSkew(
        name=profile.name,
        series=series,
        entropy_bits=distribution_entropy(weights),
        normalized_entropy=normalized_entropy(weights),
        top_k_overlap=vocabulary.measured_overlap(),
        documents=num_documents,
        mean_terms=total_terms / num_documents,
    )


def run_fig5(
    num_documents: int = 2_000,
    vocabulary_size: int = 10_000,
    ap_mean_terms: float = 600.0,
    wt_mean_terms: float = 64.8,
    seed: int = 7,
    max_rank_points: int = 2_000,
) -> Fig5Result:
    """Measure both corpora's skew at a common scale.

    The AP mean document length is scaled from the paper's 6054.9
    terms to fit the scaled vocabulary while presering the AP >> WT
    length asymmetry the single-node experiments rely on.
    """
    ap_vocab = SharedVocabulary(
        size=vocabulary_size,
        overlap_fraction=TREC_AP_PROFILE.query_overlap,
        seed=seed,
    )
    wt_vocab = SharedVocabulary(
        size=vocabulary_size,
        overlap_fraction=TREC_WT_PROFILE.query_overlap,
        seed=seed + 1,
    )
    # AP has far fewer documents than WT, mirroring 1,050 vs 1.69 M.
    ap = _measure_corpus(
        TREC_AP_PROFILE,
        ap_vocab,
        max(50, num_documents // 20),
        ap_mean_terms,
        seed + 2,
        max_rank_points,
    )
    wt = _measure_corpus(
        TREC_WT_PROFILE,
        wt_vocab,
        num_documents,
        wt_mean_terms,
        seed + 3,
        max_rank_points,
    )
    return Fig5Result(ap=ap, wt=wt)
