"""Headline summary — the abstract's claim in one table.

"The experiment with real datasets shows that our approach can achieve
around folds of better throughput than two counterpart
state-of-the-arts solutions."  This experiment runs all three schemes
at the default (scaled) operating point and reports the Move/RS and
Move/IL throughput folds alongside the paper's Figure 8(a) anchor
(Move 93 / RS 70 / IL 42 at P = 1e7, i.e. 1.33x and 2.21x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .harness import ScaledWorkload, run_scheme_once

#: The paper's Figure 8(a) anchor point (P = 1e7).
PAPER_THROUGHPUT = {"Move": 93.0, "RS": 70.0, "IL": 42.0}


@dataclass
class SummaryResult:
    """Throughput per scheme and the derived folds."""

    throughput: Dict[str, float]

    def fold(self, over: str) -> float:
        base = self.throughput.get(over, 0.0)
        if not base:
            return float("inf")
        return self.throughput["Move"] / base

    def format_report(self) -> str:
        paper_rs_fold = PAPER_THROUGHPUT["Move"] / PAPER_THROUGHPUT["RS"]
        paper_il_fold = PAPER_THROUGHPUT["Move"] / PAPER_THROUGHPUT["IL"]
        lines = [
            "# Headline: Move's throughput folds over the baselines",
            f"{'scheme':>8s} {'measured':>12s} {'paper@P=1e7':>12s}",
        ]
        for scheme in ("Move", "RS", "IL"):
            lines.append(
                f"{scheme:>8s} {self.throughput[scheme]:12.1f} "
                f"{PAPER_THROUGHPUT[scheme]:12.1f}"
            )
        lines.append(
            f"Move/RS fold: {self.fold('RS'):.2f}x "
            f"(paper {paper_rs_fold:.2f}x);  "
            f"Move/IL fold: {self.fold('IL'):.2f}x "
            f"(paper {paper_il_fold:.2f}x)"
        )
        return "\n".join(lines)


def run_summary(
    base: Optional[ScaledWorkload] = None, seed: int = 0
) -> SummaryResult:
    """Measure all three schemes at the default operating point."""
    base = base or ScaledWorkload()
    bundle = base.build()
    throughput = {
        scheme: run_scheme_once(scheme, bundle, seed=seed).throughput
        for scheme in ("Move", "IL", "RS")
    }
    return SummaryResult(throughput=throughput)
