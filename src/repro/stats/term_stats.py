"""Trackers for term popularity ``p_i`` and frequency ``q_i``.

Definitions (Section III-C):

- ``p_i = |P_i| / P`` where ``P_i`` is the set of filters containing
  ``t_i`` and ``P`` the total filter count;
- ``q_i = |Q_i| / Q`` where ``Q_i`` is the set of documents containing
  ``t_i`` over a period and ``Q`` the period's document count.

Popularity is exact (filters are registered before publication and
change rarely — the proactive-allocation argument of Section V).
Frequency is estimated over renewal windows: the paper seeds it from a
1000-document offline corpus and renews it every 10 minutes from new
arrivals.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..model import Document, Filter


class PopularityTracker:
    """Exact ``p_i`` over the currently registered filters."""

    def __init__(self) -> None:
        self._filters_with_term: Counter = Counter()
        self._total_filters = 0

    @property
    def total_filters(self) -> int:
        return self._total_filters

    def register(self, profile: Filter) -> None:
        self._total_filters += 1
        for term in profile.terms:
            self._filters_with_term[term] += 1

    def unregister(self, profile: Filter) -> None:
        if self._total_filters == 0:
            raise ValueError("no filters registered")
        self._total_filters -= 1
        for term in profile.terms:
            count = self._filters_with_term[term] - 1
            if count < 0:
                raise ValueError(
                    f"unregistering unknown term {term!r}"
                )
            if count:
                self._filters_with_term[term] = count
            else:
                del self._filters_with_term[term]

    def count(self, term: str) -> int:
        """``|P_i|`` — filters containing ``term``."""
        return self._filters_with_term.get(term, 0)

    def popularity(self, term: str) -> float:
        """``p_i`` (0.0 when no filters are registered)."""
        if self._total_filters == 0:
            return 0.0
        return self._filters_with_term.get(term, 0) / self._total_filters

    def terms(self) -> List[str]:
        return list(self._filters_with_term)

    def ranked(self) -> List[Tuple[str, float]]:
        """(term, p_i) sorted by descending popularity — Figure 4."""
        total = self._total_filters or 1
        return sorted(
            (
                (term, count / total)
                for term, count in self._filters_with_term.items()
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )

    def top_mass(self, k: int) -> float:
        """Accumulated popularity of the top-``k`` terms.

        The paper reports 0.437 for the top-1000 MSN terms.
        """
        return sum(p for _, p in self.ranked()[:k])


class FrequencyTracker:
    """Windowed ``q_i`` estimation with periodic renewal.

    ``observe`` accumulates into the current window;
    :meth:`renew` promotes the window to the active estimate via an
    exponential moving average (``smoothing=1.0`` replaces outright,
    reproducing the paper's "values of q_i are renewed" wording).
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.smoothing = smoothing
        self._window_docs_with_term: Counter = Counter()
        self._window_total = 0
        self._estimate: Dict[str, float] = {}
        self.windows_renewed = 0

    def observe(self, document: Document) -> None:
        self._window_total += 1
        for term in document.terms:
            self._window_docs_with_term[term] += 1

    def seed_from_corpus(self, documents: Iterable[Document]) -> None:
        """Bootstrap from an offline corpus (Section V, proactive
        allocation), then renew immediately."""
        for document in documents:
            self.observe(document)
        self.renew()

    def renew(self) -> None:
        """Promote the current window into the active estimate."""
        if self._window_total:
            window = {
                term: count / self._window_total
                for term, count in self._window_docs_with_term.items()
            }
            if self.smoothing >= 1.0 or not self._estimate:
                self._estimate = window
            else:
                merged: Dict[str, float] = {}
                for term in set(self._estimate) | set(window):
                    merged[term] = (
                        (1 - self.smoothing) * self._estimate.get(term, 0.0)
                        + self.smoothing * window.get(term, 0.0)
                    )
                self._estimate = merged
            self.windows_renewed += 1
        self._window_docs_with_term = Counter()
        self._window_total = 0

    def frequency(self, term: str) -> float:
        """Current ``q_i`` estimate."""
        return self._estimate.get(term, 0.0)

    def window_drift(self) -> float:
        """How far the accumulating window has moved off the estimate.

        Relative L1 distance in [0, 1] between the current (not yet
        renewed) window's normalized frequencies and the active
        estimate: ``sum |w_i - e_i| / sum max(w_i, e_i)`` over the
        union of terms.  0.0 when the window is empty or matches the
        estimate exactly; 1.0 when the two share no mass (e.g. a first
        window against an empty estimate).  Cost is O(window terms +
        estimate terms) — far cheaper than a coordinator replan — so
        the drift-aware refresh gate can call it every period.
        """
        if not self._window_total:
            return 0.0
        window = {
            term: count / self._window_total
            for term, count in self._window_docs_with_term.items()
        }
        estimate = self._estimate
        moved = 0.0
        mass = 0.0
        for term, value in window.items():
            old = estimate.get(term, 0.0)
            moved += abs(value - old)
            mass += value if value > old else old
        for term, old in estimate.items():
            if term not in window:
                moved += old
                mass += old
        if mass <= 0.0:
            return 0.0
        return moved / mass

    def terms(self) -> List[str]:
        return list(self._estimate)

    def ranked(self) -> List[Tuple[str, float]]:
        """(term, q_i) by descending frequency — Figure 5."""
        return sorted(
            self._estimate.items(), key=lambda pair: (-pair[1], pair[0])
        )

    def as_mapping(self) -> Mapping[str, float]:
        return dict(self._estimate)


class TermStatistics:
    """Bundle of popularity + frequency trackers for one deployment."""

    def __init__(self, smoothing: float = 1.0) -> None:
        self.popularity = PopularityTracker()
        self.frequency = FrequencyTracker(smoothing=smoothing)

    def register_filter(self, profile: Filter) -> None:
        self.popularity.register(profile)

    def observe_document(self, document: Document) -> None:
        self.frequency.observe(document)

    def p(self, term: str) -> float:
        return self.popularity.popularity(term)

    def q(self, term: str) -> float:
        return self.frequency.frequency(term)

    def window_drift(self) -> float:
        """Frequency-side demand drift since the last renewal.

        Delegates to :meth:`FrequencyTracker.window_drift`; the
        popularity side changes only through filter churn, which
        :class:`~repro.core.move_system.MoveSystem` tracks separately
        via per-key registration epochs.
        """
        return self.frequency.window_drift()

    def hot_terms(
        self, top_k: int
    ) -> Dict[str, Tuple[float, float]]:
        """Terms in the top-``top_k`` of either distribution with their
        (p_i, q_i) pairs — the replicate-and-separate candidates."""
        hot = {}
        for term, p in self.popularity.ranked()[:top_k]:
            hot[term] = (p, self.q(term))
        for term, q in self.frequency.ranked()[:top_k]:
            hot.setdefault(term, (self.p(term), q))
        return hot


def top_k_overlap(
    ranked_a: List[Tuple[str, float]],
    ranked_b: List[Tuple[str, float]],
    k: int,
) -> float:
    """Fraction of ``ranked_a``'s top-k present in ``ranked_b``'s top-k.

    Reproduces the Section VI-A statistic: 26.9 % of the top-1000
    popular query terms are among the top-1000 frequent AP document
    terms (31.3 % for WT).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    top_a = {term for term, _ in ranked_a[:k]}
    top_b = {term for term, _ in ranked_b[:k]}
    if not top_a:
        return 0.0
    return len(top_a & top_b) / len(top_a)
