"""Statistics snapshots: persist and restore coordinator inputs.

A standby coordinator needs the same statistics the primary saw to
compute the identical plan (tested in the failover suite).  This
module serializes a :class:`~repro.stats.term_stats.TermStatistics`
to a JSON document and restores it — small (per-term aggregates, not
raw traffic) and stable across processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import ReproError
from .term_stats import TermStatistics

PathLike = Union[str, Path]

#: Format marker so future layout changes can be detected.
SNAPSHOT_VERSION = 1


class SnapshotError(ReproError):
    """A statistics snapshot could not be read."""


def dump_statistics(stats: TermStatistics, path: PathLike) -> None:
    """Write a JSON snapshot of ``stats`` to ``path``."""
    payload = {
        "version": SNAPSHOT_VERSION,
        "total_filters": stats.popularity.total_filters,
        "term_counts": {
            term: stats.popularity.count(term)
            for term in stats.popularity.terms()
        },
        "frequencies": dict(stats.frequency.as_mapping()),
        "smoothing": stats.frequency.smoothing,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)


def load_statistics(path: PathLike) -> TermStatistics:
    """Restore a snapshot written by :func:`dump_statistics`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has version {version!r}, "
            f"expected {SNAPSHOT_VERSION}"
        )
    try:
        stats = TermStatistics(
            smoothing=float(payload.get("smoothing", 1.0))
        )
        stats.popularity._total_filters = int(payload["total_filters"])
        for term, count in payload["term_counts"].items():
            stats.popularity._filters_with_term[str(term)] = int(count)
        stats.frequency._estimate = {
            str(term): float(value)
            for term, value in payload["frequencies"].items()
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(
            f"snapshot {path} is malformed: {exc}"
        ) from exc
    return stats
