"""Entropy of term-frequency distributions (Figure 5 diagnostics).

The paper characterizes the skew of the TREC traces by the Shannon
entropy of their ranked frequency rates: 9.4473 for TREC AP versus
6.7593 for TREC WT, "verifying the frequency rates of the TREC WT is
skewer than the TREC AP" — lower entropy means a more concentrated
(skewer) distribution.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def distribution_entropy(weights: Iterable[float]) -> float:
    """Shannon entropy (nats→bits: base 2) of a non-negative weight
    vector, normalizing to a probability distribution first.

    Zero weights contribute nothing (``0 log 0 := 0``).
    """
    values = [w for w in weights if w > 0]
    total = sum(values)
    if total <= 0:
        return 0.0
    entropy = 0.0
    for weight in values:
        p = weight / total
        entropy -= p * math.log2(p)
    return entropy


def normalized_entropy(weights: Sequence[float]) -> float:
    """Entropy divided by ``log2(n)`` — 1.0 means uniform, →0 means
    maximally skewed.  Comparable across vocabularies of different
    sizes, which raw entropy is not."""
    values = [w for w in weights if w > 0]
    if len(values) <= 1:
        return 0.0
    return distribution_entropy(values) / math.log2(len(values))
