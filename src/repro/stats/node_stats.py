"""Per-node statistic aggregation (the ``p'_i`` / ``q'_i`` of §V).

With millions of terms mapped onto hundreds of nodes, keeping one
forwarding array per term is too expensive.  The paper's fix: for all
terms maintained on node ``m_i``, sum their ``p_i`` and ``q_i`` into a
node popularity ``p'_i`` and node frequency ``q'_i``, treat the node's
filters as a single set ``P'_i``, and compute one allocation factor
``n'_i`` per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from .term_stats import TermStatistics


@dataclass(frozen=True)
class NodeStats:
    """Aggregated statistics for one home node."""

    node_id: str
    popularity: float  # p'_i — summed p over the node's terms
    frequency: float   # q'_i — summed q over the node's terms
    term_count: int
    filter_replicas: int  # posting entries registered on the node


class NodeStatistics:
    """Aggregates term statistics by home node."""

    def __init__(
        self, home_node_of: Callable[[str], str]
    ) -> None:
        self._home_node_of = home_node_of

    def aggregate(
        self, stats: TermStatistics
    ) -> Dict[str, NodeStats]:
        """Fold every tracked term into its home node's totals."""
        popularity: Dict[str, float] = {}
        frequency: Dict[str, float] = {}
        term_counts: Dict[str, int] = {}
        replicas: Dict[str, int] = {}

        for term in stats.popularity.terms():
            node = self._home_node_of(term)
            popularity[node] = popularity.get(node, 0.0) + stats.p(term)
            term_counts[node] = term_counts.get(node, 0) + 1
            replicas[node] = (
                replicas.get(node, 0) + stats.popularity.count(term)
            )
        for term in stats.frequency.terms():
            node = self._home_node_of(term)
            frequency[node] = frequency.get(node, 0.0) + stats.q(term)
            if node not in term_counts:
                term_counts[node] = 0

        nodes = set(popularity) | set(frequency)
        return {
            node: NodeStats(
                node_id=node,
                popularity=popularity.get(node, 0.0),
                frequency=frequency.get(node, 0.0),
                term_count=term_counts.get(node, 0),
                filter_replicas=replicas.get(node, 0),
            )
            for node in nodes
        }
