"""Statistics substrate: term popularity/frequency and entropy.

MOVE's allocation decisions are driven entirely by two skewed
distributions (Section III-C):

- popularity ``p_i`` — fraction of registered filters containing term
  ``t_i``,
- frequency ``q_i`` — fraction of published documents containing
  ``t_i``.

:mod:`repro.stats.term_stats` tracks both (with the windowed renewal of
Section VI-A), :mod:`repro.stats.node_stats` aggregates them per home
node (the ``p'_i``/``q'_i`` of Section V) and
:mod:`repro.stats.entropy` computes the distribution-skew diagnostics
used in Figure 5.
"""

from .entropy import distribution_entropy, normalized_entropy
from .node_stats import NodeStatistics, NodeStats
from .term_stats import FrequencyTracker, PopularityTracker, TermStatistics

__all__ = [
    "PopularityTracker",
    "FrequencyTracker",
    "TermStatistics",
    "NodeStats",
    "NodeStatistics",
    "distribution_entropy",
    "normalized_entropy",
]
