"""BigTable-style column-family storage engine.

Each node runs a :class:`StorageEngine` holding named
:class:`ColumnFamilyStore` instances (the paper's three data stores:
filter store, local inverted list, meta-data store live in column
families).  Writes land in a memtable; when the memtable exceeds its
flush threshold it is frozen into an immutable SSTable.  Reads merge
the memtable with SSTables newest-first, so the freshest write wins —
the standard LSM read path, reproduced in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import StorageError, UnknownColumnFamilyError

#: Sentinel distinguishing "key absent" from "stored None".
_MISSING = object()


class _SSTable:
    """An immutable sorted run of key→(column→value) rows.

    Each run carries a Bloom filter over its row keys (as real LSM
    engines do) so the read path can skip runs that certainly do not
    contain a key — the point-lookup cost is what the paper's disk
    model charges, and the filter is what keeps it near one run per
    read.
    """

    __slots__ = ("rows", "generation", "_bloom")

    def __init__(
        self, rows: Dict[str, Dict[str, Any]], generation: int
    ) -> None:
        from ..matching.bloom import BloomFilter

        self.rows = rows
        self.generation = generation
        self._bloom = BloomFilter(
            expected_items=max(len(rows), 1), fp_rate=0.01
        )
        self._bloom.update(rows)

    def maybe_contains(self, row_key: str) -> bool:
        """Bloom check: False means definitely absent (no disk touch)."""
        return row_key in self._bloom

    def get(self, row_key: str) -> Optional[Dict[str, Any]]:
        if not self.maybe_contains(row_key):
            return None
        return self.rows.get(row_key)


class ColumnFamilyStore:
    """One column family: rows of named columns with LSM semantics.

    Deletions write tombstones so an SSTable-resident value cannot
    resurrect a deleted row — the same reason real LSM trees need them.
    """

    _TOMBSTONE = object()

    def __init__(
        self, name: str, memtable_flush_threshold: int = 10_000
    ) -> None:
        if memtable_flush_threshold < 1:
            raise StorageError("memtable_flush_threshold must be >= 1")
        self.name = name
        self.memtable_flush_threshold = memtable_flush_threshold
        self._memtable: Dict[str, Dict[str, Any]] = {}
        self._sstables: List[_SSTable] = []
        self._generation = 0
        self.writes = 0
        self.reads = 0
        self.flushes = 0

    # -- write path -------------------------------------------------------

    def put(self, row_key: str, column: str, value: Any) -> None:
        """Insert/overwrite one column of one row."""
        self.writes += 1
        self._memtable.setdefault(row_key, {})[column] = value
        if len(self._memtable) >= self.memtable_flush_threshold:
            self.flush()

    def put_row(self, row_key: str, columns: Dict[str, Any]) -> None:
        """Insert/overwrite several columns of one row atomically."""
        self.writes += 1
        self._memtable.setdefault(row_key, {}).update(columns)
        if len(self._memtable) >= self.memtable_flush_threshold:
            self.flush()

    def delete(self, row_key: str, column: Optional[str] = None) -> None:
        """Delete one column, or the whole row when ``column`` is None."""
        self.writes += 1
        if column is None:
            row = self._row_snapshot(row_key)
            tombstones = {name: self._TOMBSTONE for name in row}
            tombstones["__row__"] = self._TOMBSTONE
            self._memtable[row_key] = tombstones
        else:
            self._memtable.setdefault(row_key, {})[column] = self._TOMBSTONE

    def flush(self) -> None:
        """Freeze the memtable into a new SSTable."""
        if not self._memtable:
            return
        self._generation += 1
        self.flushes += 1
        self._sstables.append(
            _SSTable(rows=self._memtable, generation=self._generation)
        )
        self._memtable = {}

    def compact(self) -> None:
        """Merge all SSTables into one, dropping shadowed tombstones."""
        merged: Dict[str, Dict[str, Any]] = {}
        for sstable in self._sstables:  # oldest → newest
            for row_key, columns in sstable.rows.items():
                if "__row__" in columns:
                    merged[row_key] = {
                        k: v
                        for k, v in columns.items()
                        if k != "__row__" and v is not self._TOMBSTONE
                    }
                    continue
                target = merged.setdefault(row_key, {})
                for column, value in columns.items():
                    if value is self._TOMBSTONE:
                        target.pop(column, None)
                    else:
                        target[column] = value
        merged = {row: cols for row, cols in merged.items() if cols}
        self._generation += 1
        self._sstables = (
            [_SSTable(rows=merged, generation=self._generation)]
            if merged
            else []
        )

    # -- read path ------------------------------------------------------

    def _row_snapshot(self, row_key: str) -> Dict[str, Any]:
        """Merged view of a row across memtable and SSTables."""
        merged: Dict[str, Any] = {}
        for sstable in self._sstables:  # oldest → newest
            columns = sstable.get(row_key)
            if columns is None:
                continue
            if "__row__" in columns:
                merged = {}
            for column, value in columns.items():
                if column == "__row__":
                    continue
                merged[column] = value
        mem = self._memtable.get(row_key)
        if mem is not None:
            if "__row__" in mem:
                merged = {}
            for column, value in mem.items():
                if column == "__row__":
                    continue
                merged[column] = value
        return {
            column: value
            for column, value in merged.items()
            if value is not self._TOMBSTONE
        }

    def get(
        self, row_key: str, column: str, default: Any = None
    ) -> Any:
        """Read one column of one row."""
        self.reads += 1
        value = self._row_snapshot(row_key).get(column, _MISSING)
        return default if value is _MISSING else value

    def get_row(self, row_key: str) -> Dict[str, Any]:
        """Read the full merged row (empty dict when absent)."""
        self.reads += 1
        return self._row_snapshot(row_key)

    def contains_row(self, row_key: str) -> bool:
        return bool(self._row_snapshot(row_key))

    def row_keys(self) -> Iterator[str]:
        """All live row keys (deduplicated across runs)."""
        seen = set()
        for sstable in self._sstables:
            seen.update(sstable.rows)
        seen.update(self._memtable)
        for row_key in seen:
            if self._row_snapshot(row_key):
                yield row_key

    def approximate_row_count(self) -> int:
        """Row count without tombstone resolution (cheap estimate)."""
        seen = set()
        for sstable in self._sstables:
            seen.update(sstable.rows)
        seen.update(self._memtable)
        return len(seen)

    @property
    def sstable_count(self) -> int:
        return len(self._sstables)


class StorageEngine:
    """All column families of one node."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._families: Dict[str, ColumnFamilyStore] = {}

    def create_column_family(
        self, name: str, memtable_flush_threshold: int = 10_000
    ) -> ColumnFamilyStore:
        """Create (or return the existing) column family ``name``."""
        store = self._families.get(name)
        if store is None:
            store = ColumnFamilyStore(name, memtable_flush_threshold)
            self._families[name] = store
        return store

    def column_family(self, name: str) -> ColumnFamilyStore:
        store = self._families.get(name)
        if store is None:
            raise UnknownColumnFamilyError(name)
        return store

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def families(self) -> List[str]:
        return sorted(self._families)
