"""BigTable-style column-family storage engine.

Each node runs a :class:`StorageEngine` holding named
:class:`ColumnFamilyStore` instances (the paper's three data stores:
filter store, local inverted list, meta-data store live in column
families).  Writes land in a memtable; when the memtable exceeds its
flush threshold it is frozen into an immutable SSTable.  Reads merge
the memtable with SSTables newest-first, so the freshest write wins —
the standard LSM read path, reproduced in miniature.

The module also provides the durability half of the real service mode
(:mod:`repro.serve`): a segmented, CRC-framed write-ahead log
(:class:`WalWriter` / :class:`WalReader`).  Mutations are framed and
appended *before* they are applied in memory, so a crashed node can be
rehydrated bit-identically by replaying its log (see
``repro.serve.journal``).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import (
    StorageError,
    UnknownColumnFamilyError,
    WalCorruptionError,
    WalError,
)

#: Sentinel distinguishing "key absent" from "stored None".
_MISSING = object()


class _SSTable:
    """An immutable sorted run of key→(column→value) rows.

    Each run carries a Bloom filter over its row keys (as real LSM
    engines do) so the read path can skip runs that certainly do not
    contain a key — the point-lookup cost is what the paper's disk
    model charges, and the filter is what keeps it near one run per
    read.
    """

    __slots__ = ("rows", "generation", "_bloom")

    def __init__(
        self, rows: Dict[str, Dict[str, Any]], generation: int
    ) -> None:
        from ..matching.bloom import BloomFilter

        self.rows = rows
        self.generation = generation
        self._bloom = BloomFilter(
            expected_items=max(len(rows), 1), fp_rate=0.01
        )
        self._bloom.update(rows)

    def maybe_contains(self, row_key: str) -> bool:
        """Bloom check: False means definitely absent (no disk touch)."""
        return row_key in self._bloom

    def get(self, row_key: str) -> Optional[Dict[str, Any]]:
        if not self.maybe_contains(row_key):
            return None
        return self.rows.get(row_key)


class ColumnFamilyStore:
    """One column family: rows of named columns with LSM semantics.

    Deletions write tombstones so an SSTable-resident value cannot
    resurrect a deleted row — the same reason real LSM trees need them.
    """

    _TOMBSTONE = object()

    def __init__(
        self, name: str, memtable_flush_threshold: int = 10_000
    ) -> None:
        if memtable_flush_threshold < 1:
            raise StorageError("memtable_flush_threshold must be >= 1")
        self.name = name
        self.memtable_flush_threshold = memtable_flush_threshold
        self._memtable: Dict[str, Dict[str, Any]] = {}
        self._sstables: List[_SSTable] = []
        self._generation = 0
        self.writes = 0
        self.reads = 0
        self.flushes = 0

    # -- write path -------------------------------------------------------

    def put(self, row_key: str, column: str, value: Any) -> None:
        """Insert/overwrite one column of one row."""
        self.writes += 1
        self._memtable.setdefault(row_key, {})[column] = value
        if len(self._memtable) >= self.memtable_flush_threshold:
            self.flush()

    def put_row(self, row_key: str, columns: Dict[str, Any]) -> None:
        """Insert/overwrite several columns of one row atomically."""
        self.writes += 1
        self._memtable.setdefault(row_key, {}).update(columns)
        if len(self._memtable) >= self.memtable_flush_threshold:
            self.flush()

    def delete(self, row_key: str, column: Optional[str] = None) -> None:
        """Delete one column, or the whole row when ``column`` is None."""
        self.writes += 1
        if column is None:
            row = self._row_snapshot(row_key)
            tombstones = {name: self._TOMBSTONE for name in row}
            tombstones["__row__"] = self._TOMBSTONE
            self._memtable[row_key] = tombstones
        else:
            self._memtable.setdefault(row_key, {})[column] = self._TOMBSTONE

    def flush(self) -> None:
        """Freeze the memtable into a new SSTable."""
        if not self._memtable:
            return
        self._generation += 1
        self.flushes += 1
        self._sstables.append(
            _SSTable(rows=self._memtable, generation=self._generation)
        )
        self._memtable = {}

    def compact(self) -> None:
        """Merge all SSTables into one, dropping shadowed tombstones."""
        merged: Dict[str, Dict[str, Any]] = {}
        for sstable in self._sstables:  # oldest → newest
            for row_key, columns in sstable.rows.items():
                if "__row__" in columns:
                    merged[row_key] = {
                        k: v
                        for k, v in columns.items()
                        if k != "__row__" and v is not self._TOMBSTONE
                    }
                    continue
                target = merged.setdefault(row_key, {})
                for column, value in columns.items():
                    if value is self._TOMBSTONE:
                        target.pop(column, None)
                    else:
                        target[column] = value
        merged = {row: cols for row, cols in merged.items() if cols}
        self._generation += 1
        self._sstables = (
            [_SSTable(rows=merged, generation=self._generation)]
            if merged
            else []
        )

    # -- read path ------------------------------------------------------

    def _row_snapshot(self, row_key: str) -> Dict[str, Any]:
        """Merged view of a row across memtable and SSTables."""
        merged: Dict[str, Any] = {}
        for sstable in self._sstables:  # oldest → newest
            columns = sstable.get(row_key)
            if columns is None:
                continue
            if "__row__" in columns:
                merged = {}
            for column, value in columns.items():
                if column == "__row__":
                    continue
                merged[column] = value
        mem = self._memtable.get(row_key)
        if mem is not None:
            if "__row__" in mem:
                merged = {}
            for column, value in mem.items():
                if column == "__row__":
                    continue
                merged[column] = value
        return {
            column: value
            for column, value in merged.items()
            if value is not self._TOMBSTONE
        }

    def get(
        self, row_key: str, column: str, default: Any = None
    ) -> Any:
        """Read one column of one row."""
        self.reads += 1
        value = self._row_snapshot(row_key).get(column, _MISSING)
        return default if value is _MISSING else value

    def get_row(self, row_key: str) -> Dict[str, Any]:
        """Read the full merged row (empty dict when absent)."""
        self.reads += 1
        return self._row_snapshot(row_key)

    def contains_row(self, row_key: str) -> bool:
        return bool(self._row_snapshot(row_key))

    def row_keys(self) -> Iterator[str]:
        """All live row keys (deduplicated across runs)."""
        seen = set()
        for sstable in self._sstables:
            seen.update(sstable.rows)
        seen.update(self._memtable)
        for row_key in seen:
            if self._row_snapshot(row_key):
                yield row_key

    def approximate_row_count(self) -> int:
        """Row count without tombstone resolution (cheap estimate)."""
        seen = set()
        for sstable in self._sstables:
            seen.update(sstable.rows)
        seen.update(self._memtable)
        return len(seen)

    @property
    def sstable_count(self) -> int:
        return len(self._sstables)


class StorageEngine:
    """All column families of one node."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._families: Dict[str, ColumnFamilyStore] = {}

    def create_column_family(
        self, name: str, memtable_flush_threshold: int = 10_000
    ) -> ColumnFamilyStore:
        """Create (or return the existing) column family ``name``."""
        store = self._families.get(name)
        if store is None:
            store = ColumnFamilyStore(name, memtable_flush_threshold)
            self._families[name] = store
        return store

    def column_family(self, name: str) -> ColumnFamilyStore:
        store = self._families.get(name)
        if store is None:
            raise UnknownColumnFamilyError(name)
        return store

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def families(self) -> List[str]:
        return sorted(self._families)


# -- write-ahead log ------------------------------------------------------

#: Frame header: little-endian (lsn: u64, payload length: u32, crc: u32).
#: The CRC covers the lsn bytes *and* the payload, so a frame whose
#: header and body were written by different appends cannot verify.
_WAL_HEADER = struct.Struct("<QII")

#: Segment file name pattern; the index orders segments on replay.
_SEGMENT_FMT = "wal-{index:08d}.log"
_SEGMENT_GLOB = "wal-*.log"


def _frame(lsn: int, payload: bytes) -> bytes:
    lsn_bytes = struct.pack("<Q", lsn)
    crc = zlib.crc32(payload, zlib.crc32(lsn_bytes))
    return _WAL_HEADER.pack(lsn, len(payload), crc) + payload


def _segment_index(path: Path) -> int:
    return int(path.name[len("wal-"):-len(".log")])


def _list_segments(directory: Path) -> List[Path]:
    return sorted(directory.glob(_SEGMENT_GLOB), key=_segment_index)


def _first_frame_lsn(segment: Path) -> Optional[int]:
    """The lsn of a segment's first frame header, or None if empty.

    Only the header is read — no CRC verification — because the
    caller (:meth:`WalWriter.truncate_through`) uses it purely as an
    upper bound on the *previous* segment's lsns.
    """
    try:
        with open(segment, "rb") as handle:
            header = handle.read(_WAL_HEADER.size)
    except OSError:
        return None
    if len(header) < _WAL_HEADER.size:
        return None
    lsn, _, _ = _WAL_HEADER.unpack_from(header)
    return lsn


class WalWriter:
    """Appends CRC-framed records to a segmented write-ahead log.

    - **Framing**: each record is ``<lsn u64><len u32><crc u32>`` +
      payload; the CRC covers the lsn bytes and the payload.
    - **LSNs** are assigned by the writer and strictly increase across
      segments; the reader rejects regressions as corruption.
    - **Rotation**: when the current segment would exceed
      ``segment_max_bytes`` a new ``wal-NNNNNNNN.log`` is started (a
      single record larger than the limit still goes through — it
      simply gets a segment to itself).
    - **fsync batching**: ``fsync_interval=1`` fsyncs every append
      (strongest durability); ``n > 1`` fsyncs every n-th append and
      on :meth:`sync` / :meth:`close`, trading the tail of the log for
      throughput — exactly the torn tail :meth:`WalReader.replay`
      tolerates.

    Reopening a directory with existing segments first runs
    :meth:`WalReader.repair` — a torn tail left by a crash is
    truncated away so the old final segment ends on a record boundary
    — then continues after the highest replayable lsn in a **fresh**
    segment.  Without the repair the tear would sit in a non-final
    segment and every later :meth:`WalReader.replay` would reject the
    log as corrupted at rest.  Mid-log damage repair cannot fix still
    raises :class:`WalCorruptionError` here rather than opening a
    writer over a broken log.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_max_bytes: int = 1 << 20,
        fsync_interval: int = 1,
    ) -> None:
        if segment_max_bytes <= 0:
            raise WalError(
                f"segment_max_bytes must be positive, got {segment_max_bytes}"
            )
        if fsync_interval <= 0:
            raise WalError(
                f"fsync_interval must be positive, got {fsync_interval}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_interval = fsync_interval
        existing = _list_segments(self.directory)
        if existing:
            reader = WalReader(self.directory)
            # Truncate a crash's torn tail now: once this writer opens
            # a fresh segment the old final segment is no longer final,
            # and a tear there would fail every subsequent replay().
            reader.repair()
            self._next_lsn = reader.last_lsn() + 1
            next_index = _segment_index(existing[-1]) + 1
        else:
            self._next_lsn = 1
            next_index = 0
        self._segment_index = next_index
        self._segment_bytes = 0
        self._unsynced = 0
        self._group_depth = 0
        self._file = None
        #: Count of fsync syscalls issued (durability barriers).
        self.fsyncs = 0
        #: Cumulative records covered by those fsyncs.
        self.records_synced = 0
        #: Records covered by the most recent fsync.
        self.last_fsync_records = 0
        #: Group-commit windows that closed with a real fsync.
        self.group_commits = 0
        self._open_segment()

    # -- segment plumbing ------------------------------------------------

    @property
    def next_lsn(self) -> int:
        """The lsn the next :meth:`append` will be assigned."""
        return self._next_lsn

    @property
    def segment_path(self) -> Path:
        """Path of the segment currently being appended to."""
        return self.directory / _SEGMENT_FMT.format(
            index=self._segment_index
        )

    def _open_segment(self) -> None:
        if self._file is not None:
            self._fsync()
            self._file.close()
        self._file = open(self.segment_path, "ab")
        self._segment_bytes = self._file.tell()

    def _rotate(self) -> None:
        self._segment_index += 1
        self._open_segment()

    def _fsync(self) -> None:
        if self._file is not None and self._unsynced:
            self._file.flush()
            os.fsync(self._file.fileno())
            self.fsyncs += 1
            self.records_synced += self._unsynced
            self.last_fsync_records = self._unsynced
            self._unsynced = 0

    # -- public API ------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Frame and append ``payload``; returns its assigned lsn.

        The record is durable once the batched fsync covering it has
        run (immediately when ``fsync_interval == 1``).
        """
        if self._file is None:
            raise WalError("WalWriter is closed")
        if self._segment_bytes and (
            self._segment_bytes + _WAL_HEADER.size + len(payload)
            > self.segment_max_bytes
        ):
            self._rotate()
        lsn = self._next_lsn
        self._next_lsn += 1
        frame = _frame(lsn, payload)
        self._file.write(frame)
        self._segment_bytes += len(frame)
        self._unsynced += 1
        if (
            self._group_depth == 0
            and self._unsynced >= self.fsync_interval
        ):
            self._fsync()
        return lsn

    def begin_group(self) -> None:
        """Open a group-commit window: appends defer their fsync.

        Inside the window no append fsyncs, regardless of
        ``fsync_interval`` — every record written before the matching
        :meth:`end_group` becomes durable together, under **one**
        fsync.  Callers must not release durability acks for the
        window's records until :meth:`end_group` returns.  Windows
        nest; only the outermost ``end_group`` syncs.
        """
        if self._file is None:
            raise WalError("WalWriter is closed")
        self._group_depth += 1

    def end_group(self) -> int:
        """Close the window; returns records made durable by its fsync.

        Returns 0 when the window wrote nothing (no fsync issued) or
        when closing an inner nested window.
        """
        if self._group_depth <= 0:
            raise WalError("end_group without begin_group")
        self._group_depth -= 1
        if self._group_depth > 0:
            return 0
        covered = self._unsynced
        if covered:
            self._fsync()
            self.group_commits += 1
        return covered

    def sync(self) -> None:
        """Force the batched fsync now (durability barrier)."""
        self._fsync()

    def rotate(self) -> Path:
        """Cut over to a fresh segment; returns the new segment path.

        The old segment is fsynced and closed first.  Checkpointing
        uses this so its marker record (and everything after it) lands
        in a segment the subsequent truncation will keep.
        """
        if self._file is None:
            raise WalError("WalWriter is closed")
        self._rotate()
        return self.segment_path

    def truncate_through(self, lsn: int) -> int:
        """Delete segments whose records are all ``<= lsn``.

        Returns the number of segment files removed.  The current
        (open) segment is never removed, and a segment is only removed
        when the *next* segment proves — via its first record's lsn —
        that no record above the threshold would be lost.  Deleting
        prefixes is safe for the reader: replay's monotonicity check
        only requires lsns to increase, not to start at 1.
        """
        if self._file is None:
            raise WalError("WalWriter is closed")
        segments = _list_segments(self.directory)
        removed = 0
        for position in range(len(segments) - 1):
            following = segments[position + 1]
            first_after = _first_frame_lsn(following)
            if first_after is None or first_after > lsn + 1:
                break
            segments[position].unlink()
            removed += 1
        if removed:
            # Make the deletions themselves durable: fsync the
            # directory so a crash cannot resurrect half the prefix.
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        return removed

    def close(self) -> None:
        if self._file is not None:
            self._fsync()
            self._file.close()
            self._file = None

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class WalReader:
    """Replays a segmented write-ahead log written by :class:`WalWriter`.

    Corruption policy: a **torn tail** — a truncated or CRC-failing
    record at the very end of the *final* segment — is the expected
    signature of a crash mid-append and is silently tolerated (replay
    stops there).  The same damage anywhere else (mid-segment, or in a
    non-final segment followed by more data) means the log was
    corrupted at rest and raises :class:`WalCorruptionError`; so does
    an lsn that fails to increase across records.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise WalError(f"no such WAL directory: {self.directory}")

    def segments(self) -> List[Path]:
        """The segment files in replay order."""
        return _list_segments(self.directory)

    def replay(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(lsn, payload)`` for every verifiable record."""
        segments = self.segments()
        last_lsn = 0
        for position, segment in enumerate(segments):
            is_final = position == len(segments) - 1
            data = segment.read_bytes()
            offset = 0
            while offset < len(data):
                record = self._decode(
                    data, offset, segment, final_segment=is_final
                )
                if record is None:  # tolerated torn tail
                    break
                lsn, payload, offset = record
                if lsn <= last_lsn:
                    raise WalCorruptionError(
                        f"{segment.name}: lsn {lsn} does not increase "
                        f"(previous {last_lsn})"
                    )
                last_lsn = lsn
                yield lsn, payload

    def last_lsn(self) -> int:
        """Highest replayable lsn (0 for an empty or missing log)."""
        last = 0
        for lsn, _ in self.replay():
            last = lsn
        return last

    def repair(self) -> int:
        """Truncate a tolerated torn tail; returns the bytes dropped.

        After repair the final segment ends on a record boundary, so a
        reopening :class:`WalWriter` never leaves unreachable garbage
        between the tear and its fresh segment.  Raises
        :class:`WalCorruptionError` for damage repair cannot fix
        (mid-log corruption), same as :meth:`replay`.
        """
        segments = self.segments()
        if not segments:
            return 0
        final = segments[-1]
        data = final.read_bytes()
        offset = 0
        while offset < len(data):
            record = self._decode(data, offset, final, final_segment=True)
            if record is None:
                break
            _, _, offset = record
        dropped = len(data) - offset
        if dropped:
            with open(final, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
        return dropped

    def _decode(
        self,
        data: bytes,
        offset: int,
        segment: Path,
        final_segment: bool,
    ) -> Optional[Tuple[int, bytes, int]]:
        """Decode one frame at ``offset``; None for a tolerated tear."""

        def torn(reason: str) -> Optional[Tuple[int, bytes, int]]:
            if final_segment:
                return None
            raise WalCorruptionError(
                f"{segment.name} @ {offset}: {reason} in a non-final "
                "segment — log corrupted at rest"
            )

        if offset + _WAL_HEADER.size > len(data):
            return torn("truncated frame header")
        lsn, length, crc = _WAL_HEADER.unpack_from(data, offset)
        body_start = offset + _WAL_HEADER.size
        if body_start + length > len(data):
            return torn("truncated payload")
        payload = data[body_start:body_start + length]
        expected = zlib.crc32(payload, zlib.crc32(struct.pack("<Q", lsn)))
        if crc != expected:
            # A CRC failure mid-segment (more bytes follow) is at-rest
            # corruption even in the final segment.
            if final_segment and body_start + length == len(data):
                return None
            raise WalCorruptionError(
                f"{segment.name} @ {offset}: CRC mismatch "
                f"(stored {crc:#010x}, computed {expected:#010x})"
            )
        return lsn, payload, body_start + length
