"""A cluster node: storage engine + disk-bound service queue.

This is the unit the paper's per-node analysis reasons about.  The
node owns the three MOVE data stores (filter store, local inverted
list, meta-data store — Section V, Figure 3) as column families, plus a
:class:`~repro.sim.server.FifoServer` modelling its disk-bound match
service.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import NodeDownError
from ..obs.metrics import MetricsRegistry
from ..sim.engine import Simulator
from ..sim.server import FifoServer
from .storage import ColumnFamilyStore, StorageEngine

#: Column family names used by the MOVE stores (Figure 3).
CF_FILTER_STORE = "filter_store"
CF_INVERTED_LIST = "inverted_list"
CF_META_DATA = "meta_data"


class ClusterNode:
    """One simulated commodity machine."""

    def __init__(
        self,
        node_id: str,
        sim: Optional[Simulator] = None,
        rack: str = "rack0",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        """``registry`` (usually the owning cluster's) receives the
        disk queue's service/wait histograms and this node's
        crash/recovery counters; ``None`` leaves the node
        uninstrumented."""
        self.node_id = node_id
        self.rack = rack
        self.sim = sim or Simulator()
        self.registry = registry
        self.storage = StorageEngine(node_id)
        self.server = FifoServer(
            self.sim, name=f"{node_id}/disk", registry=registry
        )
        self.alive = True
        # Pre-create the three MOVE stores so every subsystem finds them.
        self.filter_store = self.storage.create_column_family(
            CF_FILTER_STORE
        )
        self.inverted_list_store = self.storage.create_column_family(
            CF_INVERTED_LIST
        )
        self.meta_store = self.storage.create_column_family(CF_META_DATA)

    def crash(self) -> None:
        """Fail-stop: reject new work, pause the service queue."""
        self.alive = False
        self.server.pause()
        if self.registry is not None:
            self.registry.counter("node_crashes").add()

    def recover(self) -> None:
        """Bring the node back with its durable state intact."""
        self.alive = True
        self.server.resume()
        if self.registry is not None:
            self.registry.counter("node_recoveries").add()

    def require_alive(self, operation: str = "") -> None:
        if not self.alive:
            raise NodeDownError(self.node_id, operation)

    def submit_work(
        self,
        service_time: float,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue a disk-bound job (raises when the node is down)."""
        self.require_alive("submit_work")
        self.server.submit(service_time, on_complete)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"ClusterNode({self.node_id}, rack={self.rack}, {state})"
