"""Rack/datacenter topology of the simulated cluster.

The paper's placement discussion (Section V) distinguishes ring-based
successors from rack-aware nodes and notes that losing a whole rack
loses all filters placed rack-aware; the topology object is what makes
those statements testable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import UnknownNodeError


class Topology:
    """Assignment of nodes to racks (one datacenter)."""

    def __init__(self) -> None:
        self._rack_of: Dict[str, str] = {}
        self._racks: Dict[str, List[str]] = {}

    @classmethod
    def round_robin(
        cls, node_ids: Sequence[str], num_racks: int
    ) -> "Topology":
        """Spread ``node_ids`` over ``num_racks`` racks round-robin."""
        if num_racks < 1:
            raise ValueError(f"num_racks must be >= 1, got {num_racks}")
        topology = cls()
        for index, node_id in enumerate(node_ids):
            topology.assign(node_id, f"rack{index % num_racks}")
        return topology

    def assign(self, node_id: str, rack: str) -> None:
        """Place ``node_id`` in ``rack`` (moving it if already placed)."""
        previous = self._rack_of.get(node_id)
        if previous is not None:
            self._racks[previous].remove(node_id)
            if not self._racks[previous]:
                del self._racks[previous]
        self._rack_of[node_id] = rack
        self._racks.setdefault(rack, []).append(node_id)

    def remove(self, node_id: str) -> None:
        rack = self._rack_of.pop(node_id, None)
        if rack is None:
            raise UnknownNodeError(node_id)
        self._racks[rack].remove(node_id)
        if not self._racks[rack]:
            del self._racks[rack]

    def rack_of(self, node_id: str) -> str:
        rack = self._rack_of.get(node_id)
        if rack is None:
            raise UnknownNodeError(node_id)
        return rack

    def nodes_in_rack(self, rack: str) -> List[str]:
        return list(self._racks.get(rack, []))

    def rack_peers(self, node_id: str) -> List[str]:
        """Other nodes sharing ``node_id``'s rack."""
        rack = self.rack_of(node_id)
        return [peer for peer in self._racks[rack] if peer != node_id]

    def racks(self) -> List[str]:
        return sorted(self._racks)

    def same_rack(self, a: str, b: str) -> bool:
        return self.rack_of(a) == self.rack_of(b)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._rack_of

    def __len__(self) -> int:
        return len(self._rack_of)
