"""The key/value client: ``put``/``get`` against the home node.

Section II: "the put function is used to store the object, and the get
function to lookup an object associated with an input key."  The client
routes by the ring (O(1)-hop, since every node knows the full ring via
gossip) and replicates writes along the configured strategy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import NodeDownError
from ..obs.metrics import MetricsRegistry
from .cluster import Cluster
from .replication import ReplicationStrategy


class KeyValueClient:
    """Client-side routing for a :class:`~repro.cluster.Cluster`.

    Values live in a dedicated ``kv`` column family on each replica.
    Reads try replicas in preference order and return the first answer
    from a live node (Dynamo's sloppy read path without read repair —
    sufficient for the filter-store usage in the paper).
    """

    COLUMN_FAMILY = "kv"
    HINT_FAMILY = "kv_hints"
    COLUMN = "value"

    def __init__(
        self,
        cluster: Cluster,
        strategy: Optional[ReplicationStrategy] = None,
        replica_count: Optional[int] = None,
        hinted_handoff: bool = False,
    ) -> None:
        """``hinted_handoff`` enables Dynamo's availability mechanism:
        a write whose replica is down lands on the next live node of
        the preference list as a *hint*, and :meth:`deliver_hints`
        replays the hints once the replica recovers."""
        self.cluster = cluster
        self.strategy = strategy or cluster.simple_strategy
        self.replica_count = (
            replica_count
            if replica_count is not None
            else cluster.config.replica_count
        )
        self.hinted_handoff = hinted_handoff
        #: Observability counters: ``kv_puts`` / ``kv_gets`` /
        #: ``kv_deletes`` plus the failure-path events
        #: (``hints_stored``, ``hints_delivered``, ``read_repairs``)
        #: that OPERATIONS.md's failure-handling runbook watches.
        self.metrics = MetricsRegistry()
        #: Client-side logical clock versioning every write, enabling
        #: read repair (newest version wins; stale replicas are
        #: rewritten during reads).
        self._clock = 0
        for node in cluster.nodes.values():
            node.storage.create_column_family(self.COLUMN_FAMILY)
            node.storage.create_column_family(self.HINT_FAMILY)

    def replicas_for(self, key: str) -> List[str]:
        return self.strategy.replicas(key, self.replica_count)

    def put(self, key: str, value: Any) -> List[str]:
        """Store ``value`` on all live replicas of ``key``.

        Returns the node ids written.  With hinted handoff enabled, a
        dead replica's share is written to the next live non-replica
        node on the preference list, tagged with the intended target.
        Raises :class:`~repro.errors.NodeDownError` when *no* replica
        is alive (write completely lost).
        """
        self.metrics.counter("kv_puts").add()
        replicas = self.replicas_for(key)
        self._clock += 1
        versioned = (self._clock, value)
        written: List[str] = []
        dead_targets: List[str] = []
        for node_id in replicas:
            node = self.cluster.node(node_id)
            if not node.alive:
                dead_targets.append(node_id)
                continue
            store = node.storage.create_column_family(self.COLUMN_FAMILY)
            store.put(key, self.COLUMN, versioned)
            written.append(node_id)
        if not written:
            raise NodeDownError(
                ",".join(replicas), operation=f"put({key})"
            )
        if self.hinted_handoff and dead_targets:
            self._store_hints(key, versioned, replicas, dead_targets)
        return written

    def _store_hints(
        self,
        key: str,
        value: Any,
        replicas: List[str],
        dead_targets: List[str],
    ) -> None:
        """Park one hint per dead replica on a live stand-in node."""
        preference = self.cluster.ring.preference_list(
            key, len(self.cluster)
        )
        stand_ins = [
            node_id
            for node_id in preference
            if node_id not in replicas
            and self.cluster.node(node_id).alive
        ]
        for target, stand_in in zip(dead_targets, stand_ins):
            hints = self.cluster.node(stand_in).storage.create_column_family(
                self.HINT_FAMILY
            )
            hints.put(f"{target}:{key}", self.COLUMN, value)
            self.metrics.counter("hints_stored").add()

    def deliver_hints(self) -> int:
        """Replay parked hints whose intended replicas are back up.

        Returns the number of hints delivered.  Called after recovery
        (real Dynamo runs this continuously in the background).
        """
        delivered = 0
        for node in self.cluster.nodes.values():
            if not node.alive:
                continue
            hints = node.storage.create_column_family(self.HINT_FAMILY)
            for hint_key in list(hints.row_keys()):
                target_id, _, key = hint_key.partition(":")
                target = self.cluster.nodes.get(target_id)
                if target is None or not target.alive:
                    continue
                value = hints.get(hint_key, self.COLUMN)
                store = target.storage.create_column_family(
                    self.COLUMN_FAMILY
                )
                store.put(key, self.COLUMN, value)
                hints.delete(hint_key)
                delivered += 1
        if delivered:
            self.metrics.counter("hints_delivered").add(float(delivered))
        return delivered

    def get(self, key: str, default: Any = None) -> Any:
        """Read ``key`` with read repair.

        All live replicas are consulted; the newest version wins, and
        any live replica holding a stale (or missing) copy is rewritten
        with it — so a recovered node converges on the next read even
        without hint delivery (Dynamo's read-repair path).
        """
        self.metrics.counter("kv_gets").add()
        missing = object()
        responses: List = []  # (node_id, version or None, value)
        for node_id in self.replicas_for(key):
            node = self.cluster.node(node_id)
            if not node.alive:
                continue
            store = node.storage.create_column_family(self.COLUMN_FAMILY)
            versioned = store.get(key, self.COLUMN, missing)
            if versioned is missing:
                responses.append((node_id, None, None))
            else:
                version, value = versioned
                responses.append((node_id, version, value))
        versions = [v for _n, v, _val in responses if v is not None]
        if not versions:
            return default
        newest_version = max(versions)
        newest = next(
            value
            for _n, version, value in responses
            if version == newest_version
        )
        # Read repair: bring stale live replicas up to the newest
        # version observed.
        for node_id, version, _value in responses:
            if version == newest_version:
                continue
            store = self.cluster.node(node_id).storage.create_column_family(
                self.COLUMN_FAMILY
            )
            store.put(key, self.COLUMN, (newest_version, newest))
            self.metrics.counter("read_repairs").add()
        return newest

    def delete(self, key: str) -> None:
        """Delete ``key`` from all live replicas."""
        self.metrics.counter("kv_deletes").add()
        for node_id in self.replicas_for(key):
            node = self.cluster.node(node_id)
            if not node.alive:
                continue
            store = node.storage.create_column_family(self.COLUMN_FAMILY)
            store.delete(key)

    def multi_get(self, keys: List[str]) -> Dict[str, Any]:
        """Batch read; keys that resolve to None are included as None."""
        return {key: self.get(key) for key in keys}
