"""Cluster orchestration: nodes + ring + topology + gossip + network.

This object is the "Apache Cassandra deployment" of the reproduction:
it wires the partitioner, consistent-hash ring, rack topology, gossip
membership and per-node storage/queues together, and exposes failure
injection for the Figure 9(c–d) experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..config import ClusterConfig
from ..errors import UnknownNodeError
from ..obs.metrics import MetricsRegistry
from ..sim.engine import Simulator
from ..sim.network import LinkSpec, NetworkModel
from .membership import GossipMembership
from .node import ClusterNode
from .partitioner import RandomPartitioner
from .replication import RackAwareStrategy, SimpleStrategy
from .ring import ConsistentHashRing
from .topology import Topology


class Cluster:
    """A simulated cluster of commodity machines."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        sim: Optional[Simulator] = None,
        link_spec: Optional[LinkSpec] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.sim = sim or Simulator()
        #: Cluster-wide observability registry: per-node disk service
        #: and wait histograms (fed by each node's
        #: :class:`~repro.sim.server.FifoServer`) plus crash/recovery
        #: counters — the substrate half of ``repro.obs``.
        self.metrics = MetricsRegistry()
        #: Bumped on every membership change (join, crash, recovery).
        #: Systems fold it into their batch epoch so the dissemination
        #: pipeline can detect membership churn inside a publish batch
        #: (see ``DisseminationSystem._batch_epoch``).
        self.membership_epoch = 0
        self.partitioner = RandomPartitioner()
        self.ring = ConsistentHashRing(
            self.partitioner, vnodes=self.config.vnodes_per_node
        )
        self.topology = Topology()
        self.nodes: Dict[str, ClusterNode] = {}

        node_ids = [f"node{i:03d}" for i in range(self.config.num_nodes)]
        rack_assignment = Topology.round_robin(
            node_ids, self.config.num_racks
        )
        for node_id in node_ids:
            rack = rack_assignment.rack_of(node_id)
            self.topology.assign(node_id, rack)
            self.nodes[node_id] = ClusterNode(
                node_id, sim=self.sim, rack=rack, registry=self.metrics
            )
            self.ring.add_node(node_id)

        self.membership = GossipMembership(
            node_ids, seed=self.config.seed
        )
        self.network = NetworkModel(
            self.sim, spec=link_spec, rack_of=self.topology.rack_of
        )
        self.simple_strategy = SimpleStrategy(self.ring)
        self.rack_strategy = RackAwareStrategy(self.ring, self.topology)

    # -- membership / lookup ------------------------------------------

    def node(self, node_id: str) -> ClusterNode:
        node = self.nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(node_id)
        return node

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    def live_node_ids(self) -> List[str]:
        return [nid for nid in self.node_ids() if self.nodes[nid].alive]

    def home_node(self, key: str) -> ClusterNode:
        """The node owning ``key`` on the ring."""
        return self.node(self.ring.home_node(key))

    def __len__(self) -> int:
        return len(self.nodes)

    # -- scaling ---------------------------------------------------------

    def add_node(self, rack: Optional[str] = None) -> ClusterNode:
        """Join a fresh node (used by elasticity tests)."""
        node_id = f"node{len(self.nodes):03d}"
        while node_id in self.nodes:
            node_id = f"node{int(node_id[4:]) + 1:03d}"
        rack = rack or f"rack{len(self.nodes) % self.config.num_racks}"
        node = ClusterNode(
            node_id, sim=self.sim, rack=rack, registry=self.metrics
        )
        self.nodes[node_id] = node
        self.topology.assign(node_id, rack)
        self.ring.add_node(node_id)
        self.membership.add_node(node_id)
        self.membership_epoch += 1
        return node

    # -- failure injection -------------------------------------------------

    def fail_node(self, node_id: str) -> None:
        """Fail-stop ``node_id`` (state retained for later recovery)."""
        node = self.node(node_id)
        if not node.alive:
            return
        node.crash()
        self.membership.mark_crashed(node_id)
        self.membership_epoch += 1

    def recover_node(self, node_id: str) -> None:
        node = self.node(node_id)
        if node.alive:
            return
        node.recover()
        self.membership.mark_recovered(node_id)
        self.membership_epoch += 1

    def fail_fraction(
        self, fraction: float, rng, exclude: Iterable[str] = ()
    ) -> List[str]:
        """Fail a random ``fraction`` of live nodes; returns their ids."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        excluded = set(exclude)
        candidates = [
            nid for nid in self.live_node_ids() if nid not in excluded
        ]
        count = int(round(fraction * len(candidates)))
        victims = rng.sample(candidates, k=min(count, len(candidates)))
        for node_id in victims:
            self.fail_node(node_id)
        return victims

    def fail_rack(self, rack: str) -> List[str]:
        """Fail every node in ``rack`` (whole-rack outage)."""
        victims = self.topology.nodes_in_rack(rack)
        for node_id in victims:
            self.fail_node(node_id)
        return victims
