"""Consistent-hash ring with virtual nodes.

Provides the two primitives the paper uses from the key/value layer:

- *home node* of a key — the node owning the first token at or after the
  key's token, wrapping around (O(1)-hop DHT routing: every node knows
  the full ring via gossip, as in Dynamo);
- *ring successors* of a node — the distinct nodes following it on the
  ring, used both for SimpleStrategy replication and for MOVE's
  successor-based placement of allocated filters (Section V).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import RingEmptyError, UnknownNodeError
from .partitioner import RandomPartitioner


class ConsistentHashRing:
    """Token ring mapping keys to node ids.

    Each node contributes ``vnodes`` tokens derived from its id, which
    smooths ownership imbalance (classic consistent hashing result).
    Removal (node failure/decommission) reassigns ranges implicitly.
    """

    #: Safety valve for the home-node memo: adversarially unbounded key
    #: streams cannot grow the cache past this (real vocabularies stay
    #: far below it).
    HOME_CACHE_MAX = 1 << 20

    def __init__(
        self,
        partitioner: Optional[RandomPartitioner] = None,
        vnodes: int = 32,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.partitioner = partitioner or RandomPartitioner()
        self.vnodes = vnodes
        self._tokens: List[int] = []
        self._token_owner: Dict[int, str] = {}
        self._members: Set[str] = set()
        #: key -> owning node memo; correct as long as membership is
        #: unchanged, so any token mutation clears it.
        self._home_cache: Dict[str, str] = {}
        #: Disabled, every lookup hashes + bisects as the seed
        #: implementation did — the slow oracle the benchmarks and
        #: equivalence tests compare the cached path against.
        self.cache_enabled = True

    def _invalidate_home_cache(self) -> None:
        if self._home_cache:
            self._home_cache.clear()

    # -- membership -----------------------------------------------------

    def add_node(self, node_id: str) -> None:
        """Insert ``node_id`` with its virtual tokens."""
        if node_id in self._members:
            return
        self._members.add(node_id)
        for vnode_index in range(self.vnodes):
            token = self.partitioner.token(f"{node_id}#vnode{vnode_index}")
            # MD5 collisions across distinct vnode labels are not a
            # realistic concern, but keep ownership deterministic anyway.
            if token in self._token_owner:
                continue
            bisect.insort(self._tokens, token)
            self._token_owner[token] = node_id
        self._invalidate_home_cache()

    def remove_node(self, node_id: str) -> None:
        """Remove ``node_id`` and all of its virtual tokens.

        Token cleanup happens first and membership is discarded last,
        so a failure partway through never leaves a member whose tokens
        are gone; one pass over ``_tokens`` rebuilds the sorted list
        and prunes ``_token_owner`` in place.
        """
        if node_id not in self._members:
            raise UnknownNodeError(node_id)
        kept: List[int] = []
        for token in self._tokens:
            if self._token_owner[token] == node_id:
                del self._token_owner[token]
            else:
                kept.append(token)
        self._tokens = kept
        self._members.discard(node_id)
        self._invalidate_home_cache()

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    @property
    def members(self) -> Set[str]:
        return set(self._members)

    # -- lookups ----------------------------------------------------------

    def home_node(self, key: str) -> str:
        """The node owning ``key`` (first token at/after key's token).

        Lookups are memoized per key (an MD5 plus a bisect saved on
        every repeat); the memo is invalidated whenever ring
        membership changes and can be switched off entirely via
        :attr:`cache_enabled` to recover the uncached reference
        behaviour.
        """
        if not self._tokens:
            raise RingEmptyError("ring has no members")
        if self.cache_enabled:
            cached = self._home_cache.get(key)
            if cached is not None:
                return cached
        token = self.partitioner.token(key)
        index = bisect.bisect_left(self._tokens, token)
        if index == len(self._tokens):
            index = 0
        owner = self._token_owner[self._tokens[index]]
        if self.cache_enabled:
            if len(self._home_cache) >= self.HOME_CACHE_MAX:
                self._home_cache.clear()
            self._home_cache[key] = owner
        return owner

    def successors(
        self, node_id: str, count: int, include_self: bool = False
    ) -> List[str]:
        """Up to ``count`` distinct nodes following ``node_id``'s first
        token on the ring, in ring order.

        This is the walk Cassandra's SimpleStrategy performs and the
        paper's "ring-based successors" placement option.
        """
        if node_id not in self._members:
            raise UnknownNodeError(node_id)
        if count <= 0:
            return []
        anchor = self.partitioner.token(f"{node_id}#vnode0")
        start = bisect.bisect_right(self._tokens, anchor)
        found: List[str] = []
        seen: Set[str] = set() if include_self else {node_id}
        for offset in range(len(self._tokens)):
            token = self._tokens[(start + offset) % len(self._tokens)]
            owner = self._token_owner[token]
            if owner in seen:
                continue
            seen.add(owner)
            found.append(owner)
            if len(found) >= count:
                break
        return found

    def preference_list(self, key: str, count: int) -> List[str]:
        """The ``count`` distinct nodes walking the ring from ``key``.

        Dynamo's preference list: home node first, then successors.
        """
        if not self._tokens:
            raise RingEmptyError("ring has no members")
        if count <= 0:
            return []
        token = self.partitioner.token(key)
        start = bisect.bisect_left(self._tokens, token)
        found: List[str] = []
        seen: Set[str] = set()
        for offset in range(len(self._tokens)):
            ring_token = self._tokens[(start + offset) % len(self._tokens)]
            owner = self._token_owner[ring_token]
            if owner in seen:
                continue
            seen.add(owner)
            found.append(owner)
            if len(found) >= count:
                break
        return found

    # -- diagnostics --------------------------------------------------------

    def ownership_fractions(self) -> Dict[str, float]:
        """Fraction of the token space owned by each member."""
        if not self._tokens:
            return {}
        fractions: Dict[str, float] = {node: 0.0 for node in self._members}
        space = self.partitioner.TOKEN_SPACE
        for index, token in enumerate(self._tokens):
            previous = self._tokens[index - 1]
            span = (token - previous) % space
            if span == 0 and len(self._tokens) == 1:
                span = space
            fractions[self._token_owner[token]] += span / space
        return fractions
