"""A from-scratch Cassandra/Dynamo-model key/value cluster substrate.

The paper deploys MOVE on Apache Cassandra 0.87 (an open-source Dynamo
implementation with a BigTable data model).  This package rebuilds the
pieces the paper relies on:

- :mod:`repro.cluster.partitioner` — MD5 random partitioner (tokens),
- :mod:`repro.cluster.ring` — consistent-hash ring with virtual nodes,
  home-node lookup and ring successors,
- :mod:`repro.cluster.topology` — rack/datacenter layout,
- :mod:`repro.cluster.membership` — gossip dissemination of membership
  state with heartbeat-based failure detection,
- :mod:`repro.cluster.replication` — SimpleStrategy (ring successors)
  and rack-aware replica placement,
- :mod:`repro.cluster.storage` — memtable/SSTable column-family store
  plus the segmented CRC-framed write-ahead log
  (:class:`~repro.cluster.storage.WalWriter` /
  :class:`~repro.cluster.storage.WalReader`) backing crash recovery
  in :mod:`repro.serve`,
- :mod:`repro.cluster.node` — a cluster node binding storage + queues,
- :mod:`repro.cluster.cluster` — cluster orchestration and failure
  injection,
- :mod:`repro.cluster.client` — the put/get client of Section II.
"""

from .antientropy import HashTree, replica_divergence, synchronize
from .client import KeyValueClient
from .cluster import Cluster
from .membership import GossipMembership, NodeState
from .node import ClusterNode
from .partitioner import RandomPartitioner
from .replication import (
    RackAwareStrategy,
    ReplicationStrategy,
    SimpleStrategy,
)
from .ring import ConsistentHashRing
from .storage import ColumnFamilyStore, StorageEngine, WalReader, WalWriter
from .topology import Topology

__all__ = [
    "HashTree",
    "synchronize",
    "replica_divergence",
    "RandomPartitioner",
    "ConsistentHashRing",
    "Topology",
    "GossipMembership",
    "NodeState",
    "ReplicationStrategy",
    "SimpleStrategy",
    "RackAwareStrategy",
    "StorageEngine",
    "ColumnFamilyStore",
    "WalWriter",
    "WalReader",
    "ClusterNode",
    "Cluster",
    "KeyValueClient",
]
