"""Gossip-based membership with heartbeat failure detection.

Dynamo-style clusters disseminate membership through an anti-entropy
gossip protocol: each round, every node picks a random peer and the two
merge their views (taking the higher heartbeat version per node).  A
node whose heartbeat has not advanced within ``suspect_timeout`` rounds
of gossip is marked DOWN in the local view.

The implementation is round-synchronous (driven by the simulator or by
explicit :meth:`tick` calls) and deterministic under a seeded RNG,
which is what the membership-convergence property tests rely on.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import UnknownNodeError


class NodeState(enum.Enum):
    """Liveness as seen by a local view."""

    UP = "up"
    DOWN = "down"


@dataclass
class HeartbeatRecord:
    """One node's entry in a gossip view."""

    heartbeat: int = 0
    #: Local round at which the heartbeat last advanced.
    last_advance: int = 0
    state: NodeState = NodeState.UP


class GossipView:
    """One node's view of the whole membership."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self.records: Dict[str, HeartbeatRecord] = {
            owner: HeartbeatRecord()
        }

    def known_nodes(self) -> Set[str]:
        return set(self.records)

    def live_nodes(self) -> Set[str]:
        return {
            node
            for node, record in self.records.items()
            if record.state is NodeState.UP
        }

    def merge_from(self, other: "GossipView", local_round: int) -> None:
        """Anti-entropy merge: keep the higher heartbeat per node."""
        for node, remote in other.records.items():
            local = self.records.get(node)
            if local is None:
                self.records[node] = HeartbeatRecord(
                    heartbeat=remote.heartbeat,
                    last_advance=local_round,
                    state=remote.state,
                )
            elif remote.heartbeat > local.heartbeat:
                local.heartbeat = remote.heartbeat
                local.last_advance = local_round
                local.state = NodeState.UP


class GossipMembership:
    """Cluster-wide gossip driver.

    Owns one :class:`GossipView` per member and advances them in
    rounds.  Crashed nodes (registered via :meth:`mark_crashed`) stop
    beating and stop gossiping; live nodes eventually mark them DOWN.
    """

    def __init__(
        self,
        node_ids: Iterable[str],
        suspect_timeout: int = 5,
        fanout: int = 1,
        seed: int = 0,
    ) -> None:
        if suspect_timeout < 1:
            raise ValueError("suspect_timeout must be >= 1")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.suspect_timeout = suspect_timeout
        self.fanout = fanout
        self._rng = random.Random(seed)
        self._round = 0
        self._crashed: Set[str] = set()
        self.views: Dict[str, GossipView] = {}
        ids = list(node_ids)
        for node_id in ids:
            self.views[node_id] = GossipView(node_id)
        # Seed contact: every node initially knows the full static
        # member list (Cassandra's seed-node bootstrap), with
        # zero heartbeats that must be refreshed by gossip.
        for view in self.views.values():
            for node_id in ids:
                view.records.setdefault(node_id, HeartbeatRecord())

    @property
    def round_number(self) -> int:
        return self._round

    def add_node(self, node_id: str) -> None:
        """A joining node knows only itself; gossip spreads the rest."""
        if node_id in self.views:
            return
        view = GossipView(node_id)
        self.views[node_id] = view
        # It contacts one live seed immediately (bootstrap).
        live = [
            other
            for other in self.views
            if other != node_id and other not in self._crashed
        ]
        if live:
            seed_node = self._rng.choice(sorted(live))
            view.merge_from(self.views[seed_node], self._round)
            self.views[seed_node].merge_from(view, self._round)

    def mark_crashed(self, node_id: str) -> None:
        if node_id not in self.views:
            raise UnknownNodeError(node_id)
        self._crashed.add(node_id)

    def mark_recovered(self, node_id: str) -> None:
        if node_id not in self.views:
            raise UnknownNodeError(node_id)
        self._crashed.discard(node_id)
        view = self.views[node_id]
        record = view.records[node_id]
        record.state = NodeState.UP
        record.last_advance = self._round

    def is_crashed(self, node_id: str) -> bool:
        return node_id in self._crashed

    def tick(self, rounds: int = 1) -> None:
        """Advance gossip by ``rounds`` synchronous rounds."""
        for _ in range(rounds):
            self._round += 1
            live_members = [
                node for node in sorted(self.views) if node not in self._crashed
            ]
            # 1. Every live node beats its own heart.
            for node in live_members:
                record = self.views[node].records[node]
                record.heartbeat += 1
                record.last_advance = self._round
            # 2. Every live node gossips with `fanout` random peers.
            for node in live_members:
                peers = [peer for peer in live_members if peer != node]
                if not peers:
                    continue
                contacts = self._rng.sample(
                    peers, k=min(self.fanout, len(peers))
                )
                for peer in contacts:
                    self.views[node].merge_from(self.views[peer], self._round)
                    self.views[peer].merge_from(self.views[node], self._round)
            # 3. Failure detection: stale heartbeat → DOWN.  Fresh
            # heartbeats disseminate epidemically in O(log n) rounds,
            # so the staleness threshold scales with membership size —
            # a fixed threshold would falsely suspect live nodes
            # whenever the random gossip graph leaves a view un-updated
            # for a few rounds.
            dissemination_slack = max(
                1, math.ceil(math.log2(max(len(live_members), 2)))
            )
            threshold = self.suspect_timeout + dissemination_slack
            for node in live_members:
                view = self.views[node]
                for other, record in view.records.items():
                    if other == node:
                        continue
                    stale_for = self._round - record.last_advance
                    if stale_for > threshold:
                        record.state = NodeState.DOWN

    def view_of(self, node_id: str) -> GossipView:
        view = self.views.get(node_id)
        if view is None:
            raise UnknownNodeError(node_id)
        return view

    def converged(self) -> bool:
        """True when all live views agree on the live-node set."""
        live_views = [
            view
            for node, view in self.views.items()
            if node not in self._crashed
        ]
        if not live_views:
            return True
        reference = live_views[0].live_nodes()
        return all(view.live_nodes() == reference for view in live_views)
