"""MD5 random partitioner — the key→token mapping of Cassandra/Dynamo.

Keys are hashed into a fixed 128-bit token space; the ring maps token
ranges to nodes.  MD5 gives uniform spread (the "balanced storage"
property the paper's baseline relies on) and is stable across
processes, unlike Python's salted builtin ``hash``.
"""

from __future__ import annotations

import hashlib


class RandomPartitioner:
    """Maps string keys to tokens in ``[0, 2**128)``."""

    #: Exclusive upper bound of the token space.
    TOKEN_SPACE = 2**128

    def token(self, key: str) -> int:
        """Token of ``key`` (deterministic across processes)."""
        digest = hashlib.md5(key.encode("utf-8")).digest()
        return int.from_bytes(digest, "big")

    def token_fraction(self, key: str) -> float:
        """Token normalized to ``[0, 1)`` — handy for stratified tests."""
        return self.token(key) / self.TOKEN_SPACE

    def describe_owner_range(self, start: int, end: int) -> float:
        """Fraction of the token space in the wrapped range (start, end]."""
        if start == end:
            return 1.0
        span = (end - start) % self.TOKEN_SPACE
        return span / self.TOKEN_SPACE
