"""Replica placement strategies.

Cassandra offers SimpleStrategy (walk the ring) and topology-aware
strategies (spread replicas across racks).  Both are reproduced because
the paper's placement of *allocated filters* (Section V) is built from
the same two primitives: ring successors and rack peers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from .ring import ConsistentHashRing
from .topology import Topology


class ReplicationStrategy(ABC):
    """Chooses the replica set for a key."""

    @abstractmethod
    def replicas(self, key: str, count: int) -> List[str]:
        """Distinct node ids storing ``key``; primary (home node) first."""


class SimpleStrategy(ReplicationStrategy):
    """Dynamo/Cassandra SimpleStrategy: the preference list."""

    def __init__(self, ring: ConsistentHashRing) -> None:
        self.ring = ring

    def replicas(self, key: str, count: int) -> List[str]:
        return self.ring.preference_list(key, count)


class RackAwareStrategy(ReplicationStrategy):
    """Rack-aware placement.

    The home node comes first; subsequent replicas prefer nodes in
    *other* racks (one per rack while possible) so a whole-rack failure
    cannot take out every replica.  Falls back to same-rack nodes when
    racks run out, matching Cassandra's old RackAwareStrategy.
    """

    def __init__(self, ring: ConsistentHashRing, topology: Topology) -> None:
        self.ring = ring
        self.topology = topology

    def replicas(self, key: str, count: int) -> List[str]:
        preference = self.ring.preference_list(key, len(self.ring))
        if not preference or count <= 0:
            return []
        primary = preference[0]
        chosen = [primary]
        used_racks = {self.topology.rack_of(primary)}
        # First pass: one replica per distinct rack, in ring order.
        for candidate in preference[1:]:
            if len(chosen) >= count:
                return chosen
            rack = self.topology.rack_of(candidate)
            if rack not in used_racks:
                used_racks.add(rack)
                chosen.append(candidate)
        # Second pass: fill remaining slots in ring order.
        for candidate in preference[1:]:
            if len(chosen) >= count:
                break
            if candidate not in chosen:
                chosen.append(candidate)
        return chosen
