"""Anti-entropy repair: hash-tree comparison between replicas.

Dynamo/Cassandra keep replicas converged in the background by
exchanging Merkle trees over their key ranges and syncing only the
divergent leaves.  This module implements that mechanism for the
column-family store: rows are bucketed by stable hash, each bucket gets
a digest, bucket digests roll up into a root digest, and two replicas
compare trees top-down, transferring only rows in mismatching buckets.

Used by the repair tests and available to operators of long-running
simulations where hinted handoff or read repair have not yet converged
every key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..sim.randomness import stable_hash64
from .storage import ColumnFamilyStore


def _digest_row(row_key: str, columns: Dict[str, Any]) -> bytes:
    payload = repr(
        (row_key, sorted(columns.items(), key=lambda kv: kv[0]))
    ).encode("utf-8")
    return hashlib.sha256(payload).digest()


@dataclass(frozen=True)
class HashTree:
    """Bucketed digests over a column family's rows."""

    buckets: Tuple[bytes, ...]
    root: bytes
    bucket_count: int

    @classmethod
    def build(
        cls, store: ColumnFamilyStore, bucket_count: int = 64
    ) -> "HashTree":
        if bucket_count < 1:
            raise ValueError("bucket_count must be >= 1")
        accumulators: List[List[bytes]] = [
            [] for _ in range(bucket_count)
        ]
        for row_key in store.row_keys():
            bucket = stable_hash64(row_key) % bucket_count
            accumulators[bucket].append(
                _digest_row(row_key, store.get_row(row_key))
            )
        buckets = []
        for digests in accumulators:
            hasher = hashlib.sha256()
            for digest in sorted(digests):
                hasher.update(digest)
            buckets.append(hasher.digest())
        root_hasher = hashlib.sha256()
        for digest in buckets:
            root_hasher.update(digest)
        return cls(
            buckets=tuple(buckets),
            root=root_hasher.digest(),
            bucket_count=bucket_count,
        )

    def diverging_buckets(self, other: "HashTree") -> List[int]:
        """Bucket indexes whose digests disagree."""
        if self.bucket_count != other.bucket_count:
            raise ValueError(
                "hash trees must use the same bucket count "
                f"({self.bucket_count} != {other.bucket_count})"
            )
        if self.root == other.root:
            return []
        return [
            index
            for index, (a, b) in enumerate(
                zip(self.buckets, other.buckets)
            )
            if a != b
        ]


def synchronize(
    source: ColumnFamilyStore,
    target: ColumnFamilyStore,
    bucket_count: int = 64,
) -> int:
    """One-way repair: copy rows the target is missing or holds stale.

    Builds both trees, compares, and for each diverging bucket copies
    the source's rows in that bucket onto the target (source wins —
    callers choose direction; bidirectional repair is two calls with
    swapped arguments using newest-wins values).  Returns rows copied.
    """
    source_tree = HashTree.build(source, bucket_count)
    target_tree = HashTree.build(target, bucket_count)
    diverging = set(source_tree.diverging_buckets(target_tree))
    if not diverging:
        return 0
    copied = 0
    for row_key in source.row_keys():
        if stable_hash64(row_key) % bucket_count not in diverging:
            continue
        source_row = source.get_row(row_key)
        if target.get_row(row_key) != source_row:
            target.put_row(row_key, source_row)
            copied += 1
    return copied


def replica_divergence(
    stores: List[ColumnFamilyStore], bucket_count: int = 64
) -> float:
    """Fraction of replica pairs whose root digests disagree."""
    if len(stores) < 2:
        return 0.0
    trees = [HashTree.build(store, bucket_count) for store in stores]
    pairs = 0
    diverging = 0
    for i in range(len(trees)):
        for j in range(i + 1, len(trees)):
            pairs += 1
            if trees[i].root != trees[j].root:
                diverging += 1
    return diverging / pairs
