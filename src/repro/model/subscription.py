"""The :class:`Subscription` value object: a filter with a predicate.

A subscription subsumes :class:`~repro.model.filter.Filter`: its
``terms`` are the **routing anchors** the dissemination machinery sees
(home nodes, popularity statistics, allocation, Bloom pruning — all
unchanged), while an optional boolean predicate (the parsed query
tree) is evaluated at the delivery boundary.  A flat filter is the
degenerate case — anchors only, no predicate.

Anchor choice is where predicates meet MOVE's allocation: a
conjunctive query needs only *one* of its operands' anchor sets to be
routable, so :meth:`Subscription.from_query` homes it at its **rarest**
candidate (by a caller-supplied popularity statistic, e.g.
``PopularityTracker.count``), and popularity is counted only there —
one subscription never multi-counts across its terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

from .filter import Filter
from .query import (
    QueryError,
    QueryNode,
    anchor_candidates,
    is_flat,
    parse_query,
)

#: Cached-predicate sentinel distinguishing "not parsed yet" from a
#: parsed-but-flat (None) predicate.
_UNPARSED = object()


@dataclass(frozen=True)
class Subscription(Filter):
    """An immutable registered subscription.

    ``terms`` are the routing anchors; ``query`` is the raw query text
    (empty for plain flat subscriptions).  The parsed predicate is
    derived lazily from ``query`` — the raw text, never the stemmed
    AST, is what travels through slabs, the WAL, and the wire, because
    the text pipeline is not idempotent (re-stemming a stem can change
    it); re-parsing the original text always rebuilds the identical
    tree.
    """

    query: str = ""

    @property
    def predicate(self) -> Optional[QueryNode]:
        """The parsed boolean predicate, or None for flat semantics.

        None both for subscriptions without query text and for queries
        that are semantically plain any-term matching over their own
        anchors (a single term, a disjunction of terms) — those stay
        on the anchor-only fast path bit-identically to a
        :class:`Filter`.
        """
        cached = self.__dict__.get("_predicate", _UNPARSED)
        if cached is _UNPARSED:
            if not self.query:
                cached = None
            else:
                node = parse_query(self.query)
                cached = None if is_flat(node) else node
            object.__setattr__(self, "_predicate", cached)
        return cached

    @property
    def is_predicated(self) -> bool:
        return self.predicate is not None

    def accepts(self, terms: FrozenSet[str]) -> bool:
        """Full-semantics evaluation against a document's term set:
        the predicate when present, any-anchor-term otherwise."""
        predicate = self.predicate
        if predicate is not None:
            return predicate.matches(terms)
        return not self.terms.isdisjoint(terms)

    @classmethod
    def from_query(
        cls,
        subscription_id: str,
        text: str,
        owner: str = "",
        popularity: Optional[Callable[[str], float]] = None,
    ) -> "Subscription":
        """Parse ``text`` and home the subscription at its rarest
        anchor candidate.

        ``popularity`` maps a term to how many registered filters
        carry it (:meth:`repro.stats.PopularityTracker.count`); the
        candidate anchor set with the smallest popularity mass wins,
        ties broken by size then by the sorted term tuple so the
        choice is deterministic.  Raises :class:`QueryError` when the
        query has no positive anchors (e.g. ``NOT sports``) — such a
        query cannot be routed by shared terms and would have to
        flood.
        """
        node = parse_query(text)
        candidates = anchor_candidates(node)
        if not candidates:
            raise QueryError(
                f"query {text!r} has no positive anchors and cannot be "
                "routed (a query must require at least one term)"
            )
        if popularity is None:
            anchors = candidates[0]  # pre-sorted: smallest, then lexicographic
        else:
            anchors = min(
                candidates,
                key=lambda c: (
                    sum(popularity(term) for term in c),
                    len(c),
                    tuple(sorted(c)),
                ),
            )
        return cls(
            filter_id=subscription_id,
            terms=frozenset(anchors),
            owner=owner,
            query=text,
        )

    @classmethod
    def from_filter(cls, profile: Filter) -> "Subscription":
        """Wrap a flat filter unchanged (same id/terms/owner, no
        predicate)."""
        if isinstance(profile, cls):
            return profile
        return cls(
            filter_id=profile.filter_id,
            terms=profile.terms,
            owner=profile.owner,
        )
