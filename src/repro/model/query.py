"""The boolean query language: AND/OR/NOT trees over keywords.

The paper's data model is flat keyword sets with any-term matching;
production alert services expose richer predicates ("storm AND
(flood OR surge) NOT sports").  This module holds the query language
itself — the AST, the recursive-descent parser, and **anchor-term
extraction** — as a model-layer value type so that
:class:`repro.model.Subscription` can embed a parsed predicate without
reaching upward into the matching layer.

Grammar (case-insensitive keywords, implicit AND by juxtaposition):

    query  := or
    or     := and ( OR and )*
    and    := unary ( [AND] unary )*
    unary  := NOT unary | atom
    atom   := WORD | '(' query ')'

Anchor soundness: ``node.anchors()`` returns a set of terms such that
any document satisfying the query must contain at least one of them.
A subscription registers an ordinary filter over (a subset of) its
anchors, so routing (home nodes, allocation, Bloom pruning) is
untouched, and the full predicate is evaluated at the delivery
boundary.  NOT is supported only where the query retains at least one
positive anchor (a pure negation matches almost everything and cannot
be routed by shared terms).
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..errors import ReproError
from ..text import Tokenizer


class QueryError(ReproError):
    """The query text could not be parsed or cannot be routed."""


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class QueryNode(ABC):
    """A node of the parsed boolean query."""

    @abstractmethod
    def matches(self, terms: FrozenSet[str]) -> bool:
        """Evaluate against a document's term set."""

    @abstractmethod
    def anchors(self) -> Optional[Set[str]]:
        """Terms such that any match contains one of them.

        Returns None when no such finite set exists (pure negation).
        """


def _canonical(anchor_set: Set[str]) -> Tuple[int, Tuple[str, ...]]:
    """Deterministic comparison key for an anchor set: size, then the
    sorted term tuple — equivalent queries pick the same anchors no
    matter how their operands were ordered."""
    return (len(anchor_set), tuple(sorted(anchor_set)))


@dataclass(frozen=True)
class Term(QueryNode):
    term: str

    def matches(self, terms: FrozenSet[str]) -> bool:
        return self.term in terms

    def anchors(self) -> Optional[Set[str]]:
        return {self.term}

    def __str__(self) -> str:
        return self.term


@dataclass(frozen=True)
class And(QueryNode):
    operands: Tuple[QueryNode, ...]

    def matches(self, terms: FrozenSet[str]) -> bool:
        return all(op.matches(terms) for op in self.operands)

    def anchors(self) -> Optional[Set[str]]:
        # Any one operand's anchor set suffices; pick the smallest
        # available (fewest home nodes touched), breaking size ties by
        # the sorted term tuple so the choice is order-independent.
        best: Optional[Set[str]] = None
        for operand in self.operands:
            candidate = operand.anchors()
            if candidate is None:
                continue
            if best is None or _canonical(candidate) < _canonical(best):
                best = candidate
        return best

    def __str__(self) -> str:
        return "(" + " AND ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True)
class Or(QueryNode):
    operands: Tuple[QueryNode, ...]

    def matches(self, terms: FrozenSet[str]) -> bool:
        return any(op.matches(terms) for op in self.operands)

    def anchors(self) -> Optional[Set[str]]:
        # Every branch must contribute: a match may come through any.
        union: Set[str] = set()
        for operand in self.operands:
            candidate = operand.anchors()
            if candidate is None:
                return None
            union |= candidate
        return union

    def __str__(self) -> str:
        return "(" + " OR ".join(map(str, self.operands)) + ")"


@dataclass(frozen=True)
class Not(QueryNode):
    operand: QueryNode

    def matches(self, terms: FrozenSet[str]) -> bool:
        return not self.operand.matches(terms)

    def anchors(self) -> Optional[Set[str]]:
        return None  # negations constrain nothing positively

    def __str__(self) -> str:
        return f"NOT {self.operand}"


def anchor_candidates(node: QueryNode) -> Tuple[FrozenSet[str], ...]:
    """Every sound anchor set of ``node``, deterministically ordered.

    For a conjunction each positively anchored operand yields one
    candidate on its own (a match must satisfy *every* operand, so any
    one operand's anchors cover it); for every other node shape the
    node's own :meth:`~QueryNode.anchors` is the only candidate.  The
    caller picks among candidates — e.g. the rarest by live popularity
    statistics (see :meth:`repro.model.Subscription.from_query`).
    """
    if isinstance(node, And):
        seen: Set[FrozenSet[str]] = set()
        out: List[FrozenSet[str]] = []
        for operand in node.operands:
            candidate = operand.anchors()
            if candidate is None:
                continue
            frozen = frozenset(candidate)
            if frozen not in seen:
                seen.add(frozen)
                out.append(frozen)
        out.sort(key=_canonical)
        return tuple(out)
    whole = node.anchors()
    if whole is None:
        return ()
    return (frozenset(whole),)


def is_flat(node: QueryNode) -> bool:
    """True when ``node`` is semantically plain any-term matching over
    its own anchors — a single term, or a disjunction of terms — so a
    subscription built from it needs no delivery-time predicate."""
    if isinstance(node, Term):
        return True
    if isinstance(node, Or):
        return all(isinstance(op, Term) for op in node.operands)
    return False


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"\(|\)|[^\s()]+")
_KEYWORDS = {"and", "or", "not"}


class _Parser:
    def __init__(self, tokens: List[str], raw: str) -> None:
        self.tokens = tokens
        self.position = 0
        self.raw = raw

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self.raw!r}")
        self.position += 1
        return token

    def parse(self) -> QueryNode:
        node = self.parse_or()
        if self.peek() is not None:
            raise QueryError(
                f"trailing tokens after query: {self.raw!r}"
            )
        return node

    def parse_or(self) -> QueryNode:
        operands = [self.parse_and()]
        while (
            self.peek() is not None and self.peek().lower() == "or"
        ):
            self.advance()
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_and(self) -> QueryNode:
        operands = [self.parse_unary()]
        while True:
            token = self.peek()
            if token is None or token == ")":
                break
            lowered = token.lower()
            if lowered == "or":
                break
            if lowered == "and":
                self.advance()
                operands.append(self.parse_unary())
            else:
                operands.append(self.parse_unary())  # implicit AND
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_unary(self) -> QueryNode:
        token = self.peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self.raw!r}")
        if token.lower() == "not":
            self.advance()
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> QueryNode:
        token = self.advance()
        if token == "(":
            node = self.parse_or()
            closing = self.advance()
            if closing != ")":
                raise QueryError(
                    f"expected ')' in query: {self.raw!r}"
                )
            return node
        if token == ")":
            raise QueryError(f"unexpected ')' in query: {self.raw!r}")
        if token.lower() in _KEYWORDS:
            raise QueryError(
                f"operator {token!r} where a term was expected: "
                f"{self.raw!r}"
            )
        return self._term(token)

    def _term(self, token: str) -> QueryNode:
        processed = _PIPELINE(token)
        if not processed:
            raise QueryError(
                f"term {token!r} vanishes in the text pipeline "
                f"(stop word or too short): {self.raw!r}"
            )
        if len(processed) == 1:
            return Term(processed[0])
        # A token that splits (e.g. "real-time") becomes an AND.
        return And(tuple(Term(t) for t in processed))


_PIPELINE = Tokenizer()


def parse_query(text: str) -> QueryNode:
    """Parse query ``text`` into an AST (pipeline-normalized terms)."""
    tokens = _TOKEN_RE.findall(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens, text).parse()
