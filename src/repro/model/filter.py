"""The :class:`Filter` value object (a user's keyword profile).

A filter ``f`` is the set of its ``|f|`` query terms (Section III-A).
Real traces show filters are short — on average 2–3 terms — which is
the asymmetry MOVE's allocation exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple


@dataclass(frozen=True)
class Filter:
    """An immutable registered profile filter.

    ``owner`` identifies the subscribing user so dissemination can be
    attributed; it defaults to the filter id for single-filter users.
    """

    filter_id: str
    terms: FrozenSet[str]
    owner: str = ""

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError(
                f"filter {self.filter_id!r} must contain at least one term"
            )
        if not self.owner:
            object.__setattr__(self, "owner", self.filter_id)

    @classmethod
    def from_terms(
        cls, filter_id: str, terms: Iterable[str], owner: str = ""
    ) -> "Filter":
        return cls(
            filter_id=filter_id, terms=frozenset(terms), owner=owner
        )

    @classmethod
    def from_text(
        cls, filter_id: str, text: str, owner: str = "", tokenizer=None
    ) -> "Filter":
        """Build a filter by running query ``text`` through the pipeline."""
        from ..text import tokenize

        terms = tokenizer(text) if tokenizer is not None else tokenize(text)
        if not terms:
            raise ValueError(
                f"filter {filter_id!r}: no terms survive pre-processing "
                f"of {text!r}"
            )
        return cls.from_terms(filter_id, terms, owner=owner)

    def __len__(self) -> int:
        """Number of query terms (the paper's ``|f|``)."""
        return len(self.terms)

    def __contains__(self, term: str) -> bool:
        return term in self.terms

    def sorted_terms(self) -> Tuple[str, ...]:
        return tuple(sorted(self.terms))

    @property
    def term_ids(self) -> Tuple[int, ...]:
        """Dense shared-interner ids of :attr:`terms`.

        Positionally parallel to iterating :attr:`terms`; cached on
        first access (see :mod:`repro.text.interning`).
        """
        cached = self.__dict__.get("_term_ids")
        if cached is None:
            from ..text.interning import intern_terms

            cached = intern_terms(self.terms)
            object.__setattr__(self, "_term_ids", cached)
        return cached
