"""Match semantics between documents and filters.

The paper's base semantics (Section III-A): a document ``d`` matches a
filter ``f`` when some term appears in both — boolean "any term"
matching.  Section III-A also notes the solution extends to similarity
threshold-based semantics in the SIFT / STAIRS style; we provide a
VSM-cosine threshold semantics as that extension.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional

from .document import Document
from .filter import Filter


class MatchSemantics(ABC):
    """Strategy deciding whether a document satisfies a filter."""

    @abstractmethod
    def matches(self, document: Document, profile: Filter) -> bool:
        """True when ``document`` should be disseminated to ``profile``."""

    def name(self) -> str:
        return type(self).__name__


class BooleanAnyTermSemantics(MatchSemantics):
    """Paper default: match when ``d ∩ f`` is non-empty."""

    def matches(self, document: Document, profile: Filter) -> bool:
        smaller, larger = (
            (profile.terms, document.terms)
            if len(profile.terms) <= len(document.terms)
            else (document.terms, profile.terms)
        )
        return any(term in larger for term in smaller)


class BooleanAllTermsSemantics(MatchSemantics):
    """Conjunctive variant: every filter term must appear in ``d``.

    Not used by the paper's evaluation but a common production
    semantics; included because the allocation machinery is agnostic to
    the local semantics (home nodes only need one shared term).
    """

    def matches(self, document: Document, profile: Filter) -> bool:
        return profile.terms <= document.terms


class ThresholdSemantics(MatchSemantics):
    """VSM similarity threshold semantics (the SIFT-style extension).

    A filter matches when the cosine similarity between the document's
    tf–idf vector (restricted to the filter terms) and the filter's
    uniform unit vector reaches ``threshold``.  Inverse document
    frequencies come from a corpus-statistics mapping supplied by the
    caller; unknown terms fall back to ``default_idf``.
    """

    def __init__(
        self,
        threshold: float,
        idf: Optional[Mapping[str, float]] = None,
        default_idf: float = 1.0,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.threshold = threshold
        self.idf: Mapping[str, float] = idf or {}
        self.default_idf = default_idf

    def similarity(self, document: Document, profile: Filter) -> float:
        """Cosine similarity restricted to the filter's terms.

        The dot product accumulates in document-term order — the same
        canonical summation order as ``VsmScorer.similarity`` and the
        score-accumulation kernel, so this oracle stays bit-for-bit
        comparable with both.
        """
        doc_weights: Dict[str, float] = {}
        for term in document.terms:
            tf = 1.0 + math.log(max(document.term_frequency(term), 1))
            doc_weights[term] = tf * self.idf.get(term, self.default_idf)
        doc_norm = math.sqrt(sum(w * w for w in doc_weights.values()))
        if doc_norm == 0.0:
            return 0.0
        filter_norm = math.sqrt(len(profile.terms))
        terms = profile.terms
        dot = 0.0
        for term, weight in doc_weights.items():
            if term in terms:
                dot += weight
        return dot / (doc_norm * filter_norm)

    def matches(self, document: Document, profile: Filter) -> bool:
        return self.similarity(document, profile) >= self.threshold


def brute_force_match(
    document: Document,
    filters: Iterable[Filter],
    semantics: Optional[MatchSemantics] = None,
) -> List[Filter]:
    """Oracle matcher: test ``document`` against every filter.

    Used by tests as ground truth for the distributed systems'
    completeness invariant, and by the single-node experiments as the
    trivially correct (but slow) reference.
    """
    semantics = semantics or BooleanAnyTermSemantics()
    return [
        profile
        for profile in filters
        if semantics.matches(document, profile)
    ]
