"""Columnar filter storage: the million-filter memory tier.

At the paper's scale (Section VI-C registers 4M filters, replicated
``n_i ∝ √(p_i·q_i)`` times) per-object storage dominates memory long
before CPU does: one registered :class:`~repro.model.filter.Filter` is
a dataclass + a ``frozenset`` of python strings (~600 bytes), and every
index replica adds per-filter dict rows on top.  This module stores
filters *columnar* instead — struct-of-arrays over interned term-ids —
so a stored filter costs a few dozen bytes and posting lists can hold
plain integer slots:

- :class:`FilterSlabStore` — one contiguous ``array('i')`` of term-ids
  with per-slot offset/length columns, a dense slot ↔ filter-id map,
  and precomputed ``sqrt(|f|)`` norms.  ``Filter`` objects are
  *rehydrated* from the columns only at delivery boundaries, through a
  small bounded cache.
- :class:`SlabRegistry` — a ``MutableMapping`` view over the slab that
  lets :class:`~repro.baselines.base.DisseminationSystem` use the slab
  as its registration table without code changes: assignment interns
  into the slab, lookup rehydrates lazily.

Equivalence contract: a rehydrated filter compares ``==`` to the
originally registered one (same id, same term set, same owner) and its
``term_ids`` re-intern to the same ids, so slab-backed systems are
bit-identical to object-backed twins in match sets, RNG streams, and
stored replica counts (``tests/test_slab_store.py`` runs the twin
matrix over all four schemes).

Slots are reused: ``release`` puts a slot on a free list and the next
``add`` claims it, so long-lived churny systems don't grow without
bound; ``epoch`` bumps on every mutation so downstream caches (and the
hydration cache itself) can never serve a stale rebinding.  Term-id
cells abandoned by released slots are tracked as ``dead_term_cells``
and reclaimed by :meth:`FilterSlabStore.compact`.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from math import sqrt
from typing import (
    Dict,
    Iterator,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

from ..text.interning import DEFAULT_INTERNER, TermInterner
from .filter import Filter
from .query import QueryNode, is_flat, parse_query
from .subscription import Subscription

__all__ = ["FilterSlabStore", "SlabRegistry"]

#: Parsed-predicate cache sentinel ("never parsed" vs "parsed, flat").
_UNPARSED = object()

#: Default bound on the rehydration cache (delivery working set).
DEFAULT_HYDRATION_CACHE = 4096

#: CPython overhead estimate for one short str object (header + ascii).
_STR_OVERHEAD = 49
#: Rough per-entry cost of a dict slot (key/value pointers + hash).
_DICT_ENTRY = 104
#: Rough cost of one list cell (pointer).
_LIST_CELL = 8


class FilterSlabStore:
    """Struct-of-arrays storage for registered filters.

    Columns, all parallel by *slot* (a dense reusable integer):

    - ``_starts[slot]`` / ``_lengths[slot]`` — the filter's run inside
      the shared ``_term_ids`` buffer;
    - ``_norms[slot]`` — precomputed ``sqrt(|f|)`` (the VSM filter
      norm, so scoring paths never need the object);
    - ``_filter_ids[slot]`` — the external string id (``None`` while
      the slot sits on the free list);
    - ``_owners`` — sparse: only filters whose owner differs from
      their id pay for the extra string;
    - ``_queries`` — sparse: only predicate subscriptions store their
      raw query text (the compact predicate representation — the
      parsed tree is rebuilt lazily per slot and memoized in
      ``_parsed``, exactly like ``Filter`` rehydration).
    """

    __slots__ = (
        "interner",
        "_term_ids",
        "_starts",
        "_lengths",
        "_norms",
        "_filter_ids",
        "_owners",
        "_queries",
        "_parsed",
        "_slot_of",
        "_free",
        "_hydrated",
        "_hydration_limit",
        "_epoch",
        "_dead_cells",
        "_id_bytes",
        "_query_bytes",
    )

    def __init__(
        self,
        interner: Optional[TermInterner] = None,
        hydration_cache_size: int = DEFAULT_HYDRATION_CACHE,
    ) -> None:
        self.interner = interner or DEFAULT_INTERNER
        self._term_ids: array = array("i")
        self._starts: array = array("q")
        self._lengths: array = array("i")
        self._norms: array = array("d")
        self._filter_ids: List[Optional[str]] = []
        self._owners: Dict[int, str] = {}
        self._queries: Dict[int, str] = {}
        self._parsed: Dict[int, Optional[QueryNode]] = {}
        self._slot_of: Dict[str, int] = {}
        self._free: List[int] = []
        self._hydrated: "OrderedDict[int, Filter]" = OrderedDict()
        self._hydration_limit = max(1, hydration_cache_size)
        self._epoch = 0
        self._dead_cells = 0
        self._id_bytes = 0
        self._query_bytes = 0

    # -- shape -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (registered) filters."""
        return len(self._slot_of)

    def __contains__(self, filter_id: str) -> bool:
        return filter_id in self._slot_of

    @property
    def epoch(self) -> int:
        """Bumped on every add/release/compact; caches key on this."""
        return self._epoch

    @property
    def slot_count(self) -> int:
        """Total slots ever allocated (live + free-listed)."""
        return len(self._filter_ids)

    @property
    def free_slots(self) -> int:
        return len(self._free)

    @property
    def dead_term_cells(self) -> int:
        """Term-id cells abandoned by released slots (see compact)."""
        return self._dead_cells

    # -- mutation ----------------------------------------------------------

    def add(self, profile: Filter) -> int:
        """Intern ``profile`` and return its slot (idempotent upsert).

        An id that is already stored keeps its slot — registration
        layers validate duplicates before they reach the slab, so a
        repeat ``add`` is the batch-registration path ensuring a slot
        exists, not a rebind.
        """
        slot = self._slot_of.get(profile.filter_id)
        if slot is not None:
            return slot
        term_ids = profile.term_ids
        start = len(self._term_ids)
        self._term_ids.extend(term_ids)
        if self._free:
            slot = self._free.pop()
            self._starts[slot] = start
            self._lengths[slot] = len(term_ids)
            self._norms[slot] = sqrt(len(term_ids))
            self._filter_ids[slot] = profile.filter_id
        else:
            slot = len(self._filter_ids)
            self._starts.append(start)
            self._lengths.append(len(term_ids))
            self._norms.append(sqrt(len(term_ids)))
            self._filter_ids.append(profile.filter_id)
        if profile.owner != profile.filter_id:
            self._owners[slot] = profile.owner
        query = getattr(profile, "query", "")
        if query:
            self._queries[slot] = query
            self._query_bytes += len(query) + _STR_OVERHEAD
        self._slot_of[profile.filter_id] = slot
        self._id_bytes += len(profile.filter_id) + _STR_OVERHEAD
        self._epoch += 1
        return slot

    def release(self, filter_id: str) -> int:
        """Free the filter's slot (returned for listeners/tests).

        The slot goes on the free list and its term-id cells become
        dead until :meth:`compact`; raises ``KeyError`` for unknown
        ids so the registry view keeps dict semantics.
        """
        slot = self._slot_of.pop(filter_id)
        self._dead_cells += self._lengths[slot]
        self._filter_ids[slot] = None
        self._owners.pop(slot, None)
        released_query = self._queries.pop(slot, None)
        if released_query is not None:
            self._query_bytes -= len(released_query) + _STR_OVERHEAD
        self._parsed.pop(slot, None)
        self._hydrated.pop(slot, None)
        self._free.append(slot)
        self._id_bytes -= len(filter_id) + _STR_OVERHEAD
        self._epoch += 1
        return slot

    def compact(self) -> int:
        """Rewrite the term-id buffer dropping dead runs.

        Slot numbering is preserved (postings stay valid); returns the
        number of cells reclaimed.
        """
        if not self._dead_cells:
            return 0
        reclaimed = self._dead_cells
        fresh: array = array("i")
        old = self._term_ids
        for slot, filter_id in enumerate(self._filter_ids):
            if filter_id is None:
                continue
            start = self._starts[slot]
            length = self._lengths[slot]
            self._starts[slot] = len(fresh)
            fresh.extend(old[start : start + length])
        self._term_ids = fresh
        self._dead_cells = 0
        self._epoch += 1
        return reclaimed

    # -- reads -------------------------------------------------------------

    def slot_of(self, filter_id: str) -> Optional[int]:
        return self._slot_of.get(filter_id)

    def filter_id(self, slot: int) -> str:
        filter_id = self._filter_ids[slot]
        if filter_id is None:
            raise KeyError(f"slot {slot} is free")
        return filter_id

    def owner(self, slot: int) -> str:
        return self._owners.get(slot) or self.filter_id(slot)

    def term_ids(self, slot: int) -> Sequence[int]:
        """The filter's interned term-ids (a cheap buffer slice)."""
        start = self._starts[slot]
        return self._term_ids[start : start + self._lengths[slot]]

    def terms(self, slot: int) -> List[str]:
        term = self.interner.term
        return [term(tid) for tid in self.term_ids(slot)]

    def norm(self, slot: int) -> float:
        """Precomputed ``sqrt(|f|)`` of the slot's filter."""
        return self._norms[slot]

    def length(self, slot: int) -> int:
        """Number of terms (``|f|``) without touching strings."""
        return self._lengths[slot]

    def get(self, slot: int) -> Filter:
        """Rehydrate the slot's :class:`Filter` (bounded LRU cache).

        The rehydrated object is ``==`` the originally registered one
        and re-interns to the same term-ids; identity is *not*
        preserved, which no consumer relies on (postings hold slots,
        the kernel keys on ``filter_id``).
        """
        cached = self._hydrated.get(slot)
        if cached is not None:
            self._hydrated.move_to_end(slot)
            return cached
        query = self._queries.get(slot)
        if query is not None:
            profile: Filter = Subscription(
                filter_id=self.filter_id(slot),
                terms=frozenset(self.terms(slot)),
                owner=self._owners.get(slot, ""),
                query=query,
            )
        else:
            profile = Filter.from_terms(
                self.filter_id(slot),
                self.terms(slot),
                owner=self._owners.get(slot, ""),
            )
        self._hydrated[slot] = profile
        if len(self._hydrated) > self._hydration_limit:
            self._hydrated.popitem(last=False)
        return profile

    def get_by_id(self, filter_id: str) -> Filter:
        slot = self._slot_of.get(filter_id)
        if slot is None:
            raise KeyError(filter_id)
        return self.get(slot)

    def query(self, slot: int) -> str:
        """The slot's raw query text ("" for flat filters)."""
        return self._queries.get(slot, "")

    def predicate(self, slot: int) -> Optional[QueryNode]:
        """The slot's parsed delivery predicate, or None if flat.

        Parsed lazily from the stored raw text and memoized per slot
        (the memo dies with the slot on release) — the predicate twin
        of lazy ``Filter`` rehydration.  Queries that are semantically
        plain any-term matching over their own anchors memoize None.
        """
        text = self._queries.get(slot)
        if text is None:
            return None
        cached = self._parsed.get(slot, _UNPARSED)
        if cached is _UNPARSED:
            node = parse_query(text)
            cached = None if is_flat(node) else node
            self._parsed[slot] = cached
        return cached

    def predicate_by_id(self, filter_id: str) -> Optional[QueryNode]:
        slot = self._slot_of.get(filter_id)
        if slot is None:
            return None
        return self.predicate(slot)

    def iter_filter_ids(self) -> Iterator[str]:
        return iter(self._slot_of)

    def iter_slots(self) -> Iterator[Tuple[int, str]]:
        """Yield ``(slot, filter_id)`` for every live slot."""
        for filter_id, slot in self._slot_of.items():
            yield slot, filter_id

    # -- accounting --------------------------------------------------------

    def memory_bytes(self) -> int:
        """Estimated resident bytes of the columns (diagnostics).

        Array buffers are exact; string and dict costs use CPython
        per-object estimates.  RSS-level truth comes from the scale
        bench (``benchmarks/bench_scale.py``), which measures the
        process, not this estimate.
        """
        buffers = (
            len(self._term_ids) * self._term_ids.itemsize
            + len(self._starts) * self._starts.itemsize
            + len(self._lengths) * self._lengths.itemsize
            + len(self._norms) * self._norms.itemsize
        )
        maps = (
            len(self._slot_of) * _DICT_ENTRY
            + len(self._filter_ids) * _LIST_CELL
            + len(self._owners) * _DICT_ENTRY
            + len(self._queries) * _DICT_ENTRY
        )
        return buffers + maps + self._id_bytes + self._query_bytes

    def stats(self) -> Dict[str, int]:
        return {
            "live_filters": len(self._slot_of),
            "slots": len(self._filter_ids),
            "free_slots": len(self._free),
            "term_cells": len(self._term_ids),
            "dead_term_cells": self._dead_cells,
            "epoch": self._epoch,
            "memory_bytes": self.memory_bytes(),
            "hydrated": len(self._hydrated),
            "queries": len(self._queries),
            "parsed_predicates": len(self._parsed),
        }


class SlabRegistry(MutableMapping):
    """Dict-shaped registration table backed by a slab.

    Drop-in for the base system's ``_registered`` dict: ``__setitem__``
    interns the filter into the slab (no object retained),
    ``__getitem__``/``get`` rehydrate lazily — the delivery boundary.
    """

    __slots__ = ("slab",)

    def __init__(self, slab: FilterSlabStore) -> None:
        self.slab = slab

    def __setitem__(self, filter_id: str, profile: Filter) -> None:
        if profile.filter_id != filter_id:
            raise ValueError(
                f"registry key {filter_id!r} != profile id "
                f"{profile.filter_id!r}"
            )
        self.slab.add(profile)

    def __getitem__(self, filter_id: str) -> Filter:
        return self.slab.get_by_id(filter_id)

    def __delitem__(self, filter_id: str) -> None:
        self.slab.release(filter_id)

    def __contains__(self, filter_id: object) -> bool:
        return filter_id in self.slab

    def __iter__(self) -> Iterator[str]:
        return self.slab.iter_filter_ids()

    def __len__(self) -> int:
        return len(self.slab)
