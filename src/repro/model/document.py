"""The :class:`Document` value object.

The paper (Section III-A) represents a fresh document ``d`` by the set
of its ``|d|`` terms; we additionally keep per-term counts so the VSM
similarity-threshold extension can compute tf–idf weights.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Document:
    """An immutable published content item.

    ``terms`` is the de-duplicated term set (the ``d`` of the paper);
    ``term_counts`` preserves multiplicities for weighted semantics.
    """

    doc_id: str
    terms: FrozenSet[str]
    term_counts: Mapping[str, int] = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.term_counts is None:
            object.__setattr__(
                self, "term_counts", {term: 1 for term in self.terms}
            )
        missing = self.terms - set(self.term_counts)
        if missing:
            raise ValueError(
                f"document {self.doc_id!r}: terms without counts: "
                f"{sorted(missing)[:5]}"
            )

    @classmethod
    def from_terms(
        cls, doc_id: str, terms: Iterable[str]
    ) -> "Document":
        """Build a document from a (possibly repeating) term sequence."""
        counts = Counter(terms)
        return cls(
            doc_id=doc_id,
            terms=frozenset(counts),
            term_counts=dict(counts),
        )

    @classmethod
    def from_text(
        cls, doc_id: str, text: str, tokenizer=None
    ) -> "Document":
        """Build a document by running ``text`` through the pipeline."""
        from ..text import tokenize

        terms = tokenizer(text) if tokenizer is not None else tokenize(text)
        return cls.from_terms(doc_id, terms)

    def __len__(self) -> int:
        """Number of distinct terms (the paper's ``|d|``)."""
        return len(self.terms)

    def __contains__(self, term: str) -> bool:
        return term in self.terms

    @property
    def total_term_occurrences(self) -> int:
        """Sum of term counts (document length before de-duplication)."""
        return sum(self.term_counts.values())

    def sorted_terms(self) -> Tuple[str, ...]:
        """Terms in lexicographic order (stable iteration helper)."""
        return tuple(sorted(self.terms))

    def term_frequency(self, term: str) -> int:
        """Occurrences of ``term`` in the document (0 if absent)."""
        return self.term_counts.get(term, 0)

    @property
    def term_ids(self) -> Tuple[int, ...]:
        """Dense shared-interner ids of :attr:`terms`.

        Positionally parallel to iterating :attr:`terms`; computed on
        first access and cached on the instance, so batched hot loops
        can key per-term memos by int instead of re-hashing strings.
        """
        cached = self.__dict__.get("_term_ids")
        if cached is None:
            from ..text.interning import intern_terms

            cached = intern_terms(self.terms)
            object.__setattr__(self, "_term_ids", cached)
        return cached
