"""Data model: documents, filters, subscriptions and match semantics
(Section III-A plus the boolean query extension)."""

from .document import Document
from .filter import Filter
from .match import (
    BooleanAnyTermSemantics,
    MatchSemantics,
    ThresholdSemantics,
    brute_force_match,
)
from .query import (
    And,
    Not,
    Or,
    QueryError,
    QueryNode,
    Term,
    anchor_candidates,
    parse_query,
)
from .slab import FilterSlabStore, SlabRegistry
from .subscription import Subscription

__all__ = [
    "Document",
    "Filter",
    "Subscription",
    "FilterSlabStore",
    "SlabRegistry",
    "MatchSemantics",
    "BooleanAnyTermSemantics",
    "ThresholdSemantics",
    "brute_force_match",
    "QueryNode",
    "QueryError",
    "Term",
    "And",
    "Or",
    "Not",
    "parse_query",
    "anchor_candidates",
]
