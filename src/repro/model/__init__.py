"""Data model: documents, filters and match semantics (Section III-A)."""

from .document import Document
from .filter import Filter
from .match import (
    BooleanAnyTermSemantics,
    MatchSemantics,
    ThresholdSemantics,
    brute_force_match,
)
from .slab import FilterSlabStore, SlabRegistry

__all__ = [
    "Document",
    "Filter",
    "FilterSlabStore",
    "SlabRegistry",
    "MatchSemantics",
    "BooleanAnyTermSemantics",
    "ThresholdSemantics",
    "brute_force_match",
]
