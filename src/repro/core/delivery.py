"""Delivery layer: per-user inboxes over the dissemination plans.

The systems' ``publish`` returns matched *filter ids*; real users see
*notifications*.  The delivery service resolves filters to owners,
deduplicates (a user with several matching filters receives one copy
of a document), and keeps bounded per-user inboxes — the
"disseminate d to those matching filters" last hop of Section III-B.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set

from ..baselines.base import DisseminationPlan, DisseminationSystem
from ..model import Document


@dataclass(frozen=True)
class Notification:
    """One document delivered to one user."""

    doc_id: str
    owner: str
    matched_filter_ids: frozenset

    def __str__(self) -> str:
        filters = ", ".join(sorted(self.matched_filter_ids))
        return f"{self.owner} <- {self.doc_id} (via {filters})"


class Inbox:
    """Bounded FIFO of notifications for one user."""

    def __init__(self, owner: str, capacity: int = 1_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.owner = owner
        self.capacity = capacity
        self._items: Deque[Notification] = deque(maxlen=capacity)
        self.total_received = 0
        self.dropped = 0

    def push(self, notification: Notification) -> None:
        if len(self._items) == self.capacity:
            self.dropped += 1
        self._items.append(notification)
        self.total_received += 1

    def drain(self) -> List[Notification]:
        """Remove and return everything currently queued."""
        items = list(self._items)
        self._items.clear()
        return items

    def peek(self) -> List[Notification]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class DeliveryService:
    """Routes dissemination plans into per-user inboxes."""

    def __init__(
        self,
        system: DisseminationSystem,
        inbox_capacity: int = 1_000,
    ) -> None:
        self.system = system
        self.inbox_capacity = inbox_capacity
        self._inboxes: Dict[str, Inbox] = {}
        self.documents_delivered = 0
        self.notifications_sent = 0

    def inbox(self, owner: str) -> Inbox:
        box = self._inboxes.get(owner)
        if box is None:
            box = Inbox(owner, capacity=self.inbox_capacity)
            self._inboxes[owner] = box
        return box

    def deliver(self, plan: DisseminationPlan) -> List[Notification]:
        """Resolve a plan to user notifications (one per owner)."""
        registered = self.system.subscriptions()
        by_owner: Dict[str, Set[str]] = {}
        for filter_id in plan.matched_filter_ids:
            profile = registered.get(filter_id)
            if profile is None:
                continue
            by_owner.setdefault(profile.owner, set()).add(filter_id)
        notifications = []
        for owner in sorted(by_owner):
            notification = Notification(
                doc_id=plan.document.doc_id,
                owner=owner,
                matched_filter_ids=frozenset(by_owner[owner]),
            )
            self.inbox(owner).push(notification)
            notifications.append(notification)
        self.documents_delivered += 1
        self.notifications_sent += len(notifications)
        return notifications

    def publish(self, document: Document) -> List[Notification]:
        """Publish through the underlying system and deliver."""
        return self.deliver(self.system.publish(document))

    def owners(self) -> List[str]:
        return sorted(self._inboxes)
