"""Selection of allocated nodes (Section V).

Two base options, each with a downside the paper calls out:

- **ring** — successors of the home node along the Cassandra ring.
  Spreads copies across racks (good availability under rack failure)
  but moves filters across the cluster, causing cross-rack traffic.
- **rack** — nodes inside the home node's rack.  Cheap intra-rack
  transfers (good throughput) but a whole-rack failure loses every
  copy.

MOVE therefore uses a **hybrid**: one half of the ``n_i`` nodes from
the ring successors and one half from the rack peers.
"""

from __future__ import annotations

from typing import List, Sequence

from ..cluster.ring import ConsistentHashRing
from ..cluster.topology import Topology
from ..errors import AllocationError


class PlacementSelector:
    """Produces ordered candidate-node lists for allocation grids."""

    def __init__(
        self,
        ring: ConsistentHashRing,
        topology: Topology,
        mode: str = "hybrid",
    ) -> None:
        if mode not in ("ring", "rack", "hybrid"):
            raise AllocationError(f"unknown placement mode {mode!r}")
        self.ring = ring
        self.topology = topology
        self.mode = mode

    def candidates(self, home_node: str, count: int) -> List[str]:
        """Up to ``count`` distinct nodes (home excluded), ordered by
        preference.  Short lists are legal — the grid builder shrinks
        ``n`` to what is available."""
        if count < 1:
            return []
        if self.mode == "ring":
            return self._ring_candidates(home_node, count)
        if self.mode == "rack":
            return self._rack_candidates(home_node, count)
        return self._hybrid_candidates(home_node, count)

    def _ring_candidates(self, home_node: str, count: int) -> List[str]:
        return self.ring.successors(home_node, count)

    def _rack_candidates(self, home_node: str, count: int) -> List[str]:
        """Rack peers only — strictly in-rack.

        A short list is intentional: the rack bounds how many nodes the
        pure rack policy can use, which is exactly the trade-off the
        paper's Figure 9(c/d) explores (cheap intra-rack transfers, but
        a whole-rack failure loses every copy).
        """
        peers = self.topology.rack_peers(home_node)
        return peers[:count]

    def _hybrid_candidates(self, home_node: str, count: int) -> List[str]:
        """Half successors, half rack peers, interleaved.

        Interleaving (instead of concatenating halves) keeps both
        flavours present even when the grid builder truncates the list.
        """
        ring_half = self._ring_candidates(home_node, count)
        rack_half = self._rack_candidates(home_node, count)
        merged: List[str] = []
        seen = set()
        for pair in zip(rack_half, ring_half):
            for node in pair:
                if node not in seen:
                    seen.add(node)
                    merged.append(node)
        for node in rack_half + ring_half:
            if node not in seen:
                seen.add(node)
                merged.append(node)
        return merged[:count]
