"""Allocation policies: when to allocate filters (Section V).

Two options the paper discusses:

- **Passive** — allocate only after the document/filter patterns have
  been learned from live traffic.  Downside: while the statistics are
  being learned, the hot home nodes already suffer the hot-spot and
  heavy matching workload, and the filter movement triggered by the
  late allocation lands on top of that load.
- **Proactive** — the paper's choice: filters change rarely (their
  ``p_i`` is known at registration time), and ``q_i`` is bootstrapped
  offline from an existing document corpus, so an approximate
  allocation exists *before* publication starts and is refined once
  live statistics arrive.

Both policies drive the same :class:`~repro.core.move_system.
MoveSystem`; they only schedule *when* ``reallocate`` runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..model import Document
from .move_system import MoveSystem


class AllocationPolicy(ABC):
    """Schedules allocation around a document stream."""

    name: str = "abstract"

    @abstractmethod
    def prepare(
        self, system: MoveSystem, offline_corpus: Sequence[Document]
    ) -> None:
        """Run once after registration, before publication starts."""

    @abstractmethod
    def on_documents_published(
        self, system: MoveSystem, published_count: int
    ) -> bool:
        """Called after each publication; returns True when the policy
        (re)allocated at this point."""


class ProactivePolicy(AllocationPolicy):
    """Allocate before publication from an offline corpus, then refresh
    every ``refresh_every`` documents (the 10-minute renewal expressed
    in document counts for the simulated stream)."""

    name = "proactive"

    def __init__(self, refresh_every: Optional[int] = None) -> None:
        if refresh_every is not None and refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        self.refresh_every = refresh_every
        self.allocations = 0

    def prepare(
        self, system: MoveSystem, offline_corpus: Sequence[Document]
    ) -> None:
        system.seed_frequencies(offline_corpus)
        system.finalize_registration()
        self.allocations += 1

    def on_documents_published(
        self, system: MoveSystem, published_count: int
    ) -> bool:
        if (
            self.refresh_every is not None
            and published_count > 0
            and published_count % self.refresh_every == 0
        ):
            system.reallocate()
            self.allocations += 1
            return True
        return False


class DriftPolicy(AllocationPolicy):
    """Proactive bootstrap plus drift-gated refreshes.

    Like :class:`ProactivePolicy` the allocation exists before
    publication (offline ``q_i`` bootstrap), but the periodic refresh
    consults :meth:`~repro.core.move_system.MoveSystem.estimate_drift`
    through the drift gate: every ``check_every`` documents the policy
    *asks* for a refresh, and the system replans only when the demands
    actually moved by at least ``drift_epsilon`` since the applied
    plan.  ``allocations`` counts replans that ran; ``skipped`` counts
    gate rejections — their sum is the number of checks.
    """

    name = "drift"

    def __init__(
        self, check_every: int = 100, drift_epsilon: float = 0.05
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if not 0.0 < drift_epsilon <= 1.0:
            raise ValueError("drift_epsilon must be in (0, 1]")
        self.check_every = check_every
        self.drift_epsilon = drift_epsilon
        self.allocations = 0
        self.skipped = 0

    def prepare(
        self, system: MoveSystem, offline_corpus: Sequence[Document]
    ) -> None:
        system.seed_frequencies(offline_corpus)
        system.finalize_registration()
        self.allocations += 1

    def on_documents_published(
        self, system: MoveSystem, published_count: int
    ) -> bool:
        if (
            published_count == 0
            or published_count % self.check_every != 0
        ):
            return False
        report = system.reallocate(drift_epsilon=self.drift_epsilon)
        if report.skipped:
            self.skipped += 1
            return False
        self.allocations += 1
        return True


class PassivePolicy(AllocationPolicy):
    """Allocate only after ``learn_documents`` live documents.

    Until then every home node matches locally (IL behaviour) and the
    hot spots are fully exposed — the downside Section V describes.
    """

    name = "passive"

    def __init__(self, learn_documents: int = 100) -> None:
        if learn_documents < 1:
            raise ValueError("learn_documents must be >= 1")
        self.learn_documents = learn_documents
        self.allocations = 0

    def prepare(
        self, system: MoveSystem, offline_corpus: Sequence[Document]
    ) -> None:
        # Passive: no offline bootstrap, no pre-allocation.
        del offline_corpus

    def on_documents_published(
        self, system: MoveSystem, published_count: int
    ) -> bool:
        if published_count == self.learn_documents:
            system.reallocate()
            self.allocations += 1
            return True
        return False


@dataclass
class PolicyRunReport:
    """Outcome of driving one policy over a stream."""

    policy: str
    documents: int
    allocations: int
    #: Posting entries matched on the busiest node during the learning
    #: window (the hot-spot exposure passive allocation suffers).
    warmup_hot_entries: float
    #: Same metric over the post-allocation remainder.
    steady_hot_entries: float


def run_policy(
    policy: AllocationPolicy,
    system: MoveSystem,
    offline_corpus: Sequence[Document],
    documents: Sequence[Document],
    warmup_fraction: float = 0.25,
) -> PolicyRunReport:
    """Drive ``system`` through ``documents`` under ``policy`` and
    report hot-spot exposure before and after allocation."""
    if not 0.0 < warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in (0, 1)")
    policy.prepare(system, offline_corpus)
    warmup_cutoff = max(1, int(len(documents) * warmup_fraction))

    def hottest(load) -> float:
        values = load.as_dict().values()
        return max(values) if values else 0.0

    entries_load = system.metrics.load("posting_entries")
    warmup_hot = 0.0
    for index, document in enumerate(documents, start=1):
        system.publish(document)
        policy.on_documents_published(system, index)
        if index == warmup_cutoff:
            warmup_hot = hottest(entries_load)
    steady_hot = hottest(entries_load) - warmup_hot
    return PolicyRunReport(
        policy=policy.name,
        documents=len(documents),
        allocations=getattr(policy, "allocations", 0),
        warmup_hot_entries=warmup_hot,
        steady_hot_entries=steady_hot,
    )
