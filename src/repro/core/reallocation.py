"""Incremental reallocation: plan diffing and movement accounting.

MOVE's coordinator recomputes the allocation every ~10 minutes
(Section VI-A), but the paper stresses that real ``p_i``/``q_i`` drift
slowly, so successive plans are nearly identical and the induced
filter *movement* — not the initial placement — is the dominant
steady-state cost.  This module gives the refresh loop the vocabulary
to exploit that:

- :func:`diff_plans` compares the freshly computed
  :class:`~repro.core.coordinator.AllocationPlan` against the one
  currently applied, per key (home node, or term in the per-term
  ablation mode), and classifies each key:

  - ``unchanged`` — same grid, no filter churn since the last apply:
    the allocated subset indexes are kept untouched;
  - ``delta`` — same grid but filters registered/unregistered since
    the last apply: the write-through maintenance already applied the
    per-subset adds/removes, so the indexes are kept and only the
    movement accounting is folded in;
  - ``resized`` — the grid changed shape or nodes: only this key is
    rebuilt from the home index;
  - ``new`` — the key gained a table it did not have;
  - ``dropped`` — the key lost its table: its subset indexes are
    discarded.

- :class:`ReplicaMove` / :class:`ReallocationReport` record what one
  refresh actually did — keys kept vs rebuilt, explicit
  ``(filter_id, from_node, to_node)`` replica moves, replicas dropped,
  the drift measured, and the wall-clock seconds spent — feeding the
  ``reallocate`` span tags, the ``realloc_*`` metric family, and
  ``scripts/trace_report.py``.

The apply itself lives in :meth:`repro.core.move_system.MoveSystem.
_apply_plan`, which owns the index state; everything here is pure data
so it can be unit-tested without a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coordinator import AllocationPlan

#: Diff classes, in rebuild-cost order (cheapest first).
KEY_UNCHANGED = "unchanged"
KEY_DELTA = "delta"
KEY_RESIZED = "resized"
KEY_NEW = "new"
KEY_DROPPED = "dropped"

#: Every class a key diff may carry, for validation and reporting.
DIFF_CLASSES = (
    KEY_UNCHANGED,
    KEY_DELTA,
    KEY_RESIZED,
    KEY_NEW,
    KEY_DROPPED,
)


@dataclass(frozen=True)
class KeyDiff:
    """Classification of one allocation key across two plans."""

    key: str
    status: str

    def __post_init__(self) -> None:
        if self.status not in DIFF_CLASSES:
            raise ValueError(f"unknown diff class {self.status!r}")


@dataclass
class PlanDiff:
    """Per-key classification of a new plan against the applied one."""

    diffs: Dict[str, KeyDiff] = field(default_factory=dict)

    def keys_with_status(self, status: str) -> List[str]:
        return [
            diff.key
            for diff in self.diffs.values()
            if diff.status == status
        ]

    def count(self, status: str) -> int:
        return sum(
            1 for diff in self.diffs.values() if diff.status == status
        )

    @property
    def keys_kept(self) -> int:
        """Keys whose subset indexes survive untouched (incl. delta)."""
        return self.count(KEY_UNCHANGED) + self.count(KEY_DELTA)

    @property
    def keys_rebuilt(self) -> int:
        """Keys whose subset indexes are rebuilt from the home index."""
        return self.count(KEY_RESIZED) + self.count(KEY_NEW)

    def summary(self) -> Dict[str, int]:
        """Diff-class → key-count map (report/metrics payload)."""
        return {status: self.count(status) for status in DIFF_CLASSES}


def diff_plans(
    old_plan: Optional["AllocationPlan"],
    new_plan: "AllocationPlan",
    churned_keys: Set[str],
) -> PlanDiff:
    """Classify every key of ``new_plan`` against ``old_plan``.

    ``churned_keys`` are the keys whose registered-filter set changed
    since the old plan was applied (tracked by the per-key epochs on
    :class:`~repro.core.move_system.MoveSystem`); they separate
    ``unchanged`` from ``delta`` for keys whose grid did not move.
    With no old plan every key is ``new`` (the initial allocation).
    """
    diff = PlanDiff()
    old_tables = old_plan.tables if old_plan is not None else {}
    for key, table in new_plan.tables.items():
        old_table = old_tables.get(key)
        if old_table is None:
            status = KEY_NEW
        elif not table.same_routing(old_table):
            status = KEY_RESIZED
        elif key in churned_keys:
            status = KEY_DELTA
        else:
            status = KEY_UNCHANGED
        diff.diffs[key] = KeyDiff(key=key, status=status)
    for key in old_tables:
        if key not in new_plan.tables:
            diff.diffs[key] = KeyDiff(key=key, status=KEY_DROPPED)
    return diff


@dataclass(frozen=True)
class ReplicaMove:
    """One filter copy transferred to one node by a refresh.

    ``from_node`` is the origin home node (it retains the full filter
    set per Section V, so it is always the sender); ``to_node`` is the
    allocated holder that gained the copy.
    """

    filter_id: str
    from_node: str
    to_node: str


@dataclass
class ReallocationReport:
    """What one ``reallocate()`` call did (or why it did nothing).

    The refresh loop's observable outcome: exposed as
    ``MoveSystem.last_reallocation``, tagged onto the ``reallocate``
    span, and accumulated into the ``realloc_*`` counters.
    """

    #: True when the drift gate skipped the replan entirely.
    skipped: bool = False
    #: The drift signal measured before planning (0.0 when disabled).
    drift: float = 0.0
    #: Keys classified per diff class (empty when skipped).
    keys_unchanged: int = 0
    keys_delta: int = 0
    keys_resized: int = 0
    keys_new: int = 0
    keys_dropped: int = 0
    #: Explicit replica moves this apply performed (rebuilt keys only;
    #: delta keys moved their replicas at registration time through
    #: the write-through path and are accounted in
    #: :attr:`delta_replicas`).  The from-scratch apply reports only
    #: the :attr:`replicas_moved` count and leaves this list empty —
    #: materializing one object per replica would tax the baseline
    #: path the incremental engine is benchmarked against.
    moves: List[ReplicaMove] = field(default_factory=list)
    #: Filter copies transferred by this apply.  Equals ``len(moves)``
    #: on the incremental path; the from-scratch apply sets the count
    #: without the per-move detail.
    replicas_moved: int = 0
    #: Filter copies added to live grids by write-through maintenance
    #: since the previous apply (the delta keys' movement).
    delta_replicas: int = 0
    #: Filter copies discarded (dropped keys + shrunk grids).
    replicas_dropped: int = 0
    #: Wall-clock seconds the refresh spent (planning + apply).
    seconds: float = 0.0

    @property
    def keys_kept(self) -> int:
        return self.keys_unchanged + self.keys_delta

    @property
    def keys_rebuilt(self) -> int:
        return self.keys_resized + self.keys_new

    def movement_triples(self) -> List[Tuple[str, str, int]]:
        """Moves aggregated to ``(from_node, to_node, count)`` triples.

        The same shape :meth:`repro.core.move_system.MoveSystem.
        allocation_movement` reports, so the throughput harness can
        charge a refresh's *incremental* transfer work instead of the
        full placement.
        """
        counts: Dict[Tuple[str, str], int] = {}
        for move in self.moves:
            pair = (move.from_node, move.to_node)
            counts[pair] = counts.get(pair, 0) + 1
        return [
            (from_node, to_node, count)
            for (from_node, to_node), count in sorted(counts.items())
        ]

    def as_tags(self) -> Dict[str, object]:
        """Span-tag payload for the ``reallocate`` span."""
        return {
            "skipped": self.skipped,
            "drift": self.drift,
            "keys_kept": self.keys_kept,
            "keys_rebuilt": self.keys_rebuilt,
            "keys_delta": self.keys_delta,
            "keys_dropped": self.keys_dropped,
            "replicas_moved": self.replicas_moved,
            "delta_replicas": self.delta_replicas,
            "replicas_dropped": self.replicas_dropped,
            "seconds": self.seconds,
        }
