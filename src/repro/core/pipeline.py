"""The staged dissemination pipeline shared by all four systems.

The paper's central claim (Section III) is that MOVE's allocation
machinery is *semantics- and scheme-agnostic*: routing, matching, and
load accounting follow the same skeleton whether filters live on term
home nodes (IL), on allocated grids (MOVE), on hashed partitions (RS),
or on one machine (Centralized).  This module is that skeleton, run
per batch of documents:

1. **term pruning** — Bloom-filter membership drops terms no filter
   uses (:func:`group_terms_by_home` for the home-node schemes);
2. **route resolution** — which nodes must see the document: ring
   home-node lookup, forwarding-table partition draw, flooded
   partitions, or the one central matcher
   (:meth:`~repro.baselines.base.DisseminationSystem._resolve_routes`);
3. **execution** — per-node posting retrieval and matching, with all
   per-destination work folded into a :class:`WorkAccumulator`
   (:meth:`~repro.baselines.base.DisseminationSystem._execute`);
4. **accounting** — :class:`~repro.baselines.base.NodeTask`
   construction and the Figure 9 load metrics, identical for every
   scheme (:meth:`DisseminationPipeline._disseminate`).

Batch-level memoization lives here, once: :class:`BatchCaches` holds
the per-term route decisions, posting-list retrievals, forwarding-row
groupings, and home-subset annotations that are pure functions of
registration + allocation state, which the batch contract freezes for
the batch's duration.  Systems supply only their route-resolution and
matching callbacks; ``publish()`` is literally
``publish_batch([document])[0]`` (a singleton batch with fresh caches),
so batching changes *when* work is shared, never *what* is computed —
plans and RNG consumption are bit-identical either way.

**The batch contract is enforced, not assumed.**  Every mutation of
registration (``register`` / ``register_batch`` / ``unregister``),
allocation (``MoveSystem`` plan applies), or cluster membership
(node join/crash/recovery) bumps an epoch counter; the pipeline
snapshots it into :attr:`BatchCaches.epoch` when the batch opens and
re-checks it before each document.  A mid-batch mutation — reachable
from the asyncio service runtime (:mod:`repro.serve`), or from a
stage-hook override calling back into the system — raises
:class:`~repro.errors.BatchContractError` instead of silently serving
stale memos.

The pipeline is clock-agnostic: it stamps its traced spans off a
:class:`~repro.sim.engine.Clock` (``perf_counter`` by default), so the
same engine serves the discrete-event harness and the real-time
asyncio runtime unchanged — only *who calls* ``publish_batch`` and
*which clock* it carries differ between the two drivers.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from ..baselines.base import DisseminationPlan, NodeTask
from ..errors import BatchContractError
from ..model import Document, Filter
from ..sim.engine import Clock, PERF_CLOCK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..baselines.base import DisseminationSystem
    from ..matching.inverted_index import InvertedIndex

#: Sentinel distinguishing "never routed" from "pruned by the Bloom
#: filter" in the per-batch route memo.
_UNROUTED = object()

#: Memoized posting retrieval: (filters, their filter ids, posting
#: lists touched, posting entries scanned).  ``filters`` is any
#: sequence/iterable of the posting's filters — boolean paths consume
#: only the id tuple, and the slab-backed index supplies a lazy
#: sequence that rehydrates ``Filter`` objects on iteration.
Retrieval = Tuple[Sequence[Filter], Tuple[str, ...], int, int]


class WorkAccumulator:
    """Per-destination accumulated matching work for one document.

    Replaces the ad-hoc ``work: Dict[str, List]`` triples: a node
    serving several routes (e.g. subsets of different home nodes)
    still receives the document payload once, accumulating its posting
    costs and keeping the shortest payload route.  Task order is the
    first-routed order, matching the per-destination iteration of the
    pre-pipeline implementations bit for bit.
    """

    __slots__ = ("_work",)

    def __init__(self) -> None:
        #: node -> [posting_lists, posting_entries, path]
        self._work: Dict[str, List] = {}

    def __len__(self) -> int:
        return len(self._work)

    def add(
        self,
        node_id: str,
        posting_lists: int,
        posting_entries: int,
        path: Tuple[str, ...],
    ) -> None:
        """Fold one route's work into the node's accumulated task."""
        entry = self._work.get(node_id)
        if entry is None:
            self._work[node_id] = [posting_lists, posting_entries, path]
        else:
            entry[0] += posting_lists
            entry[1] += posting_entries
            if len(path) < len(entry[2]):
                entry[2] = path  # keep the shortest payload route
        return None

    def tasks(self) -> List[NodeTask]:
        """Materialize the accumulated work as :class:`NodeTask`s."""
        return [
            NodeTask(
                node_id=node_id,
                path=tuple(path),
                posting_lists=lists,
                posting_entries=entries,
            )
            for node_id, (lists, entries, path) in self._work.items()
        ]


class TracedWorkAccumulator(WorkAccumulator):
    """A :class:`WorkAccumulator` emitting per-node ``execute_node`` spans.

    Execution is single-threaded, so the matching work behind one route
    fold happens between the previous :meth:`add` call (or the stage
    start) and the fold itself; each sub-span covers exactly that
    interval and is tagged with the node and its posting costs.  The
    per-document sub-span set therefore reconciles with the plan: its
    distinct nodes are the task nodes, and its posting costs sum to the
    task totals (the tracing acceptance invariant).
    """

    __slots__ = ("_tracer", "_clock", "_mark")

    def __init__(self, tracer, clock: Clock = PERF_CLOCK) -> None:
        super().__init__()
        self._tracer = tracer
        self._clock = clock
        self._mark = clock.now

    def add(
        self,
        node_id: str,
        posting_lists: int,
        posting_entries: int,
        path: Tuple[str, ...],
    ) -> None:
        WorkAccumulator.add(
            self, node_id, posting_lists, posting_entries, path
        )
        now = self._clock.now
        self._tracer.emit(
            "execute_node",
            self._mark,
            now,
            node=node_id,
            posting_lists=posting_lists,
            posting_entries=posting_entries,
        )
        self._mark = now


class BatchCaches:
    """Per-batch memos for the staged pipeline.

    Everything here is a pure function of registration, allocation,
    and cluster-membership state, which the batch contract freezes for
    the batch's duration.  Term-keyed maps use the dense shared-
    interner term id; composite keys are scheme-chosen tuples (ints
    and tuples never collide, so one map serves every scheme).

    **Lifetime.**  A cache set lives for exactly one ``publish_batch``
    call and must never outlive it; the pipeline constructs a fresh
    instance per batch and discards it afterwards.  :attr:`epoch`
    pins the system's batch epoch (registration + allocation +
    membership counters, see
    :meth:`~repro.baselines.base.DisseminationSystem._batch_epoch`)
    at construction; the pipeline compares it before every document
    and raises :class:`~repro.errors.BatchContractError` on a
    mid-batch mutation.  ``epoch=None`` (direct construction in tests
    or tooling) disables the check.
    """

    __slots__ = (
        "epoch",
        "route",
        "retrieval",
        "routing",
        "home_subsets",
        "doc_scores",
    )

    def __init__(self, epoch: Optional[int] = None) -> None:
        #: The owning system's batch epoch at batch open (``None``
        #: disables mid-batch mutation checking).
        self.epoch = epoch
        #: term id -> destination node, or None when pruned (Bloom).
        self.route: Dict[int, Optional[str]] = {}
        #: retrieval key (term id, or a scheme tuple such as
        #: ``(node, origin, term id)``) -> memoized posting retrieval.
        self.retrieval: Dict[Hashable, Retrieval] = {}
        #: routing state memo: MOVE keys it by origin (forwarding-row
        #: groupings per partition), RS by partition index (live
        #: replica lists).
        self.routing: Dict[Hashable, object] = {}
        #: (origin key, term id) -> [(subset, filter id, filter), ...]
        #: home-index postings annotated with each filter's grid
        #: subset (MOVE's home-fallback and lost-subset paths).
        self.home_subsets: Dict[
            Tuple[str, int], List[Tuple[int, str, Filter]]
        ] = {}
        #: id(document) -> :class:`repro.matching.kernel.DocumentScores`
        #: (tf–idf weights, norm, suffix masses, per-filter score
        #: memo, and — on the CSR backend — the lazily attached numpy
        #: twin of those vectors), shared by every node/partition
        #: visit of the batch.
        #: Entries hold a strong reference to their document, so the
        #: id key cannot be recycled while the cache lives; epochs on
        #: the entry (IDF ``documents_seen`` + kernel registration)
        #: invalidate it if statistics or registration change.
        self.doc_scores: Dict[int, object] = {}

    def retrieve(
        self, key: Hashable, index: "InvertedIndex", term: str
    ) -> Retrieval:
        """Perform and memoize one posting-list retrieval.

        Callers check ``caches.retrieval.get(key)`` first (keeping the
        hit path a single dict probe) and call this only on a miss.
        The index builds the entry (``InvertedIndex.retrieve_for_term``)
        so the slab-backed index can hand back filter ids straight from
        its columns with a lazy filter sequence in slot position —
        boolean paths never touch it, threshold paths rehydrate through
        the slab's bounded cache.
        """
        entry = index.retrieve_for_term(term)
        self.retrieval[key] = entry
        return entry


class ExecutionContext:
    """One document's pass through the execution stage.

    Carries the mutable dissemination state the scheme callbacks fill
    in: the matched/unreachable filter-id sets, the per-destination
    :class:`WorkAccumulator`, the control-plane message count, and the
    batch caches.

    **Lifetime.**  A context lives for exactly one document within one
    batch — it is constructed by the pipeline's ingest stage and dies
    with the document's plan.  It borrows the batch's
    :class:`BatchCaches` (it does not own them) and therefore inherits
    the batch contract: the registration/allocation/membership state
    the caches memoize must not change while the context is in flight.
    Stage hooks must not retain a context (or its ``caches``) past the
    ``_execute`` call that received it.
    """

    __slots__ = (
        "document",
        "ingest",
        "caches",
        "matched",
        "unreachable",
        "work",
        "routing_messages",
    )

    def __init__(
        self, document: Document, ingest: str, caches: BatchCaches
    ) -> None:
        self.document = document
        self.ingest = ingest
        self.caches = caches
        self.matched: Set[str] = set()
        self.unreachable: Set[str] = set()
        self.work = WorkAccumulator()
        self.routing_messages = 0


def group_terms_by_home(
    document: Document,
    caches: BatchCaches,
    bloom,
    home_of: Callable[[str], str],
) -> Dict[str, List[int]]:
    """Stages 1–2 for the home-node schemes (IL and MOVE).

    Bloom-prunes the document's terms and groups the survivors (as
    dense term ids) by their ring home node, memoizing the per-term
    prune + route decision across the batch.
    """
    route = caches.route
    grouped: Dict[str, List[int]] = {}
    for term, term_id in zip(document.terms, document.term_ids):
        home = route.get(term_id, _UNROUTED)
        if home is _UNROUTED:
            if bloom is not None and term not in bloom:
                home = None
            else:
                home = home_of(term)
            route[term_id] = home
        if home is None:
            continue
        bucket = grouped.get(home)
        if bucket is None:
            grouped[home] = bucket = []
        bucket.append(term_id)
    return grouped


class DisseminationPipeline:
    """The staged engine driving one system's dissemination.

    Owns the stage sequencing and the scheme-independent stages
    (per-batch cache lifetime, batch-contract enforcement, task
    materialization, Figure 9 load accounting); delegates route
    resolution and matching to the system's stage hooks.  The
    per-document hook order — observe, ingest draw, route, execute —
    fixes the RNG consumption order for every scheme.

    ``clock`` is the timebase for the traced path's per-node
    ``execute_node`` marks (``perf_counter`` by default).  Drivers
    that install their own clock — the asyncio service runtime hands
    in its event-loop clock — should give the tracer the same one so
    all span timestamps share a timebase.
    """

    __slots__ = ("system", "clock")

    def __init__(
        self,
        system: "DisseminationSystem",
        clock: Optional[Clock] = None,
    ) -> None:
        self.system = system
        self.clock = clock if clock is not None else PERF_CLOCK

    def publish_batch(
        self, documents: Sequence[Document]
    ) -> List[DisseminationPlan]:
        """Disseminate ``documents`` in order, sharing one cache set.

        When the system's tracer is enabled, dissemination runs the
        traced twin (:meth:`_publish_batch_traced`) instead; the two
        paths compute the same plans and consume RNG identically (the
        tracer only reads the clock), so tracing is observationally
        inert.  The ``enabled`` check below (plus one delegating call
        per batch) is the untraced path's entire overhead.
        """
        tracer = getattr(self.system, "tracer", None)
        if tracer is not None and tracer.enabled:
            return self._publish_batch_traced(documents, tracer)
        if getattr(self.system, "has_predicates", False):
            return self._publish_batch_predicated(documents)
        return self._publish_batch_untraced(documents)

    def _publish_batch_untraced(
        self, documents: Sequence[Document]
    ) -> List[DisseminationPlan]:
        """The raw engine loop: ``_disseminate`` per document.

        Kept as a separate method so the disabled-overhead bench can
        time the identical code object with and without the public
        dispatcher above — their ratio isolates exactly what tracing
        costs when disabled.
        """
        system = self.system
        caches = BatchCaches(epoch=system._batch_epoch())
        disseminate = self._disseminate
        # Expose the batch caches to the scoring kernel (via
        # `_apply_semantics`, whose two-argument signature is public
        # API for subclassers and cannot carry them).
        system._active_caches = caches
        try:
            return [
                disseminate(document, caches) for document in documents
            ]
        finally:
            system._active_caches = None

    def _disseminate(
        self, document: Document, caches: BatchCaches
    ) -> DisseminationPlan:
        system = self.system
        if caches.epoch is not None and (
            caches.epoch != system._batch_epoch()
        ):
            raise BatchContractError(
                f"{system.name}: registration, allocation, or cluster "
                "membership mutated inside a publish batch (epoch "
                f"{caches.epoch} -> {system._batch_epoch()}); mutations "
                "must be serialized between batches — the per-batch "
                "memos would otherwise be stale"
            )
        system._observe(document)
        ctx = ExecutionContext(document, system._choose_ingest(), caches)
        routes = system._resolve_routes(document, caches)
        system._execute(ctx, routes)
        # -- accounting (stage 4): identical for every scheme ---------
        tasks = ctx.work.tasks()
        unreachable = ctx.unreachable
        unreachable.difference_update(ctx.matched)
        system._account_tasks(tasks)
        system.metrics.counter("documents_published").add()
        return DisseminationPlan(
            document=document,
            matched_filter_ids=ctx.matched,
            tasks=tasks,
            unreachable_filter_ids=unreachable,
            routing_messages=ctx.routing_messages,
        )

    # -- predicated twin -----------------------------------------------------

    def _publish_batch_predicated(
        self, documents: Sequence[Document]
    ) -> List[DisseminationPlan]:
        """The engine loop with the predicate delivery gate.

        Selected once per batch (the dispatcher's ``has_predicates``
        check), so systems holding only flat filters never pay for it:
        :meth:`_publish_batch_untraced` stays byte-identical to the
        pre-predicate pipeline.  Everything up to the execute stage —
        cache lifetime, hook order, RNG consumption — is identical;
        the gate only *removes* ids from the matched set afterwards
        (it consumes no RNG), so flat subscriptions disseminate
        bit-identically on either loop.
        """
        system = self.system
        caches = BatchCaches(epoch=system._batch_epoch())
        disseminate = self._disseminate_predicated
        system._active_caches = caches
        evaluated = 0
        rejected = 0
        try:
            plans: List[DisseminationPlan] = []
            for document in documents:
                plan, doc_evaluated, doc_rejected = disseminate(
                    document, caches
                )
                evaluated += doc_evaluated
                rejected += doc_rejected
                plans.append(plan)
            return plans
        finally:
            system._active_caches = None
            metrics = system.metrics
            metrics.counter("predicate_evaluated").add(float(evaluated))
            metrics.counter("predicate_rejected").add(float(rejected))

    def _disseminate_predicated(
        self, document: Document, caches: BatchCaches
    ) -> Tuple[DisseminationPlan, int, int]:
        """:meth:`_disseminate` plus the delivery-boundary gate.

        The gate runs between execution and accounting — in
        particular *before* unreachable ids are reconciled against
        the matched set, so an id the predicate rejects at one node
        but a failure lost at another stays counted as unreachable
        (the same convention the threshold semantics established).
        """
        system = self.system
        if caches.epoch is not None and (
            caches.epoch != system._batch_epoch()
        ):
            raise BatchContractError(
                f"{system.name}: registration, allocation, or cluster "
                "membership mutated inside a publish batch (epoch "
                f"{caches.epoch} -> {system._batch_epoch()}); mutations "
                "must be serialized between batches — the per-batch "
                "memos would otherwise be stale"
            )
        system._observe(document)
        ctx = ExecutionContext(document, system._choose_ingest(), caches)
        routes = system._resolve_routes(document, caches)
        system._execute(ctx, routes)
        evaluated, rejected = system._apply_predicate_gate(
            document, ctx.matched
        )
        tasks = ctx.work.tasks()
        unreachable = ctx.unreachable
        unreachable.difference_update(ctx.matched)
        system._account_tasks(tasks)
        system.metrics.counter("documents_published").add()
        plan = DisseminationPlan(
            document=document,
            matched_filter_ids=ctx.matched,
            tasks=tasks,
            unreachable_filter_ids=unreachable,
            routing_messages=ctx.routing_messages,
        )
        return plan, evaluated, rejected

    # -- traced twin ---------------------------------------------------------

    def _publish_batch_traced(
        self, documents: Sequence[Document], tracer
    ) -> List[DisseminationPlan]:
        """The traced mirror of :meth:`publish_batch`.

        One root ``publish_batch`` span per batch; everything else —
        cache lifetime, hook order, RNG consumption, accounting — is
        identical to the untraced path, so plans are bit-for-bit the
        same.
        """
        system = self.system
        caches = BatchCaches(epoch=system._batch_epoch())
        system._active_caches = caches
        try:
            with tracer.span(
                "publish_batch",
                system=system.name,
                batch_size=len(documents),
            ):
                return [
                    self._disseminate_traced(document, caches, tracer)
                    for document in documents
                ]
        finally:
            system._active_caches = None

    def _disseminate_traced(
        self, document: Document, caches: BatchCaches, tracer
    ) -> DisseminationPlan:
        """One document under the span model of :mod:`repro.obs.tracing`.

        A ``publish`` span wraps the document; each pipeline stage gets
        one child span (``observe`` / ``ingest`` / ``route`` /
        ``execute`` / ``account``); the execution stage's work
        accumulator is swapped for the traced variant, whose folds emit
        the per-node ``execute_node`` sub-spans.  The ``publish`` span
        is annotated with the plan's fanout and candidate/match counts
        once they are known.
        """
        system = self.system
        if caches.epoch is not None and (
            caches.epoch != system._batch_epoch()
        ):
            raise BatchContractError(
                f"{system.name}: registration, allocation, or cluster "
                "membership mutated inside a publish batch (epoch "
                f"{caches.epoch} -> {system._batch_epoch()}); mutations "
                "must be serialized between batches — the per-batch "
                "memos would otherwise be stale"
            )
        with tracer.span(
            "publish", system=system.name, document_id=document.doc_id
        ) as doc_span:
            with tracer.span("observe"):
                system._observe(document)
            with tracer.span("ingest"):
                ctx = ExecutionContext(
                    document, system._choose_ingest(), caches
                )
            with tracer.span("route"):
                routes = system._resolve_routes(document, caches)
            with tracer.span(
                "execute", backend=system.matching_backend
            ) as exec_span:
                ctx.work = TracedWorkAccumulator(tracer, self.clock)
                system._execute(ctx, routes)
                if getattr(system, "has_predicates", False):
                    evaluated, rejected = system._apply_predicate_gate(
                        document, ctx.matched
                    )
                    exec_span.annotate(
                        predicate_evaluated=evaluated,
                        predicate_rejected=rejected,
                    )
                    metrics = system.metrics
                    metrics.counter("predicate_evaluated").add(
                        float(evaluated)
                    )
                    metrics.counter("predicate_rejected").add(
                        float(rejected)
                    )
            with tracer.span("account"):
                tasks = ctx.work.tasks()
                unreachable = ctx.unreachable
                unreachable.difference_update(ctx.matched)
                system._account_tasks(tasks)
                system.metrics.counter("documents_published").add()
                plan = DisseminationPlan(
                    document=document,
                    matched_filter_ids=ctx.matched,
                    tasks=tasks,
                    unreachable_filter_ids=unreachable,
                    routing_messages=ctx.routing_messages,
                )
            doc_span.annotate(
                fanout=plan.fanout,
                matched=len(ctx.matched),
                candidate_entries=plan.total_posting_entries,
                unreachable=len(unreachable),
            )
        return plan
