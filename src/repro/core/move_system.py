"""The MOVE dissemination system (Sections IV–V).

MOVE is the IL baseline *plus* adaptive filter allocation:

1. **Registration** is identical to IL — a filter is stored on the home
   node of each of its terms, indexed under that term only (the
   distributed inverted list).
2. **Allocation** (``finalize_registration`` / ``reallocate``): the
   coordinator aggregates per-node statistics, computes ``n_i`` by the
   configured sqrt rule under the ``N * C`` storage budget, picks
   allocated nodes (hybrid ring/rack placement), and materializes
   grids: home-node filters are separated into subsets and replicated
   across partitions; each allocated node receives its subset's filters
   indexed under the origin home node's terms.
3. **Dissemination**: a document is routed (bloom-pruned) to the home
   nodes of its terms; a home node *with* a forwarding table picks a
   random partition and forwards the document in parallel to all nodes
   of that partition, which match against their (small) subsets; a home
   node *without* a table matches locally exactly as IL does.

Failures: subsets fall back to live copies in other partitions, then to
the home node itself (which retains the full filter set per Section V);
filters with no live holder are recorded as unreachable.
"""

from __future__ import annotations

import random
import time
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from ..cluster.cluster import Cluster
from ..config import SystemConfig
from ..matching.bloom import BloomFilter
from ..matching.inverted_index import InvertedIndex
from ..model import Document, Filter
from ..stats.term_stats import TermStatistics
from .coordinator import AllocationPlan, Coordinator
from .reallocation import (
    KEY_DELTA,
    KEY_DROPPED,
    KEY_NEW,
    KEY_RESIZED,
    KEY_UNCHANGED,
    ReallocationReport,
    ReplicaMove,
    diff_plans,
)
from .pipeline import (
    BatchCaches,
    ExecutionContext,
    Retrieval,
    group_terms_by_home,
)
from .placement import PlacementSelector
from ..baselines.base import DisseminationSystem
from ..text.interning import DEFAULT_INTERNER


class MoveSystem(DisseminationSystem):
    """The paper's proposed scheme."""

    name = "Move"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SystemConfig] = None,
        threshold: Optional[float] = None,
    ) -> None:
        super().__init__(config, threshold=threshold)
        self.cluster = cluster
        #: Term popularity/frequency trackers (formerly ``self.stats``;
        #: renamed so ``stats()`` could become the uniform snapshot
        #: accessor shared by all four systems).
        self.term_stats = TermStatistics()
        #: Home-node indexes (the distributed inverted list), as in IL.
        self._home_indexes: Dict[str, InvertedIndex] = {
            node_id: self._make_index() for node_id in cluster.node_ids()
        }
        #: Allocated-subset indexes: receiving node -> origin home node
        #: -> index of the subset filters (indexed under origin terms).
        self._allocated_indexes: Dict[str, Dict[str, InvertedIndex]] = (
            defaultdict(dict)
        )
        self._bloom = (
            BloomFilter(
                self.config.expected_filter_terms,
                self.config.bloom_fp_rate,
            )
            if self.config.use_bloom_filter
            else None
        )
        placement = PlacementSelector(
            cluster.ring,
            cluster.topology,
            mode=self.config.allocation.placement,
        )
        self.coordinator = Coordinator(
            placement,
            config=self.config.allocation,
            cost_model=self.config.cost_model,
            seed=(self.config.seed or 0) + 0x40,
        )
        self.plan: Optional[AllocationPlan] = None
        self._rng = random.Random((self.config.seed or 0) + 0x41)
        #: Per-key registration epochs, bumped whenever a filter is
        #: registered or unregistered under the key (a home-node id,
        #: or a term in the per-term ablation mode).
        #: ``_applied_epochs`` snapshots them at every plan apply; a
        #: mismatch marks the key as churned (*delta*) for the plan
        #: differ.
        self._key_epochs: Dict[str, int] = {}
        self._applied_epochs: Dict[str, int] = {}
        #: Replica copies the write-through maintenance added/removed
        #: per key since the last apply — the delta keys' movement
        #: accounting (the physical copies already happened at
        #: registration/unregistration time).
        self._writethrough_adds: Dict[str, int] = {}
        self._writethrough_drops: Dict[str, int] = {}
        #: Filters registered/unregistered since the last apply, for
        #: the churn component of :meth:`estimate_drift`.
        self._filter_churn_since_apply = 0
        #: Report of the most recent :meth:`reallocate` call.
        self.last_reallocation: Optional[ReallocationReport] = None

    # -- registration (identical to IL) ---------------------------------

    def home_of(self, term: str) -> str:
        return self.cluster.ring.home_node(term)

    def _register(self, profile: Filter) -> None:
        self.term_stats.register_filter(profile)
        self._filter_churn_since_apply += 1
        storage_load = self.metrics.load("storage_replicas")
        aggregate = self.config.allocation.aggregate_per_node
        key_epochs = self._key_epochs
        for term in profile.terms:
            node_id = self.home_of(term)
            key = node_id if aggregate else term
            key_epochs[key] = key_epochs.get(key, 0) + 1
            self._store_filter(node_id, profile)
            self._home_indexes[node_id].add_filter(
                profile, indexed_terms=[term]
            )
            storage_load.add(node_id, 1.0)
            if self._bloom is not None:
                self._bloom.add(term)
            self._write_through_allocation(profile, node_id, term)

    def _register_batch(self, profiles) -> None:
        """Bulk registration: identical placement to the per-filter
        loop (same store writes, stats, bloom and load updates, in the
        same order), with each home index loaded through
        ``add_filters`` — one sort per posting list instead of one
        insert per filter replica."""
        storage_load = self.metrics.load("storage_replicas")
        bloom = self._bloom
        aggregate = self.config.allocation.aggregate_per_node
        key_epochs = self._key_epochs
        buffers: Dict[str, List[Tuple[Filter, List[str]]]] = {}
        for profile in profiles:
            self.term_stats.register_filter(profile)
            self._filter_churn_since_apply += 1
            for term in profile.terms:
                node_id = self.home_of(term)
                key = node_id if aggregate else term
                key_epochs[key] = key_epochs.get(key, 0) + 1
                self._store_filter(node_id, profile)
                buffers.setdefault(node_id, []).append(
                    (profile, [term])
                )
                storage_load.add(node_id, 1.0)
                if bloom is not None:
                    bloom.add(term)
                self._write_through_allocation(profile, node_id, term)
        for node_id, buffered in buffers.items():
            self._home_indexes[node_id].add_filters(buffered)

    def _write_through_allocation(
        self, profile: Filter, home_id: str, term: str
    ) -> None:
        """Keep live grids complete for filters registered after an
        allocation: the home node writes the new filter to every holder
        of its subset, so documents routed to the grid (instead of the
        home) still find it before the next reallocation."""
        if self.plan is None:
            return
        origin_key = (
            home_id
            if self.config.allocation.aggregate_per_node
            else term
        )
        table = self.plan.tables.get(origin_key)
        if table is None:
            return
        subset = table.grid.subset_of(profile.filter_id)
        holders = table.grid.subset_holders()[subset]
        self._writethrough_adds[origin_key] = (
            self._writethrough_adds.get(origin_key, 0) + len(holders)
        )
        for holder in holders:
            per_origin = self._allocated_indexes[holder]
            index = per_origin.get(origin_key)
            if index is None:
                index = self._make_index()
                per_origin[origin_key] = index
            index.add_filter(profile, indexed_terms=[term])

    def _unregister(self, profile: Filter) -> None:
        """Remove the filter from home indexes and live grid copies."""
        self.term_stats.popularity.unregister(profile)
        self._filter_churn_since_apply += 1
        aggregate = self.config.allocation.aggregate_per_node
        key_epochs = self._key_epochs
        for term in profile.terms:
            home_id = self.home_of(term)
            origin_key = home_id if aggregate else term
            key_epochs[origin_key] = key_epochs.get(origin_key, 0) + 1
            index = self._home_indexes[home_id]
            if profile.filter_id in index:
                index.remove_filter(profile.filter_id)
            self._unstore_filter(home_id, profile.filter_id)
            if self.plan is None:
                continue
            table = self.plan.tables.get(origin_key)
            if table is None:
                continue
            subset = table.grid.subset_of(profile.filter_id)
            for holder in table.grid.subset_holders()[subset]:
                allocated = self._allocated_indexes[holder].get(
                    origin_key
                )
                if allocated is not None and allocated.remove_filter(
                    profile.filter_id
                ):
                    self._writethrough_drops[origin_key] = (
                        self._writethrough_drops.get(origin_key, 0) + 1
                    )

    # -- statistics & allocation ------------------------------------------

    def seed_frequencies(self, corpus) -> None:
        """Bootstrap ``q_i`` from an offline corpus (proactive policy)."""
        self.term_stats.frequency.seed_from_corpus(corpus)

    def observe_document(self, document: Document) -> None:
        """Feed the frequency tracker (renewed on ``reallocate``)."""
        self.term_stats.observe_document(document)

    def finalize_registration(self) -> None:
        """Compute and apply the allocation plan.

        Requires frequency statistics: call :meth:`seed_frequencies`
        (proactive) or publish a learning batch then
        :meth:`reallocate` (passive) first.  With no frequency signal
        at all, MOVE degenerates gracefully to IL (every ``n_i = 1``).
        """
        self.reallocate()

    def reallocate(
        self,
        force: bool = False,
        drift_epsilon: Optional[float] = None,
    ) -> ReallocationReport:
        """Renew statistics and re-run the coordinator (the 10-minute
        refresh of Section VI-A).

        With a positive drift threshold (the ``drift_epsilon``
        argument, falling back to ``allocation.drift_epsilon`` in the
        config) the refresh first measures :meth:`estimate_drift`;
        below the threshold the replan is skipped entirely: the
        statistics window is *not* renewed (so drift keeps
        accumulating until it crosses the threshold) and the
        write-through maintenance keeps the live grids correct in the
        meantime.  ``force=True`` bypasses the gate — used after ring
        changes, where the applied plan may reference departed nodes.

        Returns the :class:`~repro.core.reallocation.
        ReallocationReport` describing what the refresh did; the same
        report is kept as :attr:`last_reallocation` and tagged onto
        the ``reallocate`` tracer span.
        """
        start = time.perf_counter()
        epsilon = (
            drift_epsilon
            if drift_epsilon is not None
            else self.config.allocation.drift_epsilon
        )
        with self.tracer.span("reallocate", system=self.name) as span:
            report = self._reallocate_inner(force, epsilon, start)
            span.annotate(**report.as_tags())
        self._finish_reallocation(report)
        return report

    def _reallocate_inner(
        self, force: bool, epsilon: float, start: float
    ) -> ReallocationReport:
        drift = 0.0
        if not force and epsilon > 0.0 and self.plan is not None:
            drift = self.estimate_drift()
            if drift < epsilon:
                report = ReallocationReport(skipped=True, drift=drift)
                report.seconds = time.perf_counter() - start
                return report
        self.term_stats.frequency.renew()
        plan = self.coordinator.plan_from_stats(
            self.term_stats, self.home_of, num_nodes=len(self.cluster)
        )
        report = self._apply_plan(plan)
        report.drift = drift
        report.seconds = time.perf_counter() - start
        return report

    def estimate_drift(self) -> float:
        """Demand drift since the last applied plan, in [0, 1].

        The maximum of two cheap signals: the frequency tracker's
        window drift (document-side ``q_i`` movement since the last
        renewal) and the registered-filter churn fraction (filter-side
        ``p_i`` movement — filters registered/unregistered since the
        last apply over the current filter count).  Either signal
        moving is enough to justify a replan; both near zero means a
        replan would reproduce (nearly) the same plan, which is what
        the drift gate in :meth:`reallocate` exploits.
        """
        freq_drift = self.term_stats.window_drift()
        total = self.term_stats.popularity.total_filters
        if total:
            churn = min(1.0, self._filter_churn_since_apply / total)
        else:
            churn = 1.0 if self._filter_churn_since_apply else 0.0
        return max(freq_drift, churn)

    def _finish_reallocation(self, report: ReallocationReport) -> None:
        """Fold one refresh's outcome into the metric registry."""
        self.last_reallocation = report
        metrics = self.metrics
        metrics.counter("reallocations").add()
        if report.skipped:
            metrics.counter("reallocations_skipped").add()
        else:
            metrics.counter("realloc_keys_kept").add(report.keys_kept)
            metrics.counter("realloc_keys_rebuilt").add(
                report.keys_rebuilt
            )
            metrics.counter("realloc_keys_dropped").add(
                report.keys_dropped
            )
            metrics.counter("realloc_replicas_moved").add(
                report.replicas_moved
            )
            metrics.counter("realloc_delta_replicas").add(
                report.delta_replicas
            )
            metrics.counter("realloc_replicas_dropped").add(
                report.replicas_dropped
            )
        metrics.gauge("realloc_last_drift").set(report.drift)
        metrics.gauge("realloc_last_seconds").set(report.seconds)

    def _apply_plan(self, plan: AllocationPlan) -> ReallocationReport:
        """Install ``plan``: copy subset filters to allocated nodes.

        Table keys are home-node ids in the aggregated mode (Section
        V's deployment) or terms in the per-term ablation mode; in
        either case an allocated node indexes its subset under the
        terms the origin home node serves.

        Dispatches to the incremental engine (plan diffing, per-key
        rebuilds) unless ``allocation.incremental`` is disabled, in
        which case every key is rebuilt from scratch — the baseline
        path the equivalence tests and benchmarks compare against.
        Both paths leave identical index state and finish by
        reconciling the epoch/write-through bookkeeping and the
        allocated-storage tracker.
        """
        if self.config.allocation.incremental:
            report = self._apply_plan_incremental(plan)
        else:
            report = self._apply_plan_full(plan)
        # Allocation state changed: invalidate any open batch (the
        # batch-contract epoch the pipeline pins per publish_batch).
        self._mutation_epoch += 1
        self._applied_epochs = dict(self._key_epochs)
        self._writethrough_adds.clear()
        self._writethrough_drops.clear()
        self._filter_churn_since_apply = 0
        self._refresh_allocated_storage_load()
        return report

    def _origin_payloads(self, home_index: InvertedIndex, key: str):
        """Origin filters of one key in the index's native currency.

        Returns ``(entries, load)`` where ``entries`` yields
        ``(filter_id, payload)`` for every origin filter that has at
        least one indexed term, and ``load(index, payloads)``
        bulk-indexes the buffered payloads into a subset index.  In
        object mode the payload is the classic ``(profile,
        indexed_terms)`` pair; in slab mode it is ``(slot, term_ids)``
        fed to :meth:`~repro.matching.slab_index.SlabBackedIndex.
        add_slots`, so rebuilding subset indexes never rehydrates a
        single ``Filter``.  Both modes skip the same filters and visit
        holders identically — only the ``moves`` list order (outside
        the twin-equivalence contract) can differ.
        """
        aggregate = self.config.allocation.aggregate_per_node
        slab = home_index.slab
        if slab is not None:
            if aggregate:
                slot_entries = home_index.iter_slot_items()
                origin_ids = set(home_index.posting_term_ids())
            else:
                slot_entries = home_index.slot_entries_for_term(key)
                term_id = slab.interner.lookup(key)
                origin_ids = {term_id} if term_id is not None else set()
            term_ids = slab.term_ids

            def entries():
                for slot, filter_id in slot_entries:
                    indexed = [
                        tid for tid in term_ids(slot) if tid in origin_ids
                    ]
                    if indexed:
                        yield filter_id, (slot, indexed)

            def load(index: InvertedIndex, payloads) -> None:
                index.add_slots(payloads)

            return entries(), load
        if aggregate:
            origin_filters = home_index.all_filters()
            origin_terms = set(home_index.terms())
        else:
            origin_filters, _ = home_index.filters_for_term(key)
            origin_terms = {key}

        def entries():
            for profile in origin_filters:
                indexed_terms = profile.terms & origin_terms
                if indexed_terms:
                    yield profile.filter_id, (profile, indexed_terms)

        def load(index: InvertedIndex, payloads) -> None:
            index.add_filters(payloads)

        return entries(), load

    def _apply_plan_full(self, plan: AllocationPlan) -> ReallocationReport:
        """From-scratch apply: discard and rebuild every key."""
        report = ReallocationReport(keys_new=len(plan.tables))
        self.plan = plan
        self._allocated_indexes = defaultdict(dict)
        for key, table in plan.tables.items():
            grid = table.grid
            home_index = self._home_indexes[grid.home_node]
            subset_indexes: Dict[str, InvertedIndex] = {}
            for row in grid.rows:
                for node_id in row:
                    subset_indexes[node_id] = self._make_index()
            origin_entries, load = self._origin_payloads(home_index, key)
            # Buffer per holder, then bulk-index: each posting list is
            # rebuilt with one sort instead of one insert per filter.
            buffers: Dict[str, List] = {
                node_id: [] for node_id in subset_indexes
            }
            subset_holders = grid.subset_holders()
            for filter_id, payload in origin_entries:
                holders = subset_holders[grid.subset_of(filter_id)]
                report.replicas_moved += len(holders)
                for holder in holders:
                    buffers[holder].append(payload)
            for node_id, buffered in buffers.items():
                if buffered:
                    load(subset_indexes[node_id], buffered)
            for node_id, index in subset_indexes.items():
                self._allocated_indexes[node_id][key] = index
        return report

    def _apply_plan_incremental(
        self, plan: AllocationPlan
    ) -> ReallocationReport:
        """Diff-driven apply: rebuild only the keys that changed shape.

        Per :func:`~repro.core.reallocation.diff_plans`: *unchanged*
        and *delta* keys keep their live subset indexes untouched (the
        write-through maintenance already applied delta keys' filter
        churn at registration time, so only the movement accounting is
        folded in); *resized*/*new* keys are rebuilt from the home
        index with explicit :class:`~repro.core.reallocation.
        ReplicaMove` accounting; *dropped* keys discard their indexes.
        """
        old_plan = self.plan
        if old_plan is None:
            return self._apply_plan_full(plan)
        applied_epochs = self._applied_epochs
        churned = {
            key
            for key, epoch in self._key_epochs.items()
            if applied_epochs.get(key) != epoch
        }
        diff = diff_plans(old_plan, plan, churned)
        counts = diff.summary()
        report = ReallocationReport(
            keys_unchanged=counts[KEY_UNCHANGED],
            keys_delta=counts[KEY_DELTA],
            keys_resized=counts[KEY_RESIZED],
            keys_new=counts[KEY_NEW],
            keys_dropped=counts[KEY_DROPPED],
        )
        for key, key_diff in diff.diffs.items():
            status = key_diff.status
            if status == KEY_UNCHANGED:
                continue
            if status == KEY_DELTA:
                report.delta_replicas += self._writethrough_adds.get(
                    key, 0
                )
                report.replicas_dropped += self._writethrough_drops.get(
                    key, 0
                )
                continue
            if status == KEY_DROPPED:
                report.replicas_dropped += self._discard_key(
                    key, old_plan.tables[key]
                )
                continue
            # Resized or new: rebuild this one key from its home index.
            report.replicas_dropped += self._rebuild_key(
                key,
                plan.tables[key],
                old_plan.tables.get(key),
                report.moves,
            )
        report.replicas_moved = len(report.moves)
        self.plan = plan
        return report

    def _discard_key(self, key: str, table) -> int:
        """Drop every subset index of a key that lost its table.

        Returns the filter copies discarded (one per filter per
        holder, the same unit :meth:`allocation_movement` reports).
        """
        dropped = 0
        for node_id in table.grid.all_nodes():
            per_origin = self._allocated_indexes.get(node_id)
            if per_origin is None:
                continue
            index = per_origin.pop(key, None)
            if index is not None:
                dropped += len(index)
        return dropped

    def _rebuild_key(
        self,
        key: str,
        table,
        old_table,
        moves: List[ReplicaMove],
    ) -> int:
        """Rebuild one key's subset indexes from its home index.

        Appends to ``moves`` the explicit replica transfers — copies
        landing on a node that did not hold the filter's subset under
        the old grid (every copy, for a new key) — and returns the
        replica copies dropped (old holders that left the filter's
        subset).  The home node is always the sender: it retains the
        full filter set per Section V.
        """
        grid = table.grid
        home_id = grid.home_node
        home_index = self._home_indexes[home_id]
        origin_entries, load = self._origin_payloads(home_index, key)
        subset_holders = grid.subset_holders()
        old_grid = old_table.grid if old_table is not None else None
        old_subset_holders = (
            old_grid.subset_holders() if old_grid is not None else None
        )
        buffers: Dict[str, List] = {
            node_id: [] for node_id in grid.all_nodes()
        }
        dropped = 0
        for filter_id, payload in origin_entries:
            holders = subset_holders[grid.subset_of(filter_id)]
            for holder in holders:
                buffers[holder].append(payload)
            if old_grid is None:
                for holder in holders:
                    moves.append(
                        ReplicaMove(filter_id, home_id, holder)
                    )
                continue
            old_holders = old_subset_holders[
                old_grid.subset_of(filter_id)
            ]
            for holder in holders:
                if holder not in old_holders:
                    moves.append(
                        ReplicaMove(filter_id, home_id, holder)
                    )
            for holder in old_holders:
                if holder not in holders:
                    dropped += 1
        if old_grid is not None:
            for node_id in old_grid.all_nodes():
                per_origin = self._allocated_indexes.get(node_id)
                if per_origin is not None:
                    per_origin.pop(key, None)
        for node_id, buffered in buffers.items():
            index = self._make_index()
            if buffered:
                load(index, buffered)
            self._allocated_indexes[node_id][key] = index
        return dropped

    def _refresh_allocated_storage_load(self) -> None:
        """Overwrite the allocated-storage tracker with live totals.

        ``set`` per node rather than ``add``: accumulating at apply
        time double-counted every surviving replica on each refresh,
        inflating the Figure 9(a) storage metric by one full plan per
        reallocation.  Nodes that no longer hold any allocated subset
        are zeroed (not deleted) so ranked listings keep showing them.
        """
        tracker = self.metrics.load("storage_replicas_allocated")
        totals: Dict[str, float] = {}
        for node_id, per_origin in self._allocated_indexes.items():
            total = 0.0
            for index in per_origin.values():
                total += index.stored_replica_count()
            totals[node_id] = total
        for node_id in tracker.as_dict():
            if node_id not in totals:
                tracker.set(node_id, 0.0)
        for node_id, total in totals.items():
            tracker.set(node_id, total)

    # -- dissemination (pipeline stage hooks) ------------------------------

    def _observe(self, document: Document) -> None:
        """Feed the frequency tracker before the ingest draw."""
        self.term_stats.observe_document(document)

    def _resolve_routes(
        self, document: Document, caches: BatchCaches
    ) -> Dict[str, List[int]]:
        """Bloom-pruned term-id grouping by ring home node."""
        return group_terms_by_home(
            document, caches, self._bloom, self.home_of
        )

    def _execute(
        self, ctx: ExecutionContext, routes: Dict[str, List[int]]
    ) -> None:
        """Dispatch each home group: local IL-style matching when the
        home node has no forwarding table, partition-parallel matching
        through the grid when it does (per home node in the aggregated
        deployment, per term in the ablation mode)."""
        ctx.routing_messages = len(routes)
        plan = self.plan
        aggregate = self.config.allocation.aggregate_per_node
        for home_id, term_ids in routes.items():
            if plan is None:
                self._match_at_home(ctx, home_id, term_ids)
                continue
            if aggregate:
                table = plan.tables.get(home_id)
                if table is None:
                    self._match_at_home(ctx, home_id, term_ids)
                else:
                    ctx.routing_messages += self._match_allocated(
                        ctx, home_id, term_ids, table,
                        origin_key=home_id,
                    )
                continue
            # Per-term mode: each term routes through its own table.
            local_term_ids: List[int] = []
            for term_id in term_ids:
                term = DEFAULT_INTERNER.term(term_id)
                table = plan.tables.get(term)
                if table is None:
                    local_term_ids.append(term_id)
                else:
                    ctx.routing_messages += self._match_allocated(
                        ctx, home_id, [term_id], table,
                        origin_key=term,
                    )
            if local_term_ids:
                self._match_at_home(ctx, home_id, local_term_ids)

    def _home_retrieve(
        self, caches: BatchCaches, home_id: str, term_id: int
    ) -> Retrieval:
        """Home-index posting retrieval, memoized per batch."""
        entry = caches.retrieval.get(term_id)
        if entry is None:
            entry = caches.retrieve(
                term_id,
                self._home_indexes[home_id],
                DEFAULT_INTERNER.term(term_id),
            )
        return entry

    def _allocated_retrieve(
        self,
        caches: BatchCaches,
        node_id: str,
        origin_key: str,
        term_id: int,
    ) -> Retrieval:
        """Allocated-subset-index retrieval, memoized per batch."""
        key = (node_id, origin_key, term_id)
        entry = caches.retrieval.get(key)
        if entry is None:
            entry = caches.retrieve(
                key,
                self._allocated_indexes[node_id][origin_key],
                DEFAULT_INTERNER.term(term_id),
            )
        return entry

    def _home_subset_triples(
        self,
        caches: BatchCaches,
        home_id: str,
        origin_key: str,
        grid,
        term_id: int,
    ) -> List[Tuple[int, str, Filter]]:
        """Home posting of one term annotated with each filter's grid
        subset, memoized per batch (saves one stable hash per filter
        per document on the home-fallback and lost-subset paths)."""
        key = (origin_key, term_id)
        triples = caches.home_subsets.get(key)
        if triples is None:
            filters, filter_ids, _, _ = self._home_retrieve(
                caches, home_id, term_id
            )
            triples = [
                (grid.subset_of(filter_id), filter_id, profile)
                for filter_id, profile in zip(filter_ids, filters)
            ]
            caches.home_subsets[key] = triples
        return triples

    def _match_at_home(
        self, ctx: ExecutionContext, home_id: str, term_ids: List[int]
    ) -> None:
        """IL-style local matching on an unallocated home node."""
        caches = ctx.caches
        if not self.cluster.node(home_id).alive:
            for term_id in term_ids:
                ctx.unreachable.update(
                    self._home_retrieve(caches, home_id, term_id)[1]
                )
            return
        document = ctx.document
        matched = ctx.matched
        plain_boolean = self._scorer is None
        lists = 0
        entries = 0
        for term_id in term_ids:
            filters, filter_ids, n_lists, n_entries = (
                self._home_retrieve(caches, home_id, term_id)
            )
            lists += n_lists
            entries += n_entries
            if plain_boolean:
                matched.update(filter_ids)
            else:
                matched.update(
                    profile.filter_id
                    for profile in self._apply_semantics(
                        document, filters
                    )
                )
        ctx.work.add(home_id, lists, entries, (ctx.ingest, home_id))

    def _match_allocated(
        self,
        ctx: ExecutionContext,
        home_id: str,
        term_ids: List[int],
        table,
        origin_key: str,
    ) -> int:
        """Partition-parallel matching through the forwarding table.

        Returns the number of forwarding messages issued.  The home
        node acts as the router (its forwarding table is in main
        memory); if the home node itself is down, the ingest node
        routes directly from a gossip-replicated copy of the table —
        per the paper the table contents derive from the coordinator,
        so any node can reconstruct them.
        """
        caches = ctx.caches
        document = ctx.document
        ingest = ctx.ingest
        matched = ctx.matched
        home_alive = self.cluster.node(home_id).alive
        router = home_id if home_alive else ingest
        grid = table.grid

        node_of = self.cluster.node
        grouping, lost_subsets = table.route_grouped(
            self._rng,
            is_alive=lambda node_id: node_of(node_id).alive,
            home_alive=home_alive,
            memo=caches.routing.setdefault(origin_key, {}),
        )

        plain_boolean = self._scorer is None
        messages = 0
        for node_id, subsets in grouping:
            lists = 0
            entries = 0
            if node_id == home_id:
                # Home fallback: the home node retains every filter;
                # restrict matching to the subsets that fell back.
                restrict_subsets = set(subsets)
                for term_id in term_ids:
                    _, _, n_lists, n_entries = self._home_retrieve(
                        caches, home_id, term_id
                    )
                    lists += n_lists
                    entries += n_entries
                    triples = self._home_subset_triples(
                        caches, home_id, origin_key, grid, term_id
                    )
                    if plain_boolean:
                        matched.update(
                            filter_id
                            for subset, filter_id, _ in triples
                            if subset in restrict_subsets
                        )
                    else:
                        candidates = [
                            profile
                            for subset, _, profile in triples
                            if subset in restrict_subsets
                        ]
                        matched.update(
                            profile.filter_id
                            for profile in self._apply_semantics(
                                document, candidates
                            )
                        )
            else:
                for term_id in term_ids:
                    filters, filter_ids, n_lists, n_entries = (
                        self._allocated_retrieve(
                            caches, node_id, origin_key, term_id
                        )
                    )
                    lists += n_lists
                    entries += n_entries
                    if plain_boolean:
                        matched.update(filter_ids)
                    else:
                        matched.update(
                            profile.filter_id
                            for profile in self._apply_semantics(
                                document, filters
                            )
                        )
            path = (
                (ingest, node_id)
                if router == node_id
                else (ingest, router, node_id)
            )
            ctx.work.add(node_id, lists, entries, path)
            messages += 1

        for subset in lost_subsets:
            for term_id in term_ids:
                triples = self._home_subset_triples(
                    caches, home_id, origin_key, grid, term_id
                )
                ctx.unreachable.update(
                    filter_id
                    for candidate_subset, filter_id, _ in triples
                    if candidate_subset == subset
                )
        return messages

    def _choose_ingest(self) -> str:
        live = self.cluster.live_node_ids()
        if not live:
            raise RuntimeError("no live nodes to ingest documents")
        return self._rng.choice(live)

    # -- elasticity ------------------------------------------------------------

    def rebalance(self) -> int:
        """Restore the home-node invariant after ring changes, then
        re-run the allocation.

        When nodes join the ring, some terms acquire new home nodes;
        their postings are handed off exactly as in IL, new nodes get
        empty home indexes, and the coordinator recomputes the grids
        over the new membership.  Returns filter replicas moved.
        """
        for node_id in self.cluster.node_ids():
            if node_id not in self._home_indexes:
                self._home_indexes[node_id] = self._make_index()
        moved = 0
        aggregate = self.config.allocation.aggregate_per_node
        key_epochs = self._key_epochs
        for node_id, index in list(self._home_indexes.items()):
            for term in list(index.terms()):
                new_home = self.home_of(term)
                if new_home == node_id:
                    continue
                filters = index.remove_term(term)
                # Both the losing and the gaining key saw their filter
                # set change; mark them churned for the plan differ.
                for key in (
                    (node_id, new_home) if aggregate else (term,)
                ):
                    key_epochs[key] = key_epochs.get(key, 0) + 1
                target_index = self._home_indexes[new_home]
                for profile in filters:
                    self._store_filter(new_home, profile)
                    target_index.add_filter(
                        profile, indexed_terms=[term]
                    )
                    moved += 1
        # Ring changes leave grid copies out of sync with the moved
        # home postings (the hand-off above bypasses the write-through
        # path) and may reference departed nodes, so the diff-driven
        # apply must not keep any key: drop the applied plan — the
        # refresh then rebuilds every key from scratch in either apply
        # mode — and bypass the drift gate.
        self.plan = None
        self._allocated_indexes = defaultdict(dict)
        self.reallocate(force=True)
        return moved

    # -- diagnostics --------------------------------------------------------

    def storage_distribution(self) -> Dict[str, float]:
        """Total filter replicas per node: home + allocated copies.

        The home-resident replicas only count where the node still
        performs matching itself (no forwarding table); a routed home
        node's own copy is cold storage and the paper's Figure 9(a)
        measures serving replicas.
        """
        totals: Dict[str, float] = {
            node_id: 0.0 for node_id in self.cluster.node_ids()
        }
        for node_id, index in self._home_indexes.items():
            allocated = (
                self.plan is not None and node_id in self.plan.tables
            )
            if not allocated:
                totals[node_id] += len(index)
        for node_id, per_home in self._allocated_indexes.items():
            for index in per_home.values():
                totals[node_id] += len(index)
        return totals

    def allocation_movement(self) -> List[Tuple[str, str, int]]:
        """Filter copies moved by the allocation: (origin home node,
        receiving node, filter count) triples.

        The paper's Section V notes this movement is the ring
        placement's downside ("the successor-based option might cause
        network traffic"); the throughput harness charges the receiving
        node for it.
        """
        moves: List[Tuple[str, str, int]] = []
        for node_id, per_origin in self._allocated_indexes.items():
            for origin_key, index in per_origin.items():
                if not len(index):
                    continue
                table = (
                    self.plan.tables.get(origin_key)
                    if self.plan is not None
                    else None
                )
                # Resolve the origin key (home node id, or term in the
                # per-term mode) to the physical home node.
                home_id = (
                    table.grid.home_node
                    if table is not None
                    else origin_key
                )
                moves.append((home_id, node_id, len(index)))
        return moves

    def allocation_summary(self) -> List[str]:
        """One line per forwarding table (examples/diagnostics)."""
        if self.plan is None:
            return []
        return [
            table.describe()
            for _, table in sorted(self.plan.tables.items())
        ]
