"""The MOVE dissemination system (Sections IV–V).

MOVE is the IL baseline *plus* adaptive filter allocation:

1. **Registration** is identical to IL — a filter is stored on the home
   node of each of its terms, indexed under that term only (the
   distributed inverted list).
2. **Allocation** (``finalize_registration`` / ``reallocate``): the
   coordinator aggregates per-node statistics, computes ``n_i`` by the
   configured sqrt rule under the ``N * C`` storage budget, picks
   allocated nodes (hybrid ring/rack placement), and materializes
   grids: home-node filters are separated into subsets and replicated
   across partitions; each allocated node receives its subset's filters
   indexed under the origin home node's terms.
3. **Dissemination**: a document is routed (bloom-pruned) to the home
   nodes of its terms; a home node *with* a forwarding table picks a
   random partition and forwards the document in parallel to all nodes
   of that partition, which match against their (small) subsets; a home
   node *without* a table matches locally exactly as IL does.

Failures: subsets fall back to live copies in other partitions, then to
the home node itself (which retains the full filter set per Section V);
filters with no live holder are recorded as unreachable.
"""

from __future__ import annotations

import random
import warnings
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from ..cluster.cluster import Cluster
from ..config import SystemConfig
from ..matching.bloom import BloomFilter
from ..matching.inverted_index import InvertedIndex
from ..model import Document, Filter
from ..stats.term_stats import TermStatistics
from .coordinator import AllocationPlan, Coordinator
from .pipeline import (
    BatchCaches,
    ExecutionContext,
    Retrieval,
    group_terms_by_home,
)
from .placement import PlacementSelector
from ..baselines.base import DisseminationSystem
from ..text.interning import DEFAULT_INTERNER


class _LegacyTermStatsAccessor:
    """Deprecation shim keeping both meanings of ``MoveSystem.stats``.

    ``MoveSystem.stats`` used to *be* the :class:`TermStatistics`
    instance; it is now the uniform ``system.stats()`` accessor all
    four systems share.  This shim bridges one release: calling it
    (``move.stats()``) returns the new
    :class:`~repro.obs.SystemStats` snapshot, while attribute access
    (``move.stats.popularity``) forwards to :attr:`MoveSystem.
    term_stats` with a :class:`DeprecationWarning`.
    """

    __slots__ = ("_system",)

    def __init__(self, system: "MoveSystem") -> None:
        self._system = system

    def __call__(self):
        return self._system._build_stats()

    def __getattr__(self, name: str):
        warnings.warn(
            "MoveSystem.stats no longer exposes TermStatistics; use "
            "MoveSystem.term_stats instead (attribute forwarding is "
            "deprecated and will be removed next release)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self._system.term_stats, name)


class MoveSystem(DisseminationSystem):
    """The paper's proposed scheme."""

    name = "Move"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SystemConfig] = None,
        threshold: Optional[float] = None,
    ) -> None:
        super().__init__(config, threshold=threshold)
        self.cluster = cluster
        #: Term popularity/frequency trackers (formerly ``self.stats``;
        #: renamed so ``stats()`` could become the uniform snapshot
        #: accessor shared by all four systems).
        self.term_stats = TermStatistics()
        #: Home-node indexes (the distributed inverted list), as in IL.
        self._home_indexes: Dict[str, InvertedIndex] = {
            node_id: InvertedIndex() for node_id in cluster.node_ids()
        }
        #: Allocated-subset indexes: receiving node -> origin home node
        #: -> index of the subset filters (indexed under origin terms).
        self._allocated_indexes: Dict[str, Dict[str, InvertedIndex]] = (
            defaultdict(dict)
        )
        self._bloom = (
            BloomFilter(
                self.config.expected_filter_terms,
                self.config.bloom_fp_rate,
            )
            if self.config.use_bloom_filter
            else None
        )
        placement = PlacementSelector(
            cluster.ring,
            cluster.topology,
            mode=self.config.allocation.placement,
        )
        self.coordinator = Coordinator(
            placement,
            config=self.config.allocation,
            cost_model=self.config.cost_model,
            seed=(self.config.seed or 0) + 0x40,
        )
        self.plan: Optional[AllocationPlan] = None
        self._rng = random.Random((self.config.seed or 0) + 0x41)

    @property
    def stats(self) -> _LegacyTermStatsAccessor:
        """The uniform stats accessor, with legacy attribute forwarding.

        ``move.stats()`` returns the shared
        :class:`~repro.obs.SystemStats` snapshot (same as every other
        system); ``move.stats.<attr>`` still reaches the old
        :class:`TermStatistics` fields via :attr:`term_stats` but
        emits a :class:`DeprecationWarning`.
        """
        return _LegacyTermStatsAccessor(self)

    # -- registration (identical to IL) ---------------------------------

    def home_of(self, term: str) -> str:
        return self.cluster.ring.home_node(term)

    def _register(self, profile: Filter) -> None:
        self.term_stats.register_filter(profile)
        storage_load = self.metrics.load("storage_replicas")
        for term in profile.terms:
            node_id = self.home_of(term)
            node = self.cluster.node(node_id)
            node.filter_store.put(
                profile.filter_id, "terms", profile.sorted_terms()
            )
            self._home_indexes[node_id].add_filter(
                profile, indexed_terms=[term]
            )
            storage_load.add(node_id, 1.0)
            if self._bloom is not None:
                self._bloom.add(term)
            self._write_through_allocation(profile, node_id, term)

    def _register_batch(self, profiles) -> None:
        """Bulk registration: identical placement to the per-filter
        loop (same store writes, stats, bloom and load updates, in the
        same order), with each home index loaded through
        ``add_filters`` — one sort per posting list instead of one
        insert per filter replica."""
        storage_load = self.metrics.load("storage_replicas")
        bloom = self._bloom
        buffers: Dict[str, List[Tuple[Filter, List[str]]]] = {}
        for profile in profiles:
            self.term_stats.register_filter(profile)
            for term in profile.terms:
                node_id = self.home_of(term)
                self.cluster.node(node_id).filter_store.put(
                    profile.filter_id, "terms", profile.sorted_terms()
                )
                buffers.setdefault(node_id, []).append(
                    (profile, [term])
                )
                storage_load.add(node_id, 1.0)
                if bloom is not None:
                    bloom.add(term)
                self._write_through_allocation(profile, node_id, term)
        for node_id, buffered in buffers.items():
            self._home_indexes[node_id].add_filters(buffered)

    def _write_through_allocation(
        self, profile: Filter, home_id: str, term: str
    ) -> None:
        """Keep live grids complete for filters registered after an
        allocation: the home node writes the new filter to every holder
        of its subset, so documents routed to the grid (instead of the
        home) still find it before the next reallocation."""
        if self.plan is None:
            return
        origin_key = (
            home_id
            if self.config.allocation.aggregate_per_node
            else term
        )
        table = self.plan.tables.get(origin_key)
        if table is None:
            return
        subset = table.grid.subset_of(profile.filter_id)
        for holder in table.grid.holders_of_subset(subset):
            per_origin = self._allocated_indexes[holder]
            index = per_origin.get(origin_key)
            if index is None:
                index = InvertedIndex()
                per_origin[origin_key] = index
            index.add_filter(profile, indexed_terms=[term])

    def _unregister(self, profile: Filter) -> None:
        """Remove the filter from home indexes and live grid copies."""
        self.term_stats.popularity.unregister(profile)
        aggregate = self.config.allocation.aggregate_per_node
        for term in profile.terms:
            home_id = self.home_of(term)
            index = self._home_indexes[home_id]
            if profile.filter_id in index:
                index.remove_filter(profile.filter_id)
            self.cluster.node(home_id).filter_store.delete(
                profile.filter_id
            )
            if self.plan is None:
                continue
            origin_key = home_id if aggregate else term
            table = self.plan.tables.get(origin_key)
            if table is None:
                continue
            subset = table.grid.subset_of(profile.filter_id)
            for holder in table.grid.holders_of_subset(subset):
                allocated = self._allocated_indexes[holder].get(
                    origin_key
                )
                if allocated is not None:
                    allocated.remove_filter(profile.filter_id)

    # -- statistics & allocation ------------------------------------------

    def seed_frequencies(self, corpus) -> None:
        """Bootstrap ``q_i`` from an offline corpus (proactive policy)."""
        self.term_stats.frequency.seed_from_corpus(corpus)

    def observe_document(self, document: Document) -> None:
        """Feed the frequency tracker (renewed on ``reallocate``)."""
        self.term_stats.observe_document(document)

    def finalize_registration(self) -> None:
        """Compute and apply the allocation plan.

        Requires frequency statistics: call :meth:`seed_frequencies`
        (proactive) or publish a learning batch then
        :meth:`reallocate` (passive) first.  With no frequency signal
        at all, MOVE degenerates gracefully to IL (every ``n_i = 1``).
        """
        self.reallocate()

    def reallocate(self) -> None:
        """Renew statistics and re-run the coordinator (the 10-minute
        refresh of Section VI-A)."""
        self.term_stats.frequency.renew()
        plan = self.coordinator.plan_from_stats(
            self.term_stats, self.home_of, num_nodes=len(self.cluster)
        )
        self._apply_plan(plan)

    def _apply_plan(self, plan: AllocationPlan) -> None:
        """Copy subset filters to their allocated nodes.

        Table keys are home-node ids in the aggregated mode (Section
        V's deployment) or terms in the per-term ablation mode; in
        either case the allocated node indexes its subset under the
        terms the origin home node serves.
        """
        self.plan = plan
        self._allocated_indexes = defaultdict(dict)
        aggregate = self.config.allocation.aggregate_per_node
        storage_load = self.metrics.load("storage_replicas_allocated")
        for key, table in plan.tables.items():
            grid = table.grid
            home_index = self._home_indexes[grid.home_node]
            subset_indexes: Dict[str, InvertedIndex] = {}
            for row in grid.rows:
                for node_id in row:
                    subset_indexes[node_id] = InvertedIndex()
            if aggregate:
                origin_filters = home_index.all_filters()
                origin_terms = set(home_index.terms())
            else:
                origin_filters, _ = home_index.filters_for_term(key)
                origin_terms = {key}
            # Buffer per holder, then bulk-index: each posting list is
            # rebuilt with one sort instead of one insert per filter.
            buffers: Dict[str, List[Tuple[Filter, Set[str]]]] = {
                node_id: [] for node_id in subset_indexes
            }
            for profile in origin_filters:
                subset = grid.subset_of(profile.filter_id)
                indexed_terms = profile.terms & origin_terms
                if not indexed_terms:
                    continue
                for holder in grid.holders_of_subset(subset):
                    buffers[holder].append((profile, indexed_terms))
            for node_id, buffered in buffers.items():
                if buffered:
                    subset_indexes[node_id].add_filters(buffered)
            for node_id, index in subset_indexes.items():
                self._allocated_indexes[node_id][key] = index
                storage_load.add(
                    node_id, float(index.stored_replica_count())
                )

    # -- dissemination (pipeline stage hooks) ------------------------------

    def _observe(self, document: Document) -> None:
        """Feed the frequency tracker before the ingest draw."""
        self.term_stats.observe_document(document)

    def _resolve_routes(
        self, document: Document, caches: BatchCaches
    ) -> Dict[str, List[int]]:
        """Bloom-pruned term-id grouping by ring home node."""
        return group_terms_by_home(
            document, caches, self._bloom, self.home_of
        )

    def _execute(
        self, ctx: ExecutionContext, routes: Dict[str, List[int]]
    ) -> None:
        """Dispatch each home group: local IL-style matching when the
        home node has no forwarding table, partition-parallel matching
        through the grid when it does (per home node in the aggregated
        deployment, per term in the ablation mode)."""
        ctx.routing_messages = len(routes)
        plan = self.plan
        aggregate = self.config.allocation.aggregate_per_node
        for home_id, term_ids in routes.items():
            if plan is None:
                self._match_at_home(ctx, home_id, term_ids)
                continue
            if aggregate:
                table = plan.tables.get(home_id)
                if table is None:
                    self._match_at_home(ctx, home_id, term_ids)
                else:
                    ctx.routing_messages += self._match_allocated(
                        ctx, home_id, term_ids, table,
                        origin_key=home_id,
                    )
                continue
            # Per-term mode: each term routes through its own table.
            local_term_ids: List[int] = []
            for term_id in term_ids:
                term = DEFAULT_INTERNER.term(term_id)
                table = plan.tables.get(term)
                if table is None:
                    local_term_ids.append(term_id)
                else:
                    ctx.routing_messages += self._match_allocated(
                        ctx, home_id, [term_id], table,
                        origin_key=term,
                    )
            if local_term_ids:
                self._match_at_home(ctx, home_id, local_term_ids)

    def _home_retrieve(
        self, caches: BatchCaches, home_id: str, term_id: int
    ) -> Retrieval:
        """Home-index posting retrieval, memoized per batch."""
        entry = caches.retrieval.get(term_id)
        if entry is None:
            entry = caches.retrieve(
                term_id,
                self._home_indexes[home_id],
                DEFAULT_INTERNER.term(term_id),
            )
        return entry

    def _allocated_retrieve(
        self,
        caches: BatchCaches,
        node_id: str,
        origin_key: str,
        term_id: int,
    ) -> Retrieval:
        """Allocated-subset-index retrieval, memoized per batch."""
        key = (node_id, origin_key, term_id)
        entry = caches.retrieval.get(key)
        if entry is None:
            entry = caches.retrieve(
                key,
                self._allocated_indexes[node_id][origin_key],
                DEFAULT_INTERNER.term(term_id),
            )
        return entry

    def _home_subset_triples(
        self,
        caches: BatchCaches,
        home_id: str,
        origin_key: str,
        grid,
        term_id: int,
    ) -> List[Tuple[int, str, Filter]]:
        """Home posting of one term annotated with each filter's grid
        subset, memoized per batch (saves one stable hash per filter
        per document on the home-fallback and lost-subset paths)."""
        key = (origin_key, term_id)
        triples = caches.home_subsets.get(key)
        if triples is None:
            filters, filter_ids, _, _ = self._home_retrieve(
                caches, home_id, term_id
            )
            triples = [
                (grid.subset_of(filter_id), filter_id, profile)
                for filter_id, profile in zip(filter_ids, filters)
            ]
            caches.home_subsets[key] = triples
        return triples

    def _match_at_home(
        self, ctx: ExecutionContext, home_id: str, term_ids: List[int]
    ) -> None:
        """IL-style local matching on an unallocated home node."""
        caches = ctx.caches
        if not self.cluster.node(home_id).alive:
            for term_id in term_ids:
                ctx.unreachable.update(
                    self._home_retrieve(caches, home_id, term_id)[1]
                )
            return
        document = ctx.document
        matched = ctx.matched
        plain_boolean = self._scorer is None
        lists = 0
        entries = 0
        for term_id in term_ids:
            filters, filter_ids, n_lists, n_entries = (
                self._home_retrieve(caches, home_id, term_id)
            )
            lists += n_lists
            entries += n_entries
            if plain_boolean:
                matched.update(filter_ids)
            else:
                matched.update(
                    profile.filter_id
                    for profile in self._apply_semantics(
                        document, filters
                    )
                )
        ctx.work.add(home_id, lists, entries, (ctx.ingest, home_id))

    def _match_allocated(
        self,
        ctx: ExecutionContext,
        home_id: str,
        term_ids: List[int],
        table,
        origin_key: str,
    ) -> int:
        """Partition-parallel matching through the forwarding table.

        Returns the number of forwarding messages issued.  The home
        node acts as the router (its forwarding table is in main
        memory); if the home node itself is down, the ingest node
        routes directly from a gossip-replicated copy of the table —
        per the paper the table contents derive from the coordinator,
        so any node can reconstruct them.
        """
        caches = ctx.caches
        document = ctx.document
        ingest = ctx.ingest
        matched = ctx.matched
        home_alive = self.cluster.node(home_id).alive
        router = home_id if home_alive else ingest
        grid = table.grid

        node_of = self.cluster.node
        grouping, lost_subsets = table.route_grouped(
            self._rng,
            is_alive=lambda node_id: node_of(node_id).alive,
            home_alive=home_alive,
            memo=caches.routing.setdefault(origin_key, {}),
        )

        plain_boolean = self._scorer is None
        messages = 0
        for node_id, subsets in grouping:
            lists = 0
            entries = 0
            if node_id == home_id:
                # Home fallback: the home node retains every filter;
                # restrict matching to the subsets that fell back.
                restrict_subsets = set(subsets)
                for term_id in term_ids:
                    _, _, n_lists, n_entries = self._home_retrieve(
                        caches, home_id, term_id
                    )
                    lists += n_lists
                    entries += n_entries
                    triples = self._home_subset_triples(
                        caches, home_id, origin_key, grid, term_id
                    )
                    if plain_boolean:
                        matched.update(
                            filter_id
                            for subset, filter_id, _ in triples
                            if subset in restrict_subsets
                        )
                    else:
                        candidates = [
                            profile
                            for subset, _, profile in triples
                            if subset in restrict_subsets
                        ]
                        matched.update(
                            profile.filter_id
                            for profile in self._apply_semantics(
                                document, candidates
                            )
                        )
            else:
                for term_id in term_ids:
                    filters, filter_ids, n_lists, n_entries = (
                        self._allocated_retrieve(
                            caches, node_id, origin_key, term_id
                        )
                    )
                    lists += n_lists
                    entries += n_entries
                    if plain_boolean:
                        matched.update(filter_ids)
                    else:
                        matched.update(
                            profile.filter_id
                            for profile in self._apply_semantics(
                                document, filters
                            )
                        )
            path = (
                (ingest, node_id)
                if router == node_id
                else (ingest, router, node_id)
            )
            ctx.work.add(node_id, lists, entries, path)
            messages += 1

        for subset in lost_subsets:
            for term_id in term_ids:
                triples = self._home_subset_triples(
                    caches, home_id, origin_key, grid, term_id
                )
                ctx.unreachable.update(
                    filter_id
                    for candidate_subset, filter_id, _ in triples
                    if candidate_subset == subset
                )
        return messages

    def _choose_ingest(self) -> str:
        live = self.cluster.live_node_ids()
        if not live:
            raise RuntimeError("no live nodes to ingest documents")
        return self._rng.choice(live)

    # -- elasticity ------------------------------------------------------------

    def rebalance(self) -> int:
        """Restore the home-node invariant after ring changes, then
        re-run the allocation.

        When nodes join the ring, some terms acquire new home nodes;
        their postings are handed off exactly as in IL, new nodes get
        empty home indexes, and the coordinator recomputes the grids
        over the new membership.  Returns filter replicas moved.
        """
        for node_id in self.cluster.node_ids():
            self._home_indexes.setdefault(node_id, InvertedIndex())
        moved = 0
        for node_id, index in list(self._home_indexes.items()):
            for term in list(index.terms()):
                new_home = self.home_of(term)
                if new_home == node_id:
                    continue
                filters = index.remove_term(term)
                target_index = self._home_indexes[new_home]
                target_node = self.cluster.node(new_home)
                for profile in filters:
                    target_node.filter_store.put(
                        profile.filter_id,
                        "terms",
                        profile.sorted_terms(),
                    )
                    target_index.add_filter(
                        profile, indexed_terms=[term]
                    )
                    moved += 1
        self.reallocate()
        return moved

    # -- diagnostics --------------------------------------------------------

    def storage_distribution(self) -> Dict[str, float]:
        """Total filter replicas per node: home + allocated copies.

        The home-resident replicas only count where the node still
        performs matching itself (no forwarding table); a routed home
        node's own copy is cold storage and the paper's Figure 9(a)
        measures serving replicas.
        """
        totals: Dict[str, float] = {
            node_id: 0.0 for node_id in self.cluster.node_ids()
        }
        for node_id, index in self._home_indexes.items():
            allocated = (
                self.plan is not None and node_id in self.plan.tables
            )
            if not allocated:
                totals[node_id] += len(index)
        for node_id, per_home in self._allocated_indexes.items():
            for index in per_home.values():
                totals[node_id] += len(index)
        return totals

    def allocation_movement(self) -> List[Tuple[str, str, int]]:
        """Filter copies moved by the allocation: (origin home node,
        receiving node, filter count) triples.

        The paper's Section V notes this movement is the ring
        placement's downside ("the successor-based option might cause
        network traffic"); the throughput harness charges the receiving
        node for it.
        """
        moves: List[Tuple[str, str, int]] = []
        for node_id, per_origin in self._allocated_indexes.items():
            for origin_key, index in per_origin.items():
                if not len(index):
                    continue
                table = (
                    self.plan.tables.get(origin_key)
                    if self.plan is not None
                    else None
                )
                # Resolve the origin key (home node id, or term in the
                # per-term mode) to the physical home node.
                home_id = (
                    table.grid.home_node
                    if table is not None
                    else origin_key
                )
                moves.append((home_id, node_id, len(index)))
        return moves

    def allocation_summary(self) -> List[str]:
        """One line per forwarding table (examples/diagnostics)."""
        if self.plan is None:
            return []
        return [
            table.describe()
            for _, table in sorted(self.plan.tables.items())
        ]
