"""The dedicated coordinator node (Section V).

"We use a dedicated node in the cluster [that] collects the statistics
such as the node popularity p'_i and node frequency q'_i from all nodes
m_i to compute the result n'_i for m_i" — similar to the Hadoop master,
with standby redundancy for resilience.

The coordinator turns :class:`~repro.stats.term_stats.TermStatistics`
into per-home-node :class:`~repro.core.optimizer.NodeDemand` values
(or per-term demands when node aggregation is disabled), runs the
:class:`~repro.core.optimizer.MoveOptimizer`, and emits an allocation
plan: a grid + forwarding table per home node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..config import AllocationConfig, CostModelConfig
from ..errors import AllocationError
from ..stats.node_stats import NodeStatistics
from ..stats.term_stats import TermStatistics
from .allocation import AllocationGrid, build_grid, required_ratio
from .forwarding import ForwardingTable
from .optimizer import AllocationFactors, MoveOptimizer, NodeDemand
from .placement import PlacementSelector


@dataclass
class AllocationPlan:
    """Cluster-wide output of one coordinator run."""

    #: Per home-node forwarding tables (only nodes that were allocated).
    tables: Dict[str, ForwardingTable] = field(default_factory=dict)
    #: The optimizer factors for every home node (allocated or not).
    factors: Dict[str, AllocationFactors] = field(default_factory=dict)
    #: Demands the factors were computed from (diagnostics).
    demands: List[NodeDemand] = field(default_factory=list)

    def grid_for(self, home_node: str) -> Optional[AllocationGrid]:
        table = self.tables.get(home_node)
        return table.grid if table is not None else None


class Coordinator:
    """Plans filter allocation for the whole cluster."""

    def __init__(
        self,
        placement: PlacementSelector,
        config: Optional[AllocationConfig] = None,
        cost_model: Optional[CostModelConfig] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or AllocationConfig()
        self.placement = placement
        self._rng = random.Random(seed)
        self.optimizer = MoveOptimizer(
            config=self.config,
            cost_model=cost_model,
            rng=random.Random(seed + 1),
        )
        self.plans_computed = 0

    # -- demand collection -------------------------------------------------

    def collect_demands(
        self,
        stats: TermStatistics,
        home_node_of: Callable[[str], str],
    ) -> List[NodeDemand]:
        """Aggregate the term statistics per home node (Section V)."""
        aggregator = NodeStatistics(home_node_of)
        node_stats = aggregator.aggregate(stats)
        return [
            NodeDemand(
                key=ns.node_id,
                popularity=ns.popularity,
                frequency=ns.frequency,
                stored_replicas=ns.filter_replicas,
            )
            for ns in sorted(node_stats.values(), key=lambda s: s.node_id)
        ]

    # -- planning ---------------------------------------------------------

    def plan(
        self,
        demands: Sequence[NodeDemand],
        num_nodes: int,
        total_filters: int,
        home_node_of_key: Optional[Callable[[str], str]] = None,
    ) -> AllocationPlan:
        """Run the optimizer and materialize grids for every home node
        that earned more than one node (``n_i >= 2``).

        Grid nodes are drawn from the placement preference pool but
        assigned greedily by predicted load: home nodes are processed
        in descending per-slot traffic order and each takes the
        least-loaded ``n_i`` candidates from its pool.  Without this,
        the grids of several hot home nodes pile onto the same
        successors and recreate exactly the hot spot the allocation is
        meant to remove ("balance the number of processed documents",
        Section IV-A).

        ``home_node_of_key`` maps a demand key to the cluster node that
        anchors its placement: the identity for node-aggregated demands
        (Section V's default), or a term→home-node lookup when
        per-term allocation is configured.
        """
        resolve_home = home_node_of_key or (lambda key: key)
        factors = self.optimizer.solve(demands, num_nodes, total_filters)
        plan = AllocationPlan(factors=factors, demands=list(demands))
        capacity = float(self.config.node_capacity)
        predicted_load: Dict[str, float] = {}
        predicted_storage: Dict[str, float] = {}

        def slot_load(demand: NodeDemand, n: int) -> float:
            # Each grid slot serves ~q'/rows of the documents, each
            # costing ~S/columns entries: q' * S / n per slot.
            return demand.frequency * demand.stored_replicas / max(n, 1)

        # Home nodes that will keep matching locally (n < 2) retain
        # their resident replicas; pre-charge that storage so grids
        # avoid piling copies onto already-full homes.
        for demand in demands:
            if factors[demand.key].n < 2:
                home = resolve_home(demand.key)
                predicted_storage[home] = (
                    predicted_storage.get(home, 0.0)
                    + demand.stored_replicas
                )

        ordered = sorted(
            demands,
            key=lambda d: slot_load(d, factors[d.key].n),
            reverse=True,
        )
        for demand in ordered:
            factor = factors[demand.key]
            if factor.n < 2 or demand.stored_replicas == 0:
                continue  # home node handles its own matching
            home = resolve_home(demand.key)
            pool_size = min(num_nodes - 1, max(2 * factor.n, factor.n + 4))
            pool = self.placement.candidates(home, pool_size)
            if not pool:
                continue
            n = min(factor.n, len(pool))
            ratio = required_ratio(
                demand.stored_replicas, n, self.config.node_capacity
            )
            columns = max(1, int(round(ratio * n)))
            slot_storage = demand.stored_replicas / min(columns, n)
            # Candidates ranked by: capacity-overflow first (zero when
            # the slot fits), then predicted traffic, then preference.
            chosen = sorted(
                range(len(pool)),
                key=lambda i: (
                    max(
                        0.0,
                        predicted_storage.get(pool[i], 0.0)
                        + slot_storage
                        - capacity,
                    ),
                    predicted_load.get(pool[i], 0.0),
                    i,
                ),
            )[:n]
            candidates = [pool[i] for i in sorted(chosen)]
            grid = build_grid(home, candidates, n, ratio)
            plan.tables[demand.key] = ForwardingTable(grid)
            load = slot_load(demand, n)
            per_node_storage = demand.stored_replicas / grid.subset_count
            for node_id in grid.all_nodes():
                predicted_load[node_id] = (
                    predicted_load.get(node_id, 0.0) + load
                )
                predicted_storage[node_id] = (
                    predicted_storage.get(node_id, 0.0) + per_node_storage
                )
        self.plans_computed += 1
        return plan

    @staticmethod
    def demand_drift(
        old: Sequence[NodeDemand], new: Sequence[NodeDemand]
    ) -> float:
        """Relative movement between two demand snapshots, in [0, 1].

        Averages the relative L1 distance of the three demand
        components (popularity, frequency, stored replicas) over the
        union of keys: ``sum |new - old| / sum max(new, old)`` per
        component.  0.0 means the snapshots are identical (a replan
        would reproduce the same continuous optimum); 1.0 means they
        share no mass.  This is the coordinator-side counterpart of
        :meth:`repro.stats.term_stats.TermStatistics.window_drift` —
        exact but requiring both snapshots, so diagnostics and tests
        use it while the refresh gate uses the cheap stats-side signal.
        """
        old_by_key = {demand.key: demand for demand in old}
        new_by_key = {demand.key: demand for demand in new}
        moved = [0.0, 0.0, 0.0]
        mass = [0.0, 0.0, 0.0]
        for key in old_by_key.keys() | new_by_key.keys():
            a = old_by_key.get(key)
            b = new_by_key.get(key)
            for slot, attr in enumerate(
                ("popularity", "frequency", "stored_replicas")
            ):
                old_value = float(getattr(a, attr)) if a else 0.0
                new_value = float(getattr(b, attr)) if b else 0.0
                moved[slot] += abs(new_value - old_value)
                mass[slot] += max(new_value, old_value)
        components = [
            moved[slot] / mass[slot]
            for slot in range(3)
            if mass[slot] > 0.0
        ]
        if not components:
            return 0.0
        return sum(components) / len(components)

    def plan_from_stats(
        self,
        stats: TermStatistics,
        home_node_of: Callable[[str], str],
        num_nodes: int,
    ) -> AllocationPlan:
        """Convenience: collect demands then plan.

        With ``aggregate_per_node`` disabled in the config, demands are
        one per *term* instead of one per home node — the forwarding
        state the paper's Section V rejects as too costly to maintain
        at millions of terms, kept here for the ablation that
        quantifies exactly that trade-off.
        """
        total_filters = stats.popularity.total_filters
        if self.config.aggregate_per_node:
            demands = self.collect_demands(stats, home_node_of)
            return self.plan(demands, num_nodes, total_filters)
        demands = self.collect_term_demands(stats)
        return self.plan(
            demands,
            num_nodes,
            total_filters,
            home_node_of_key=home_node_of,
        )

    def collect_term_demands(
        self, stats: TermStatistics
    ) -> List[NodeDemand]:
        """One demand per term appearing in any registered filter."""
        return [
            NodeDemand(
                key=term,
                popularity=stats.p(term),
                frequency=stats.q(term),
                stored_replicas=stats.popularity.count(term),
            )
            for term in sorted(stats.popularity.terms())
        ]
