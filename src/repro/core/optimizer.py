"""The MOVE optimization problem (Section IV-C).

Minimize the overall matching latency

    Y = (1/T) * sum_i( p_i * P * q_i * Q / n_i )

subject to the cluster-wide storage constraint

    sum_i( n_i * p_i * P ) = N * C.

The Lagrange-multiplier solution gives the continuous optimum

    n_i = K * sqrt(a_i / s_i)         with  K = B / sum_j sqrt(a_j * s_j)

for objective coefficients ``a_i`` and storage coefficients
``s_i = p_i * P`` and budget ``B = N * C``.  The paper's three rules
correspond to different ``a_i``:

- **Theorem 1** (``sqrt_q``): ``a_i ∝ q_i`` with the paper's
  simplifying assumption that ``p_i`` cancels — ``n_i ∝ sqrt(q_i)``;
- **Theorem 2** (``sqrt_beta_q``): ``a_i ∝ q_i * (y_d + y_p * p_i * P)``
  — ``n_i ∝ sqrt(1 + beta * q_i)`` with ``beta = y_p * P / y_d``;
- **general** (``sqrt_pq``): the capacity-limited case where the tuning
  ratio ``alpha_i`` grows linearly with ``p_i`` — ``n_i ∝
  sqrt(p_i * q_i)``.  This is the rule the deployed system uses
  (Section V).

Fractional ``n_i`` are made integral by randomized rounding
(Kleinberg–Tardos style: floor plus a Bernoulli on the fractional
part), or deterministic rounding for reproduction runs that need exact
replay.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..config import AllocationConfig, CostModelConfig
from ..errors import AllocationError


@dataclass(frozen=True)
class NodeDemand:
    """Aggregated demand of one home node (or one term).

    ``popularity`` and ``frequency`` are the summed ``p'_i`` / ``q'_i``
    of Section V (or a single term's ``p_i`` / ``q_i`` when per-term
    allocation is configured); ``stored_replicas`` is the number of
    filter replicas currently registered on the home node (its
    ``p_i * P`` in the constraint).
    """

    key: str
    popularity: float
    frequency: float
    stored_replicas: int

    def __post_init__(self) -> None:
        if self.popularity < 0 or self.frequency < 0:
            raise AllocationError(
                f"demand {self.key!r}: negative statistics "
                f"(p={self.popularity}, q={self.frequency})"
            )
        if self.stored_replicas < 0:
            raise AllocationError(
                f"demand {self.key!r}: negative stored_replicas"
            )


@dataclass(frozen=True)
class AllocationFactors:
    """The optimizer's output for one home node."""

    key: str
    n: int            # number of nodes assigned (n_i >= 1)
    continuous_n: float  # pre-rounding optimum (diagnostics/tests)
    weight: float     # sqrt-rule weight used


class MoveOptimizer:
    """Computes allocation factors ``n_i`` under the storage budget."""

    def __init__(
        self,
        config: Optional[AllocationConfig] = None,
        cost_model: Optional[CostModelConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or AllocationConfig()
        self.cost_model = cost_model or CostModelConfig()
        self._rng = rng or random.Random(0)

    # -- weights -----------------------------------------------------------

    def _weight(self, demand: NodeDemand, total_filters: int) -> float:
        rule = self.config.rule
        if rule == "uniform":
            return 1.0
        if rule == "sqrt_q":
            return math.sqrt(demand.frequency)
        if rule == "sqrt_beta_q":
            beta = self.cost_model.beta(total_filters)
            return math.sqrt(1.0 + beta * demand.frequency)
        if rule == "sqrt_pq":
            return math.sqrt(demand.popularity * demand.frequency)
        raise AllocationError(f"unknown allocation rule {rule!r}")

    # -- solving ------------------------------------------------------------

    def solve(
        self,
        demands: Sequence[NodeDemand],
        num_nodes: int,
        total_filters: int,
    ) -> Dict[str, AllocationFactors]:
        """Allocation factors for every demand.

        ``num_nodes`` is ``N`` and the per-node capacity ``C`` comes
        from the config; the storage budget is ``B = N * C``.  Every
        demand receives at least ``n_i = 1`` (its home node), and no
        demand receives more nodes than the cluster has.
        """
        if num_nodes < 1:
            raise AllocationError(f"num_nodes must be >= 1, got {num_nodes}")
        if not demands:
            return {}

        budget = float(num_nodes) * self.config.node_capacity
        weights = {
            demand.key: self._weight(demand, total_filters)
            for demand in demands
        }
        # Continuous optimum: n_i = B * w_i / sum_j (s_j * w_j), which
        # satisfies sum_i s_i * n_i = B exactly.  Demands with zero
        # weight or zero storage fall back to n = 1.
        denominator = sum(
            demand.stored_replicas * weights[demand.key]
            for demand in demands
        )
        factors: Dict[str, AllocationFactors] = {}
        for demand in demands:
            weight = weights[demand.key]
            if denominator <= 0 or weight <= 0:
                continuous = 1.0
            else:
                continuous = budget * weight / denominator
            n = self._round(continuous)
            n = max(1, min(n, num_nodes))
            factors[demand.key] = AllocationFactors(
                key=demand.key,
                n=n,
                continuous_n=continuous,
                weight=weight,
            )
        return factors

    def _round(self, value: float) -> int:
        if not self.config.randomized_rounding:
            return int(round(value))
        floor = math.floor(value)
        fraction = value - floor
        return int(floor) + (1 if self._rng.random() < fraction else 0)

    # -- diagnostics ---------------------------------------------------------

    @staticmethod
    def predicted_latency(
        demands: Sequence[NodeDemand],
        factors: Mapping[str, AllocationFactors],
        total_documents: int,
        y_p: float,
    ) -> float:
        """Equation 1's overall latency ``Y`` under the given factors.

        Lets tests verify the sqrt rule beats uniform allocation on
        skewed demands (the Theorem 1 optimality property).
        """
        if not demands:
            return 0.0
        total = 0.0
        for demand in demands:
            n = factors[demand.key].n
            total += (
                y_p
                * demand.stored_replicas
                * demand.frequency
                * total_documents
                / n
            )
        return total / len(demands)

    @staticmethod
    def storage_used(
        demands: Sequence[NodeDemand],
        factors: Mapping[str, AllocationFactors],
    ) -> float:
        """Worst-case replica storage ``sum_i n_i * s_i`` (constraint LHS)."""
        return float(
            sum(
                demand.stored_replicas * factors[demand.key].n
                for demand in demands
            )
        )
