"""Allocation ratio and the partition/subset grid (Section IV-B).

Given ``n_i`` nodes for the filters of one home node, the allocation
ratio ``r_i ∈ [1/n_i, 1]`` shapes the grid: the nodes are divided into
``1/r_i`` partitions (rows) of ``r_i * n_i`` nodes (columns); the
filters are separated into ``r_i * n_i`` subsets (one per column), and
each subset is replicated once per row.

- ``r_i = 1/n_i`` → pure replication: one column, ``n_i`` rows; every
  node holds all filters; each document goes to one node.
- ``r_i = 1``   → pure separation: one row of ``n_i`` columns; each
  node holds ``1/n_i`` of the filters; each document goes to all nodes.

The deployed ratio is the smallest value (most replication, most
document-side parallelism — Section IV-B2 shows smaller ``r_i`` is
better) that still fits the per-node capacity::

    stored_per_node = S_i / (n_i * r_i) <= C
    →  r_i >= S_i / (n_i * C)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import AllocationError
from ..sim.randomness import stable_hash64


def required_ratio(
    stored_replicas: int, n: int, capacity: int
) -> float:
    """Smallest feasible allocation ratio ``r_i`` (Section IV-B2).

    Starts from the replication-maximal ``1/n`` and tunes upward until
    each allocated node's share ``S_i / (n * r)`` fits capacity ``C``.
    Values are clamped to 1.0: when even pure separation overflows the
    capacity, the allocation stores ``S_i / n`` per node and the
    overflow is the caller's signal to raise ``n`` (the optimizer's
    constraint normally prevents this).
    """
    if n < 1:
        raise AllocationError(f"n must be >= 1, got {n}")
    if capacity < 1:
        raise AllocationError(f"capacity must be >= 1, got {capacity}")
    if stored_replicas < 0:
        raise AllocationError("stored_replicas must be non-negative")
    minimum = 1.0 / n
    needed = stored_replicas / (n * capacity)
    return min(1.0, max(minimum, needed))


@dataclass(frozen=True)
class AllocationGrid:
    """The concrete partition grid for one home node's filters.

    ``rows[j][c]`` is the node holding subset ``c``'s copy in partition
    ``j``.  All grid nodes are distinct across the grid (a node holds at
    most one subset copy), matching Figure 2.
    """

    home_node: str
    ratio: float
    rows: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not self.rows or not self.rows[0]:
            raise AllocationError(
                f"grid for {self.home_node!r} must have >= 1 row and column"
            )
        width = len(self.rows[0])
        if any(len(row) != width for row in self.rows):
            raise AllocationError(
                f"grid for {self.home_node!r} has ragged rows"
            )
        flat = [node for row in self.rows for node in row]
        if len(set(flat)) != len(flat):
            raise AllocationError(
                f"grid for {self.home_node!r} repeats a node"
            )
        # Holder tuples per subset, precomputed once: the apply and
        # write-through loops ask for the holders of one filter's
        # subset per replica, so this lookup must not rebuild a list
        # per call.  Not a dataclass field — equality and repr stay
        # defined by (home_node, ratio, rows) alone.
        object.__setattr__(
            self,
            "_holders_by_subset",
            tuple(
                tuple(row[subset] for row in self.rows)
                for subset in range(width)
            ),
        )

    @property
    def partition_count(self) -> int:
        """``1/r_i`` — number of replica rows."""
        return len(self.rows)

    @property
    def subset_count(self) -> int:
        """``r_i * n_i`` — number of separated filter subsets."""
        return len(self.rows[0])

    @property
    def node_count(self) -> int:
        return self.partition_count * self.subset_count

    def all_nodes(self) -> List[str]:
        return [node for row in self.rows for node in row]

    def subset_of(self, filter_id: str) -> int:
        """Deterministic subset assignment of a filter."""
        return stable_hash64(filter_id) % self.subset_count

    def holders_of_subset(self, subset: int) -> List[str]:
        """All nodes holding copies of ``subset`` (one per row)."""
        if not 0 <= subset < self.subset_count:
            raise AllocationError(
                f"subset {subset} out of range 0..{self.subset_count - 1}"
            )
        return list(self._holders_by_subset[subset])

    def subset_holders(self) -> Tuple[Tuple[str, ...], ...]:
        """Holder tuples indexed by subset (precomputed, O(1)).

        ``subset_holders()[s]`` equals ``tuple(holders_of_subset(s))``;
        the reallocation engine iterates this instead of calling
        :meth:`holders_of_subset` once per filter replica.
        """
        return self._holders_by_subset

    def partition(self, row_index: int) -> Tuple[str, ...]:
        return self.rows[row_index]


def build_grid(
    home_node: str,
    candidate_nodes: Sequence[str],
    n: int,
    ratio: float,
) -> AllocationGrid:
    """Arrange up to ``n`` of ``candidate_nodes`` into the ratio's grid.

    Column count is ``round(ratio * n)`` (at least 1); row count fills
    the remaining budget (``n // columns``, at least 1).  Uses the first
    ``rows * columns`` distinct candidates, which the placement
    selector has already ordered by preference.
    """
    if n < 1:
        raise AllocationError(f"n must be >= 1, got {n}")
    if not 0.0 < ratio <= 1.0:
        raise AllocationError(f"ratio must be in (0, 1], got {ratio}")
    distinct: List[str] = []
    seen = set()
    for node in candidate_nodes:
        if node not in seen and node != home_node:
            seen.add(node)
            distinct.append(node)
    if not distinct:
        raise AllocationError(
            f"no candidate nodes available for {home_node!r}"
        )
    n = min(n, len(distinct))
    columns = max(1, int(round(ratio * n)))
    columns = min(columns, n)
    rows = max(1, n // columns)
    used = distinct[: rows * columns]
    grid_rows = tuple(
        tuple(used[row * columns : (row + 1) * columns])
        for row in range(rows)
    )
    return AllocationGrid(home_node=home_node, ratio=ratio, rows=grid_rows)
