"""Subscription leases: TTL-based filter expiry.

Long-running alert services garbage-collect abandoned subscriptions by
leasing them: a registration is valid for a TTL and must be renewed;
a periodic sweep unregisters expired filters.  Built on the systems'
``unregister`` support, driven by any monotonic clock (the simulator's
virtual clock in experiments, ``time.monotonic`` in live use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines.base import DisseminationSystem
from ..model import Filter


@dataclass(frozen=True)
class Lease:
    """One filter's lease state."""

    filter_id: str
    expires_at: float


class SubscriptionManager:
    """Lease bookkeeping over a dissemination system."""

    def __init__(
        self,
        system: DisseminationSystem,
        clock: Callable[[], float],
        default_ttl: float = 3600.0,
    ) -> None:
        if default_ttl <= 0:
            raise ValueError(f"default_ttl must be positive, got {default_ttl}")
        self.system = system
        self.clock = clock
        self.default_ttl = default_ttl
        self._expiry: Dict[str, float] = {}
        self.expired_total = 0

    def subscribe(
        self, profile: Filter, ttl: Optional[float] = None
    ) -> Lease:
        """Register ``profile`` with a lease."""
        ttl = self.default_ttl if ttl is None else ttl
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.system.subscribe([profile])
        expires_at = self.clock() + ttl
        self._expiry[profile.filter_id] = expires_at
        return Lease(filter_id=profile.filter_id, expires_at=expires_at)

    def renew(
        self, filter_id: str, ttl: Optional[float] = None
    ) -> Lease:
        """Extend an existing lease from *now*."""
        if filter_id not in self._expiry:
            raise KeyError(f"no lease for filter {filter_id!r}")
        ttl = self.default_ttl if ttl is None else ttl
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        expires_at = self.clock() + ttl
        self._expiry[filter_id] = expires_at
        return Lease(filter_id=filter_id, expires_at=expires_at)

    def cancel(self, filter_id: str) -> None:
        """Explicitly end a lease and unregister the filter."""
        self._expiry.pop(filter_id, None)
        self.system.unregister(filter_id)

    def lease_of(self, filter_id: str) -> Optional[Lease]:
        expires_at = self._expiry.get(filter_id)
        if expires_at is None:
            return None
        return Lease(filter_id=filter_id, expires_at=expires_at)

    def active_count(self) -> int:
        return len(self._expiry)

    def sweep(self) -> List[str]:
        """Unregister every expired lease; returns the expired ids."""
        now = self.clock()
        expired = [
            filter_id
            for filter_id, expires_at in self._expiry.items()
            if expires_at <= now
        ]
        for filter_id in expired:
            del self._expiry[filter_id]
            self.system.unregister(filter_id)
        self.expired_total += len(expired)
        return expired
