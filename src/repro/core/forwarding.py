"""The forwarding engine's table (Section V, Figure 3).

Each home node keeps a main-memory forwarding table mapping its filter
set to the two-dimensional allocation grid: ``1/r_i`` rows (partitions)
by ``n_i * r_i`` columns (subsets).  With node-level aggregation
(Section V) a node maintains exactly one grid for all of its terms,
instead of one per term.

The table also answers the failure-time questions of the Figure 9
experiments: which live node can serve a subset when the chosen
partition has casualties, and whether a subset is reachable at all.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import AllocationError
from .allocation import AllocationGrid


class ForwardingTable:
    """One home node's routing state for its allocated filters."""

    def __init__(self, grid: AllocationGrid) -> None:
        self.grid = grid

    @property
    def home_node(self) -> str:
        return self.grid.home_node

    def choose_partition(self, rng: random.Random) -> int:
        """Uniformly random partition (row) index (Section IV-B)."""
        return rng.randrange(self.grid.partition_count)

    def route(
        self,
        rng: random.Random,
        is_alive: Optional[Callable[[str], bool]] = None,
        row_index: Optional[int] = None,
    ) -> Dict[int, Optional[str]]:
        """Destination node per subset for one document.

        A random partition is selected and the document is forwarded in
        parallel to all of its nodes.  When a node of the chosen
        partition is down, the subset falls back to a live copy in
        another partition (the forwarding table knows every copy); when
        no copy is alive the subset maps to None and its filters are
        unreachable for this document (the availability loss Figure
        9(d) measures).

        ``row_index`` lets a caller that already drew the partition
        (the batched fast path memoizes all-alive routings per row)
        supply it; by default it is drawn from ``rng`` here.
        """
        alive = is_alive or (lambda _node: True)
        if row_index is None:
            row_index = self.choose_partition(rng)
        row = self.grid.partition(row_index)
        routing: Dict[int, Optional[str]] = {}
        for subset, node in enumerate(row):
            if alive(node):
                routing[subset] = node
                continue
            fallback = [
                candidate
                for candidate in self.grid.holders_of_subset(subset)
                if candidate != node and alive(candidate)
            ]
            routing[subset] = (
                rng.choice(fallback) if fallback else None
            )
        return routing

    def route_grouped(
        self,
        rng: random.Random,
        is_alive: Callable[[str], bool],
        home_alive: bool,
        memo: Dict[int, Tuple[Tuple[str, Tuple[int, ...]], ...]],
    ) -> Tuple[
        Tuple[Tuple[str, Tuple[int, ...]], ...], Tuple[int, ...]
    ]:
        """One document's routing, grouped by destination node.

        Returns ``(grouping, lost_subsets)`` where ``grouping`` is a
        ``((node, subsets), ...)`` tuple — subsets grouped so a node
        serving several receives the document once — and
        ``lost_subsets`` are subsets with no live copy anywhere (their
        home-fallback already folded into ``grouping`` when the home
        node is alive, or reported lost when it is not).

        The partition draw always happens first (bit-identical RNG
        stream); the resulting grouping is memoized in ``memo`` (keyed
        by row index, one memo per forwarding table) only when every
        row node is alive, because only failure fallbacks consume
        further RNG draws — replaying an all-alive grouping keeps the
        stream bit-identical to re-deriving it.
        """
        row_index = self.choose_partition(rng)
        grouping = memo.get(row_index)
        if grouping is not None:
            return grouping, ()
        row = self.grid.partition(row_index)
        if all(is_alive(node_id) for node_id in row):
            by_node: Dict[str, List[int]] = {}
            for subset, node_id in enumerate(row):
                by_node.setdefault(node_id, []).append(subset)
            grouping = tuple(
                (node_id, tuple(subsets))
                for node_id, subsets in by_node.items()
            )
            memo[row_index] = grouping
            return grouping, ()
        routing = self.route(rng, is_alive, row_index=row_index)
        home_id = self.grid.home_node
        fallback: Dict[str, List[int]] = {}
        lost: List[int] = []
        for subset, node_id in routing.items():
            if node_id is None:
                if home_alive:
                    # Home node retains the full filter set: fall back.
                    fallback.setdefault(home_id, []).append(subset)
                else:
                    lost.append(subset)
            else:
                fallback.setdefault(node_id, []).append(subset)
        grouping = tuple(
            (node_id, tuple(subsets))
            for node_id, subsets in fallback.items()
        )
        return grouping, tuple(lost)

    def same_routing(self, other: Optional["ForwardingTable"]) -> bool:
        """True when ``other`` routes identically to this table.

        Two tables are interchangeable exactly when their grids are
        equal — same home node, same ratio, same node in every (row,
        column) slot — because subset assignment, partition draws and
        failure fallbacks are all pure functions of the grid.  The
        plan differ uses this to classify a key as *unchanged*/*delta*
        (keep the allocated subset indexes) versus *resized* (rebuild).
        """
        return other is not None and self.grid == other.grid

    def live_subset_fraction(
        self, is_alive: Callable[[str], bool]
    ) -> float:
        """Fraction of subsets with at least one live copy."""
        live = sum(
            1
            for subset in range(self.grid.subset_count)
            if any(
                is_alive(node)
                for node in self.grid.holders_of_subset(subset)
            )
        )
        return live / self.grid.subset_count

    def describe(self) -> str:
        """Human-readable summary (used by examples/diagnostics)."""
        return (
            f"ForwardingTable(home={self.home_node}, "
            f"partitions={self.grid.partition_count}, "
            f"subsets={self.grid.subset_count}, "
            f"ratio={self.grid.ratio:.3f})"
        )
