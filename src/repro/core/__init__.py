"""MOVE's primary contribution: adaptive filter allocation.

- :mod:`repro.core.optimizer` — the MOVE optimization problem
  (Section IV-C): allocation factors ``n_i`` by Lagrange solution +
  randomized rounding, under the cluster storage constraint,
- :mod:`repro.core.allocation` — allocation ratio ``r_i`` and the
  partition/subset grid of Section IV-B,
- :mod:`repro.core.placement` — selection of allocated nodes: ring
  successors, rack-aware, and the paper's half/half hybrid (Section V),
- :mod:`repro.core.forwarding` — the forwarding table and engine
  (Section V, Figure 3),
- :mod:`repro.core.coordinator` — the dedicated statistics/planning
  node (Section V),
- :mod:`repro.core.pipeline` — the staged dissemination engine shared
  by all four systems (pruning → routing → execution → accounting),
- :mod:`repro.core.move_system` — the MOVE dissemination system facade.
"""

from .allocation import AllocationGrid, build_grid, required_ratio
from .coordinator import Coordinator
from .delivery import DeliveryService, Inbox, Notification
from .forwarding import ForwardingTable
from .leases import Lease, SubscriptionManager
from .move_system import MoveSystem
from .pipeline import (
    BatchCaches,
    DisseminationPipeline,
    ExecutionContext,
    WorkAccumulator,
)
from .optimizer import AllocationFactors, MoveOptimizer, NodeDemand
from .placement import PlacementSelector
from .policies import (
    AllocationPolicy,
    DriftPolicy,
    PassivePolicy,
    ProactivePolicy,
    run_policy,
)
from .reallocation import (
    KeyDiff,
    PlanDiff,
    ReallocationReport,
    ReplicaMove,
    diff_plans,
)

__all__ = [
    "AllocationPolicy",
    "ProactivePolicy",
    "PassivePolicy",
    "DriftPolicy",
    "run_policy",
    "KeyDiff",
    "PlanDiff",
    "ReallocationReport",
    "ReplicaMove",
    "diff_plans",
    "DeliveryService",
    "Inbox",
    "Notification",
    "Lease",
    "SubscriptionManager",
    "MoveOptimizer",
    "NodeDemand",
    "AllocationFactors",
    "AllocationGrid",
    "build_grid",
    "required_ratio",
    "PlacementSelector",
    "ForwardingTable",
    "Coordinator",
    "MoveSystem",
    "DisseminationPipeline",
    "BatchCaches",
    "ExecutionContext",
    "WorkAccumulator",
]
