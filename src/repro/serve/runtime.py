"""The asyncio service runtime: bounded queues, batching, drain.

:class:`ServiceRuntime` is the live counterpart of the experiment
harness: one dissemination system, one single-worker dataplane.  All
mutations — documents *and* control commands (register, unregister,
reallocate, …) — flow through one bounded :class:`asyncio.Queue`, so
the worker applies them in a total order.  That ordering is what
satisfies the pipeline's batch contract by construction: a command
never lands inside a publish batch, because the worker only forms
batches from contiguous document items.

Flow control has two layers:

- **admission control** — when queue depth reaches
  ``admission_high_watermark × queue_capacity`` new documents are
  shed immediately with :class:`~repro.errors.AdmissionError`
  (clients see the overload instead of silently growing latency);
- **backpressure** — with the watermark at 1.0 (the default
  semantics of a full queue), ``await``-ing producers block in
  ``Queue.put`` until the worker drains.

``drain()`` stops intake, lets every accepted item complete, and
stops the worker — the graceful half of shutdown; the crash half is
the journal's job (:mod:`repro.serve.journal`).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..errors import (
    AdmissionError,
    ReproError,
    ServiceDrainingError,
    ServiceError,
)
from ..experiments.harness import build_cluster, make_system
from ..model import Document, Filter
from ..obs.metrics import MetricsRegistry, prometheus_text
from .driver import AsyncioEventDriver
from .journal import JournaledSystem

#: Bucket bounds for the batch-size histogram (documents per batch).
_BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one service runtime.

    ``wal_dir=None`` runs without durability (useful in tests);
    pointing it at a directory journals every mutation and recovers
    on restart.  ``admission_high_watermark`` is the queue-depth
    fraction at which ingest starts shedding; at ``1.0`` shedding is
    disabled entirely and a full queue exerts backpressure (blocking
    producers) instead.
    """

    scheme: str = "move"
    num_nodes: int = 8
    node_capacity: int = 2_000
    seed: int = 0
    threshold: Optional[float] = None
    wal_dir: Optional[str] = None
    segment_max_bytes: int = 1 << 20
    fsync_interval: int = 1
    queue_capacity: int = 1_024
    admission_high_watermark: float = 1.0
    batch_max_docs: int = 64
    #: Seconds between periodic allocation refreshes (MOVE's
    #: 10-minute timer); ``None`` disables the timer.
    reallocate_interval: Optional[float] = None
    #: Drift threshold the periodic refresh hands to ``reallocate``;
    #: ``None`` defers to the system's configured epsilon.  Refreshes
    #: never force — a tick below the drift gate is counted as
    #: skipped, not executed.
    drift_epsilon: Optional[float] = None
    #: Coalesce every WAL append of one worker drain cycle into a
    #: single fsync (durability acks released together).  Disable to
    #: get the one-fsync-per-append behaviour of fsync_interval=1.
    wal_group_commit: bool = True
    #: Seconds between automatic ``checkpoint()`` calls; ``None``
    #: leaves checkpointing to explicit operator commands.
    checkpoint_interval: Optional[float] = None
    #: Snapshot files kept on disk after each checkpoint.
    snapshot_retain: int = 2

    def __post_init__(self) -> None:
        if self.queue_capacity <= 0:
            raise ServiceError(
                f"queue_capacity must be positive, got "
                f"{self.queue_capacity}"
            )
        if self.batch_max_docs <= 0:
            raise ServiceError(
                f"batch_max_docs must be positive, got "
                f"{self.batch_max_docs}"
            )
        if not 0.0 < self.admission_high_watermark <= 1.0:
            raise ServiceError(
                "admission_high_watermark must be in (0, 1], got "
                f"{self.admission_high_watermark}"
            )
        if self.reallocate_interval is not None and (
            self.reallocate_interval <= 0
        ):
            raise ServiceError(
                f"reallocate_interval must be positive, got "
                f"{self.reallocate_interval}"
            )
        if self.drift_epsilon is not None and self.drift_epsilon < 0:
            raise ServiceError(
                f"drift_epsilon must be non-negative, got "
                f"{self.drift_epsilon}"
            )
        if self.checkpoint_interval is not None and (
            self.checkpoint_interval <= 0
        ):
            raise ServiceError(
                f"checkpoint_interval must be positive, got "
                f"{self.checkpoint_interval}"
            )
        if self.snapshot_retain < 1:
            raise ServiceError(
                f"snapshot_retain must be >= 1, got "
                f"{self.snapshot_retain}"
            )


class _Item:
    """One queue entry: a document or a control command."""

    __slots__ = ("kind", "payload", "future")

    def __init__(
        self, kind: str, payload: Any, future: "asyncio.Future"
    ) -> None:
        self.kind = kind
        self.payload = payload
        self.future = future


class ServiceRuntime:
    """Single-worker asyncio dataplane over one dissemination system."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.journal: Optional[JournaledSystem] = None
        if self.config.wal_dir is not None:
            self.journal = JournaledSystem(
                self.config.wal_dir,
                scheme=self.config.scheme,
                num_nodes=self.config.num_nodes,
                node_capacity=self.config.node_capacity,
                seed=self.config.seed,
                threshold=self.config.threshold,
                segment_max_bytes=self.config.segment_max_bytes,
                fsync_interval=self.config.fsync_interval,
                snapshot_retain=self.config.snapshot_retain,
            )
            self.system = self.journal.system
        else:
            cluster, system_config = build_cluster(
                self.config.num_nodes,
                self.config.node_capacity,
                seed=self.config.seed,
            )
            self.system = make_system(
                self.config.scheme,
                cluster,
                system_config,
                threshold=self.config.threshold,
            )
        #: The mutation surface the worker dispatches to: the journal
        #: when durable, the bare system otherwise (same method names).
        self._backend = (
            self.journal if self.journal is not None else self.system
        )
        #: Runtime-side metrics (queueing, batching, shedding); the
        #: system keeps its own registry, merged at scrape time.
        self.metrics = MetricsRegistry()
        self.driver = AsyncioEventDriver()
        self._queue: Optional["asyncio.Queue[_Item]"] = None
        self._worker: Optional["asyncio.Task"] = None
        self._refresh_handle = None
        self._checkpoint_handle = None
        self._draining = False

    # -- lifecycle --------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._worker is not None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    async def start(self) -> None:
        """Bind to the running loop and start the worker."""
        if self._worker is not None:
            raise ServiceError("runtime already started")
        loop = asyncio.get_running_loop()
        self.driver = AsyncioEventDriver(loop)
        # One timebase for the dataplane: scheduled work, pipeline
        # stage timings, and tracer spans all read the loop clock.
        self.system._engine.clock = self.driver
        self._queue = asyncio.Queue(maxsize=self.config.queue_capacity)
        self._draining = False
        self._worker = loop.create_task(self._run(), name="serve-worker")
        if self.config.reallocate_interval is not None:
            # Fail at start rather than raising from the timer on
            # every tick forever: only schemes exposing reallocate
            # (MOVE) can run the periodic refresh.
            if not hasattr(self.system, "reallocate"):
                await self.drain()
                raise ServiceError(
                    f"scheme {self.config.scheme!r} does not support "
                    "reallocate; unset reallocate_interval"
                )
            self._arm_refresh()
        if self.config.checkpoint_interval is not None:
            if self.journal is None:
                await self.drain()
                raise ServiceError(
                    "checkpoint_interval requires a journal "
                    "(set wal_dir)"
                )
            self._arm_checkpoint()

    async def drain(self) -> None:
        """Stop intake, finish accepted work, stop the worker."""
        if self._worker is None:
            return
        self._draining = True
        if self._refresh_handle is not None:
            self._refresh_handle.cancel()
            self._refresh_handle = None
        if self._checkpoint_handle is not None:
            self._checkpoint_handle.cancel()
            self._checkpoint_handle = None
        loop = asyncio.get_running_loop()
        stop = _Item("stop", None, loop.create_future())
        await self._queue.put(stop)
        await stop.future
        await self._worker
        self._worker = None
        if self.journal is not None:
            self.journal.sync()

    async def close(self) -> None:
        """Drain, then release the journal."""
        await self.drain()
        if self.journal is not None:
            self.journal.close()

    # -- producers --------------------------------------------------------

    def _check_intake(self) -> None:
        if self._queue is None:
            raise ServiceError("runtime not started")
        if self._draining:
            raise ServiceDrainingError(
                "runtime is draining; no new work accepted"
            )

    async def ingest(self, document: Document):
        """Queue one document; returns its dissemination plan.

        Sheds with :class:`~repro.errors.AdmissionError` above the
        admission watermark; otherwise blocks (backpressure) while
        the queue is full.
        """
        self._check_intake()
        if self.config.admission_high_watermark < 1.0:
            watermark = max(
                1,
                int(
                    self.config.admission_high_watermark
                    * self.config.queue_capacity
                ),
            )
            if self._queue.qsize() >= watermark:
                self.metrics.counter("serve.shed").add()
                raise AdmissionError(
                    f"ingest queue at admission watermark "
                    f"({self._queue.qsize()}/"
                    f"{self.config.queue_capacity})"
                )
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Item("doc", document, future))
        self.metrics.counter("serve.ingested").add()
        return await future

    async def ingest_batch(self, documents: List[Document]) -> List:
        """Queue a batch of documents; returns their plans in order.

        One admission decision covers the whole batch (shed all or
        accept all); acceptance then enqueues per document, so the
        worker's micro-batcher and WAL commit window see the batch as
        contiguous items and backpressure still applies per slot.
        """
        if not documents:
            return []
        self._check_intake()
        if self.config.admission_high_watermark < 1.0:
            watermark = max(
                1,
                int(
                    self.config.admission_high_watermark
                    * self.config.queue_capacity
                ),
            )
            if self._queue.qsize() >= watermark:
                self.metrics.counter("serve.shed").add(
                    float(len(documents))
                )
                raise AdmissionError(
                    f"ingest queue at admission watermark "
                    f"({self._queue.qsize()}/"
                    f"{self.config.queue_capacity})"
                )
        loop = asyncio.get_running_loop()
        futures = []
        for document in documents:
            future = loop.create_future()
            await self._queue.put(_Item("doc", document, future))
            futures.append(future)
        self.metrics.counter("serve.ingested").add(
            float(len(documents))
        )
        return list(await asyncio.gather(*futures))

    async def command(self, op: str, *args: Any):
        """Queue one control command; returns its result.

        Commands share the document queue, so they serialize against
        in-flight batches (never inside one).  Supported ops mirror
        the journal surface: ``register``, ``register_batch``,
        ``subscribe``, ``unregister``, ``finalize``,
        ``seed_frequencies``, ``reallocate``, ``rebalance``.
        """
        self._check_intake()
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Item(op, args, future))
        self.metrics.counter("serve.commands").add()
        return await future

    async def register(self, profile: Filter) -> None:
        await self.command("register", profile)

    async def subscribe(self, items: List[Any]) -> List[str]:
        return await self.command("subscribe", items)

    async def unregister(self, filter_id: str) -> Filter:
        return await self.command("unregister", filter_id)

    async def checkpoint(self) -> dict:
        """Checkpoint the journal via the worker (total-order safe)."""
        if self.journal is None:
            raise ServiceError(
                "checkpoint requires a journal (set wal_dir)"
            )
        return await self.command("checkpoint")

    # -- the worker -------------------------------------------------------

    async def _run(self) -> None:
        queue = self._queue
        journal = self.journal
        group = journal is not None and self.config.wal_group_commit
        while True:
            item = await queue.get()
            #: Deferred acks: ``(future, ok, plan-or-exception)``.
            #: Futures resolve only after the commit window closes, so
            #: no producer observes success before its record's fsync.
            ready: List[Tuple["asyncio.Future", bool, Any]] = []
            stop: Optional[_Item] = None
            if group:
                journal.begin_commit_window()
            try:
                # Drain the whole backlog under one durability window.
                # Nothing awaits inside, so the queue cannot refill
                # mid-window: the window is exactly the items queued
                # when the worker woke (bounded by queue_capacity),
                # and they all share a single fsync.
                while item is not None:
                    if item.kind == "doc":
                        batch, item = self._collect_batch(item)
                        self._publish(batch, ready)
                        if item is None:
                            item = self._next_nowait()
                        continue
                    if item.kind == "stop":
                        stop = item
                        break
                    self._execute_command(item, ready)
                    item = self._next_nowait()
            finally:
                if group:
                    journal.end_commit_window()
            for future, ok, value in ready:
                if future.done():
                    continue
                if ok:
                    future.set_result(value)
                else:
                    future.set_exception(value)
            if stop is not None:
                stop.future.set_result(None)
                return
            self.metrics.gauge("serve.queue_depth").set(queue.qsize())
            # Yield so producers blocked in put() make progress even
            # under a steady stream of ready items.
            await asyncio.sleep(0)

    def _next_nowait(self) -> Optional[_Item]:
        try:
            return self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None

    def _collect_batch(
        self, first: _Item
    ) -> Tuple[List[_Item], Optional[_Item]]:
        """Opportunistic micro-batch: contiguous queued documents.

        Stops at ``batch_max_docs``, an empty queue, or the first
        non-document item (returned as ``trailing`` so commands keep
        their queue position *between* batches).
        """
        batch = [first]
        trailing: Optional[_Item] = None
        while len(batch) < self.config.batch_max_docs:
            try:
                nxt = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if nxt.kind == "doc":
                batch.append(nxt)
            else:
                trailing = nxt
                break
        return batch, trailing

    def _publish(
        self,
        batch: List[_Item],
        ready: List[Tuple["asyncio.Future", bool, Any]],
    ) -> None:
        documents = [item.payload for item in batch]
        self.metrics.counter("serve.batches").add()
        self.metrics.histogram(
            "serve.batch_size", bounds=_BATCH_SIZE_BOUNDS
        ).observe(float(len(documents)))
        try:
            plans = self._backend.publish_batch(documents)
        except Exception as error:  # surface to every waiting producer
            for item in batch:
                ready.append((item.future, False, error))
            return
        for item, plan in zip(batch, plans):
            ready.append((item.future, True, plan))

    def _execute_command(
        self,
        item: _Item,
        ready: List[Tuple["asyncio.Future", bool, Any]],
    ) -> None:
        try:
            method = getattr(self._backend, self._COMMANDS[item.kind])
            result = method(*item.payload)
        except Exception as error:
            ready.append((item.future, False, error))
            return
        ready.append((item.future, True, result))

    _COMMANDS = {
        # The v1 register ops target the non-warning admission names
        # so service traffic never trips the deprecation shims.
        "register": "_admit_one",
        "register_batch": "_admit_batch",
        "subscribe": "subscribe",
        "unregister": "unregister",
        "finalize": "finalize_registration",
        "seed_frequencies": "seed_frequencies",
        "reallocate": "reallocate",
        "rebalance": "rebalance",
        "checkpoint": "checkpoint",
    }

    # -- periodic refresh -------------------------------------------------

    def _arm_refresh(self) -> None:
        interval = self.config.reallocate_interval
        assert interval is not None

        def fire() -> None:
            if self._draining or self._queue is None:
                return
            task = asyncio.ensure_future(self._refresh())
            task.add_done_callback(lambda _t: None)
            self._arm_refresh()

        self._refresh_handle = self.driver.schedule(interval, fire)

    async def _refresh(self) -> None:
        try:
            # Never force: the periodic timer proposes, the drift gate
            # disposes.  An epsilon of None defers to the system's
            # configured allocation.drift_epsilon.
            report = await self.command(
                "reallocate", False, self.config.drift_epsilon
            )
        except ReproError:
            # A refresh racing a drain (or any backend refusal) is a
            # skipped tick, not a worker-killing failure.
            self.metrics.counter("serve.refresh_errors").add()
            return
        if getattr(report, "skipped", False):
            self.metrics.counter(
                "serve.reallocations_skipped"
            ).add()
        else:
            self.metrics.counter("serve.refreshes").add()

    def _arm_checkpoint(self) -> None:
        interval = self.config.checkpoint_interval
        assert interval is not None

        def fire() -> None:
            if self._draining or self._queue is None:
                return
            task = asyncio.ensure_future(self._checkpoint_tick())
            task.add_done_callback(lambda _t: None)
            self._arm_checkpoint()

        self._checkpoint_handle = self.driver.schedule(interval, fire)

    async def _checkpoint_tick(self) -> None:
        try:
            await self.checkpoint()
        except ReproError:
            self.metrics.counter("serve.checkpoint_errors").add()

    # -- scrape surface ---------------------------------------------------

    def _export_wal_gauges(self) -> None:
        """Copy journal/WAL accounting onto the metrics registry.

        Pulled at scrape time instead of pushed per append: the hot
        path touches plain ints on the writer, and the registry only
        pays when someone looks.
        """
        journal = self.journal
        if journal is None:
            return
        writer = journal.writer
        gauge = self.metrics.gauge
        gauge("serve.wal_fsyncs").set(float(writer.fsyncs))
        gauge("serve.wal_group_commits").set(
            float(writer.group_commits)
        )
        per_fsync = (
            writer.records_synced / writer.fsyncs
            if writer.fsyncs
            else 0.0
        )
        gauge("serve.wal_records_per_fsync").set(per_fsync)
        gauge("serve.checkpoints").set(float(journal.checkpoints))
        gauge("serve.checkpoint_seconds").set(
            journal.last_checkpoint_seconds
        )
        gauge("serve.checkpoint_segments_removed").set(
            float(journal.last_checkpoint_segments_removed)
        )
        gauge("serve.recovery_replayed_records").set(
            float(journal.recovery_replayed_records)
        )
        gauge("serve.recovery_seconds").set(journal.recovery_seconds)
        gauge("serve.snapshots_skipped").set(
            float(journal.snapshots_skipped)
        )

    def prometheus_text(self) -> str:
        """System + runtime registries in Prometheus text format."""
        self._export_wal_gauges()
        return prometheus_text(
            self.system.metrics, prefix="repro"
        ) + prometheus_text(self.metrics, prefix="repro")
