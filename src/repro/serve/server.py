"""TCP JSON-lines front end for the service runtime.

One request per line, one JSON response per line — a protocol thin
enough for ``nc`` and the stdlib, yet covering the full service
surface: register / unregister / finalize, ingest, reallocate, stats,
and a Prometheus ``metrics`` scrape.  Requests:

```
{"op": "ping"}
{"op": "register", "filter_id": "f1", "terms": ["alpha", "beta"]}
{"op": "register_batch", "filters": [{"filter_id": ..., "terms": [...]}]}
{"op": "register_query", "query": "llm AND (eval OR bench)", "query_id": "q1"}
{"op": "unregister", "filter_id": "f1"}
{"op": "finalize"}
{"op": "ingest", "doc_id": "d1", "terms": ["alpha", "gamma"]}
{"op": "reallocate"}
{"op": "stats"}
{"op": "metrics"}
{"op": "shutdown"}
```

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error":
"<exception class>", "message": "..."}`` — overload surfaces as an
``AdmissionError`` response, not a dropped connection, so clients can
back off deliberately.

This is **protocol version 2** (the ``ping`` response advertises it
as ``"protocol": 2``); version 1 is the same wire format without
``register_query`` and without the version field.  ``register_query``
registers a boolean predicate subscription from query text —
``query_id`` is optional (the server assigns one and returns it), a
malformed or NOT-only query comes back as a ``QueryError`` response.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict
from typing import Any, Dict, Optional

from ..errors import ReproError, ServiceError
from ..model import Document, Filter
from .runtime import ServiceRuntime

#: Wire protocol version advertised in the ``ping`` response (and the
#: CLI's ``READY`` line).  v2 added ``register_query``; v1 servers
#: predate the field entirely.
PROTOCOL_VERSION = 2


def _decode_ingest(request: Dict[str, Any]) -> Document:
    doc_id = request["doc_id"]
    if "term_counts" in request:
        counts = {
            term: int(count)
            for term, count in request["term_counts"].items()
        }
        return Document(
            doc_id=doc_id, terms=frozenset(counts), term_counts=counts
        )
    return Document.from_terms(doc_id, request["terms"])


def _plan_summary(plan) -> Dict[str, Any]:
    return {
        "doc_id": plan.document.doc_id,
        "matched": sorted(plan.matched_filter_ids),
        "fanout": plan.fanout,
        "posting_entries": plan.total_posting_entries,
    }


class ServiceServer:
    """Asyncio TCP server bridging the line protocol to a runtime."""

    def __init__(
        self,
        runtime: ServiceRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: Set when a ``shutdown`` request asks the process to exit.
        self.shutdown_requested = asyncio.Event()

    async def start(self) -> None:
        """Start the runtime worker and bind the listener.

        With ``port=0`` the OS picks a free port; read the bound one
        back from :attr:`port` (the CLI prints it as ``READY``).
        """
        if self._server is not None:
            raise ServiceError("server already started")
        if not self.runtime.started:
            await self.runtime.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, then drain the runtime."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.runtime.close()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict) or "op" not in request:
                raise ValueError("request must be an object with 'op'")
            return await self._dispatch(request)
        except ReproError as error:
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }
        except (ValueError, KeyError, TypeError) as error:
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }

    async def _dispatch(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = request["op"]
        runtime = self.runtime
        if op == "ping":
            return {"ok": True, "pong": True, "protocol": PROTOCOL_VERSION}
        if op == "register":
            profile = Filter.from_terms(
                request["filter_id"],
                request["terms"],
                owner=request.get("owner", ""),
            )
            await runtime.register(profile)
            return {"ok": True, "filter_id": profile.filter_id}
        if op == "register_batch":
            profiles = [
                Filter.from_terms(
                    f["filter_id"], f["terms"], owner=f.get("owner", "")
                )
                for f in request["filters"]
            ]
            await runtime.command("register_batch", profiles)
            return {"ok": True, "registered": len(profiles)}
        if op == "register_query":
            query = request["query"]
            if not isinstance(query, str):
                raise ValueError("'query' must be a string")
            query_id = request.get("query_id")
            owner = request.get("owner", "")
            if query_id is None:
                item: Any = query
            elif owner:
                item = (str(query_id), query, owner)
            else:
                item = (str(query_id), query)
            ids = await runtime.subscribe([item])
            return {"ok": True, "query_id": ids[0]}
        if op == "unregister":
            removed = await runtime.unregister(request["filter_id"])
            return {"ok": True, "filter_id": removed.filter_id}
        if op == "finalize":
            await runtime.command("finalize")
            return {"ok": True}
        if op == "ingest":
            plan = await runtime.ingest(_decode_ingest(request))
            return {"ok": True, **_plan_summary(plan)}
        if op == "reallocate":
            report = await runtime.command(
                "reallocate",
                request.get("force", False),
                request.get("drift_epsilon"),
            )
            return {"ok": True, "report": _report_tags(report)}
        if op == "stats":
            return {"ok": True, "stats": asdict(runtime.system.stats())}
        if op == "metrics":
            return {"ok": True, "metrics": runtime.prometheus_text()}
        if op == "shutdown":
            self.shutdown_requested.set()
            return {"ok": True, "draining": True}
        raise ValueError(f"unknown op {op!r}")


def _report_tags(report) -> Dict[str, Any]:
    """JSON-safe view of a ReallocationReport (or None)."""
    if report is None:
        return {}
    as_tags = getattr(report, "as_tags", None)
    if as_tags is not None:
        return dict(as_tags())
    return {"repr": repr(report)}
