"""TCP JSON-lines front end for the service runtime.

One request per line, one JSON response per line — a protocol thin
enough for ``nc`` and the stdlib, yet covering the full service
surface: register / unregister / finalize, ingest, reallocate, stats,
and a Prometheus ``metrics`` scrape.  Requests:

```
{"op": "ping"}
{"op": "register", "filter_id": "f1", "terms": ["alpha", "beta"]}
{"op": "register_batch", "filters": [{"filter_id": ..., "terms": [...]}]}
{"op": "register_query", "query": "llm AND (eval OR bench)", "query_id": "q1"}
{"op": "unregister", "filter_id": "f1"}
{"op": "finalize"}
{"op": "ingest", "doc_id": "d1", "terms": ["alpha", "gamma"]}
{"op": "reallocate"}
{"op": "stats"}
{"op": "metrics"}
{"op": "shutdown"}
```

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error":
"<exception class>", "message": "..."}`` — overload surfaces as an
``AdmissionError`` response, not a dropped connection, so clients can
back off deliberately.

The JSON surface is **protocol version 2** (the ``ping`` response
advertises it as ``"protocol": 2``); version 1 is the same wire
format without ``register_query`` and without the version field.
``register_query`` registers a boolean predicate subscription from
query text — ``query_id`` is optional (the server assigns one and
returns it), a malformed or NOT-only query comes back as a
``QueryError`` response.

Binary protocol v3
------------------
The same listener also speaks the length-prefixed binary protocol of
:mod:`repro.serve.wire`, negotiated by the connection's **first
line**: a client opening with the :data:`~repro.serve.wire.HELLO`
line (first byte ``0x00``, impossible in JSON) gets the
:data:`~repro.serve.wire.HELLO_ACK` line back and the connection
switches to binary frames; any other first line is a JSON request
and the connection stays JSON-lines forever.  Against a pre-v3
server the hello is just an unparsable JSON line — the client reads
the ``{"ok": false...`` response and falls back.  The JSON ``ping``
advertises binary support as ``"binary_protocol": 3`` (the
``protocol`` field stays 2, so old clients' newer-server check still
passes).

Binary frames cover the hot ops natively (ping / ingest /
ingest_batch / subscribe) and wrap everything else as a JSON
envelope (opcode 0), so one binary connection reaches the whole
surface.  A corrupt or oversized frame is answered with a typed
``ProtocolError`` frame and the connection survives.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict
from typing import Any, Dict, Optional

from ..errors import ProtocolError, ReproError, ServiceError
from ..model import Document, Filter
from . import wire
from .runtime import ServiceRuntime
from .wire import WireDecoder, WireEncoder

#: JSON wire protocol version advertised in the ``ping`` response
#: (and the CLI's ``READY`` line).  v2 added ``register_query``; v1
#: servers predate the field entirely.  The binary protocol is
#: versioned separately (``wire.BINARY_PROTOCOL_VERSION``).
PROTOCOL_VERSION = 2


def _decode_ingest(request: Dict[str, Any]) -> Document:
    doc_id = request["doc_id"]
    if "term_counts" in request:
        counts = {
            term: int(count)
            for term, count in request["term_counts"].items()
        }
        return Document(
            doc_id=doc_id, terms=frozenset(counts), term_counts=counts
        )
    return Document.from_terms(doc_id, request["terms"])


def _plan_summary(plan) -> Dict[str, Any]:
    return {
        "doc_id": plan.document.doc_id,
        "matched": sorted(plan.matched_filter_ids),
        "fanout": plan.fanout,
        "posting_entries": plan.total_posting_entries,
    }


class ServiceServer:
    """Asyncio TCP server bridging the line protocol to a runtime."""

    def __init__(
        self,
        runtime: ServiceRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        binary_enabled: bool = True,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
    ) -> None:
        self.runtime = runtime
        self.host = host
        self.port = port
        #: Accept binary-hello negotiation.  Disabled, the server
        #: behaves exactly like a pre-v3 JSON-lines server (the hello
        #: line gets a JSON error response and clients fall back) —
        #: which is also how the interop tests emulate one.
        self.binary_enabled = binary_enabled
        self.max_frame_bytes = max_frame_bytes
        self._server: Optional[asyncio.AbstractServer] = None
        #: Set when a ``shutdown`` request asks the process to exit.
        self.shutdown_requested = asyncio.Event()

    async def start(self) -> None:
        """Start the runtime worker and bind the listener.

        With ``port=0`` the OS picks a free port; read the bound one
        back from :attr:`port` (the CLI prints it as ``READY``).
        """
        if self._server is not None:
            raise ServiceError("server already started")
        if not self.runtime.started:
            await self.runtime.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, then drain the runtime."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.runtime.close()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first == wire.HELLO and self.binary_enabled:
                await self._serve_binary(reader, writer)
                return
            # JSON-lines mode (a disabled-binary server answers the
            # hello like any unparsable line, which is exactly what a
            # pre-v3 server would do — clients fall back on it).
            line = first
            while True:
                response = await self._dispatch_line(line)
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
                line = await reader.readline()
                if not line:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_binary(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """The binary frame loop: one reused encoder per connection."""
        enc = WireEncoder()
        writer.write(wire.HELLO_ACK)
        await writer.drain()
        while True:
            try:
                header = await reader.readexactly(4)
            except asyncio.IncompleteReadError:
                return
            length = wire.split_header(header)
            if length > self.max_frame_bytes:
                # Reject but survive: drain the oversized payload so
                # the stream stays frame-aligned, answer with a typed
                # error, and keep serving this connection.
                await self._drain_payload(reader, length)
                writer.write(
                    wire.error_frame(
                        enc,
                        "ProtocolError",
                        f"frame of {length} bytes exceeds the "
                        f"{self.max_frame_bytes}-byte limit",
                    )
                )
                await writer.drain()
                continue
            try:
                payload = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return
            writer.write(await self._dispatch_frame(payload, enc))
            await writer.drain()

    @staticmethod
    async def _drain_payload(
        reader: asyncio.StreamReader, length: int
    ) -> None:
        remaining = length
        while remaining > 0:
            chunk = await reader.read(min(1 << 16, remaining))
            if not chunk:
                return
            remaining -= len(chunk)

    async def _dispatch_frame(
        self, payload: bytes, enc: WireEncoder
    ) -> bytes:
        """Decode, execute, and encode one binary request frame.

        Any decode failure — truncated varints, bad UTF-8, an unknown
        opcode — comes back as a ``ProtocolError`` frame; runtime
        errors keep their own exception names, mirroring the JSON
        surface's typed error objects.
        """
        runtime = self.runtime
        try:
            dec = WireDecoder(payload)
            opcode = dec.u8()
            if opcode == wire.OP_PING:
                enc.reset()
                enc.u8(wire.STATUS_OK)
                enc.varint(wire.BINARY_PROTOCOL_VERSION)
                enc.varint(PROTOCOL_VERSION)
                return enc.frame()
            if opcode == wire.OP_INGEST:
                document = wire.decode_document(dec)
                plan = await runtime.ingest(document)
                enc.reset()
                enc.u8(wire.STATUS_OK)
                self._encode_plan(enc, plan)
                return enc.frame()
            if opcode == wire.OP_INGEST_BATCH:
                documents = [
                    wire.decode_document(dec)
                    for _ in range(dec.varint())
                ]
                plans = await runtime.ingest_batch(documents)
                enc.reset()
                enc.u8(wire.STATUS_OK)
                enc.varint(len(plans))
                for plan in plans:
                    self._encode_plan(enc, plan)
                return enc.frame()
            if opcode == wire.OP_SUBSCRIBE:
                items = [
                    wire.decode_subscribe_item(dec)
                    for _ in range(dec.varint())
                ]
                ids = await runtime.subscribe(items)
                enc.reset()
                enc.u8(wire.STATUS_OK)
                enc.varint(len(ids))
                for assigned in ids:
                    enc.string(assigned)
                return enc.frame()
            if opcode == wire.OP_JSON:
                response = await self._dispatch_line(payload[1:])
                enc.reset()
                enc.u8(wire.STATUS_OK)
                enc.string(json.dumps(response, sort_keys=True))
                return enc.frame()
            raise ProtocolError(f"unknown opcode {opcode:#04x}")
        except ReproError as error:
            return wire.error_frame(
                enc, type(error).__name__, str(error)
            )
        except (ValueError, KeyError, TypeError) as error:
            return wire.error_frame(enc, "ProtocolError", str(error))

    @staticmethod
    def _encode_plan(enc: WireEncoder, plan) -> None:
        wire.encode_plan_summary(
            enc,
            sorted(plan.matched_filter_ids),
            plan.fanout,
            plan.total_posting_entries,
        )

    async def _dispatch_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
            if not isinstance(request, dict) or "op" not in request:
                raise ValueError("request must be an object with 'op'")
            return await self._dispatch(request)
        except ReproError as error:
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }
        except (ValueError, KeyError, TypeError) as error:
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }

    async def _dispatch(
        self, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = request["op"]
        runtime = self.runtime
        if op == "ping":
            response = {
                "ok": True,
                "pong": True,
                "protocol": PROTOCOL_VERSION,
            }
            if self.binary_enabled:
                # Old clients ignore unknown fields, so advertising
                # binary here is compatible; the ``protocol`` field
                # itself must stay 2 or their newer-server check
                # would reject us.
                response["binary_protocol"] = (
                    wire.BINARY_PROTOCOL_VERSION
                )
            return response
        if op == "register":
            profile = Filter.from_terms(
                request["filter_id"],
                request["terms"],
                owner=request.get("owner", ""),
            )
            await runtime.register(profile)
            return {"ok": True, "filter_id": profile.filter_id}
        if op == "register_batch":
            profiles = [
                Filter.from_terms(
                    f["filter_id"], f["terms"], owner=f.get("owner", "")
                )
                for f in request["filters"]
            ]
            await runtime.command("register_batch", profiles)
            return {"ok": True, "registered": len(profiles)}
        if op == "register_query":
            query = request["query"]
            if not isinstance(query, str):
                raise ValueError("'query' must be a string")
            query_id = request.get("query_id")
            owner = request.get("owner", "")
            if query_id is None:
                item: Any = query
            elif owner:
                item = (str(query_id), query, owner)
            else:
                item = (str(query_id), query)
            ids = await runtime.subscribe([item])
            return {"ok": True, "query_id": ids[0]}
        if op == "unregister":
            removed = await runtime.unregister(request["filter_id"])
            return {"ok": True, "filter_id": removed.filter_id}
        if op == "finalize":
            await runtime.command("finalize")
            return {"ok": True}
        if op == "ingest":
            plan = await runtime.ingest(_decode_ingest(request))
            return {"ok": True, **_plan_summary(plan)}
        if op == "ingest_batch":
            documents = [
                _decode_ingest(entry) for entry in request["docs"]
            ]
            plans = await runtime.ingest_batch(documents)
            return {
                "ok": True,
                "plans": [_plan_summary(p) for p in plans],
            }
        if op == "checkpoint":
            report = await runtime.checkpoint()
            return {"ok": True, **report}
        if op == "reallocate":
            report = await runtime.command(
                "reallocate",
                request.get("force", False),
                request.get("drift_epsilon"),
            )
            return {"ok": True, "report": _report_tags(report)}
        if op == "stats":
            return {"ok": True, "stats": asdict(runtime.system.stats())}
        if op == "metrics":
            return {"ok": True, "metrics": runtime.prometheus_text()}
        if op == "shutdown":
            self.shutdown_requested.set()
            return {"ok": True, "draining": True}
        raise ValueError(f"unknown op {op!r}")


def _report_tags(report) -> Dict[str, Any]:
    """JSON-safe view of a ReallocationReport (or None)."""
    if report is None:
        return {}
    as_tags = getattr(report, "as_tags", None)
    if as_tags is not None:
        return dict(as_tags())
    return {"repr": repr(report)}
