"""Blocking client for the service protocols (binary v3 and JSON).

A thin stdlib-socket wrapper over the protocols of
:mod:`repro.serve.server`, for scripts, smoke tests, and operators'
one-liners — anything that does not want an event loop of its own.
Each call sends one request and blocks for its response; error
responses raise :class:`ServiceClientError` carrying the server-side
exception name.

By default the client *negotiates*: it opens with the binary hello
line and, if the server answers with a JSON error (the signature of
a pre-v3 or binary-disabled server), falls back to JSON-lines
transparently.  ``protocol="json"`` skips the hello entirely;
``protocol="binary"`` makes fallback an error instead.  On a binary
connection the hot calls (:meth:`ingest`, :meth:`ingest_batch`,
:meth:`register_query`) go as compact frames through one reused
encode buffer, and everything else rides a JSON envelope frame —
the whole surface works on either transport.
"""

from __future__ import annotations

import json
import socket
from collections import Counter
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..errors import ProtocolError, ServiceError
from . import wire
from .wire import WireDecoder, WireEncoder


class ServiceClientError(ServiceError):
    """An ``{"ok": false}`` response; ``error`` names the server-side
    exception class (e.g. ``AdmissionError``)."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error
        self.message = message


class ServiceClient:
    """One TCP connection speaking the JSON-lines protocol.

    On connect the client pings the server and records the protocol
    version it advertises (:attr:`server_protocol`; a response without
    the field is a v1 server).  A server *newer* than this client is
    rejected outright — its responses may not mean what we think —
    while an older server stays usable for the ops it supports;
    v2-only calls such as :meth:`register_query` raise a clear
    client-side error instead of an opaque server one.
    """

    #: Highest JSON protocol version this client speaks.
    PROTOCOL_VERSION = 2
    #: Highest binary protocol version this client speaks.
    BINARY_PROTOCOL_VERSION = wire.BINARY_PROTOCOL_VERSION

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 10.0,
        protocol: str = "auto",
    ) -> None:
        if protocol not in ("auto", "binary", "json"):
            raise ServiceError(
                f"protocol must be 'auto', 'binary', or 'json', "
                f"got {protocol!r}"
            )
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._file = self._sock.makefile("rwb")
        #: True once binary framing was negotiated.
        self.binary = False
        #: Binary protocol version the server speaks (0 on JSON).
        self.server_binary_protocol = 0
        self._enc = WireEncoder()
        if protocol in ("auto", "binary"):
            self._negotiate_binary(must_succeed=protocol == "binary")
        if self.binary:
            versions = self._binary_ping()
            self.server_binary_protocol, self.server_protocol = versions
            if (
                self.server_binary_protocol
                > self.BINARY_PROTOCOL_VERSION
            ):
                self.close()
                raise ServiceError(
                    f"server speaks binary protocol "
                    f"{self.server_binary_protocol}, newer than this "
                    f"client (max {self.BINARY_PROTOCOL_VERSION}); "
                    "upgrade the client"
                )
        else:
            response = self.request({"op": "ping"})
            self.server_protocol = int(response.get("protocol", 1))
            self.server_binary_protocol = int(
                response.get("binary_protocol", 0)
            )
        if self.server_protocol > self.PROTOCOL_VERSION:
            self.close()
            raise ServiceError(
                f"server speaks protocol {self.server_protocol}, "
                f"newer than this client "
                f"(max {self.PROTOCOL_VERSION}); upgrade the client"
            )

    # -- plumbing ---------------------------------------------------------

    def _negotiate_binary(self, must_succeed: bool) -> None:
        """Send the hello; flip to binary if the server acks.

        A pre-v3 (or binary-disabled) server parses the hello as a
        broken JSON line and answers ``{"ok": false, ...}`` — read
        as the fallback signal.  Anything else on the wire is a
        protocol violation.
        """
        self._file.write(wire.HELLO)
        self._file.flush()
        response = self._file.readline()
        if response == wire.HELLO_ACK:
            self.binary = True
            return
        if must_succeed:
            self.close()
            raise ServiceError(
                "server declined binary negotiation and "
                "protocol='binary' forbids JSON fallback"
            )
        if not response.startswith(b"{"):
            self.close()
            raise ProtocolError(
                f"unexpected negotiation response {response[:40]!r}"
            )
        # JSON error line consumed; the connection continues as
        # plain JSON-lines from here.

    def _binary_ping(self) -> tuple:
        enc = self._enc.reset()
        enc.u8(wire.OP_PING)
        dec = self._roundtrip_frame(enc.frame())
        return dec.varint(), dec.varint()

    def _roundtrip_frame(self, frame: bytes) -> WireDecoder:
        """Send one frame; return a decoder past the OK status byte.

        Error frames raise :class:`ServiceClientError` with the
        server-side exception name, exactly like JSON error objects.
        """
        self._file.write(frame)
        self._file.flush()
        header = self._file.read(4)
        if len(header) < 4:
            raise ServiceError("server closed the connection")
        length = wire.split_header(header)
        if length > wire.MAX_FRAME_BYTES:
            raise ProtocolError(
                f"response frame of {length} bytes exceeds the "
                f"{wire.MAX_FRAME_BYTES}-byte limit"
            )
        payload = self._file.read(length)
        if len(payload) < length:
            raise ServiceError("server closed the connection")
        dec = WireDecoder(payload)
        status = dec.u8()
        if status == wire.STATUS_OK:
            return dec
        if status == wire.STATUS_ERROR:
            error, message = wire.decode_error(dec)
            raise ServiceClientError(error, message)
        raise ProtocolError(f"unknown response status {status:#04x}")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; return the decoded response.

        On a binary connection the object rides a JSON envelope
        frame; either way an error response raises
        :class:`ServiceClientError`.
        """
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        if self.binary:
            enc = self._enc.reset()
            enc.u8(wire.OP_JSON)
            enc.raw(encoded)
            dec = self._roundtrip_frame(enc.frame())
            response = json.loads(dec.string())
        else:
            self._file.write(encoded + b"\n")
            self._file.flush()
            line = self._file.readline()
            if not line:
                raise ServiceError("server closed the connection")
            response = json.loads(line)
        if not response.get("ok", False):
            raise ServiceClientError(
                response.get("error", "unknown"),
                response.get("message", ""),
            )
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- protocol surface -------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def register(
        self, filter_id: str, terms: Iterable[str], owner: str = ""
    ) -> None:
        self.request(
            {
                "op": "register",
                "filter_id": filter_id,
                "terms": sorted(terms),
                "owner": owner,
            }
        )

    def register_batch(
        self, filters: Iterable[Mapping[str, Any]]
    ) -> int:
        response = self.request(
            {"op": "register_batch", "filters": list(filters)}
        )
        return int(response["registered"])

    def register_query(
        self,
        query: str,
        query_id: Optional[str] = None,
        owner: str = "",
    ) -> str:
        """Register a boolean query subscription; returns its id.

        Requires a protocol-v2 server; against a v1 server this
        raises client-side rather than letting the server answer
        with an unintelligible ``unknown op`` error.
        """
        if self.server_protocol < 2:
            raise ServiceError(
                "register_query needs a protocol>=2 server; this one "
                f"speaks protocol {self.server_protocol}"
            )
        if self.binary:
            if query_id is None:
                item: Any = query
            elif owner:
                item = (str(query_id), query, owner)
            else:
                item = (str(query_id), query)
            enc = self._enc.reset()
            enc.u8(wire.OP_SUBSCRIBE)
            enc.varint(1)
            wire.encode_subscribe_item(enc, item)
            dec = self._roundtrip_frame(enc.frame())
            count = dec.varint()
            ids = [dec.string() for _ in range(count)]
            return ids[0]
        payload: Dict[str, Any] = {"op": "register_query", "query": query}
        if query_id is not None:
            payload["query_id"] = query_id
        if owner:
            payload["owner"] = owner
        return str(self.request(payload)["query_id"])

    def unregister(self, filter_id: str) -> None:
        self.request({"op": "unregister", "filter_id": filter_id})

    def finalize(self) -> None:
        self.request({"op": "finalize"})

    @staticmethod
    def _counts(
        terms: Optional[Iterable[str]],
        term_counts: Optional[Mapping[str, int]],
    ) -> Dict[str, int]:
        if term_counts is not None:
            return {t: int(c) for t, c in term_counts.items()}
        if terms is not None:
            return dict(Counter(terms))
        raise ServiceError("ingest needs terms or term_counts")

    def _encode_doc_body(
        self, enc: WireEncoder, doc_id: str, counts: Dict[str, int]
    ) -> None:
        enc.string(doc_id)
        enc.varint(len(counts))
        for term in sorted(counts):
            enc.string(term)
            enc.varint(counts[term])

    def ingest(
        self,
        doc_id: str,
        terms: Optional[Iterable[str]] = None,
        term_counts: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, Any]:
        """Publish one document; returns the plan summary
        (``matched`` filter ids, ``fanout``, ``posting_entries``)."""
        if self.binary:
            counts = self._counts(terms, term_counts)
            enc = self._enc.reset()
            enc.u8(wire.OP_INGEST)
            self._encode_doc_body(enc, doc_id, counts)
            dec = self._roundtrip_frame(enc.frame())
            summary = wire.decode_plan_summary(dec)
            return {"ok": True, "doc_id": doc_id, **summary}
        payload: Dict[str, Any] = {"op": "ingest", "doc_id": doc_id}
        if term_counts is not None:
            payload["term_counts"] = dict(term_counts)
        elif terms is not None:
            payload["terms"] = list(terms)
        else:
            raise ServiceError("ingest needs terms or term_counts")
        return self.request(payload)

    def ingest_batch(
        self, docs: Iterable[Mapping[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Publish documents in one round trip; summaries in order.

        Each entry carries ``doc_id`` plus ``terms`` or
        ``term_counts``, the same shapes :meth:`ingest` takes.
        """
        entries = list(docs)
        if not entries:
            return []
        if self.binary:
            enc = self._enc.reset()
            enc.u8(wire.OP_INGEST_BATCH)
            enc.varint(len(entries))
            for entry in entries:
                counts = self._counts(
                    entry.get("terms"), entry.get("term_counts")
                )
                self._encode_doc_body(enc, entry["doc_id"], counts)
            dec = self._roundtrip_frame(enc.frame())
            plans = wire.decode_plans(dec)
            for entry, plan in zip(entries, plans):
                plan["doc_id"] = entry["doc_id"]
            return plans
        response = self.request(
            {"op": "ingest_batch", "docs": entries}
        )
        return list(response["plans"])

    def reallocate(
        self,
        force: bool = False,
        drift_epsilon: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.request(
            {
                "op": "reallocate",
                "force": force,
                "drift_epsilon": drift_epsilon,
            }
        )["report"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The Prometheus text exposition."""
        return self.request({"op": "metrics"})["metrics"]

    def checkpoint(self) -> Dict[str, Any]:
        """Ask the server to checkpoint its journal; returns the
        summary (lsn, snapshot path, segments removed, seconds)."""
        return self.request({"op": "checkpoint"})

    def matched_ids(self, doc_id: str, terms: Iterable[str]) -> List[str]:
        """Convenience: just the matched filter ids for one document."""
        return list(self.ingest(doc_id, terms=terms)["matched"])

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
