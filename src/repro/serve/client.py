"""Blocking client for the JSON-lines service protocol.

A thin stdlib-socket wrapper over the protocol of
:mod:`repro.serve.server`, for scripts, smoke tests, and operators'
one-liners — anything that does not want an event loop of its own.
Each call sends one request line and blocks for its response line;
error responses raise :class:`ServiceClientError` carrying the
server-side exception name.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..errors import ServiceError


class ServiceClientError(ServiceError):
    """An ``{"ok": false}`` response; ``error`` names the server-side
    exception class (e.g. ``AdmissionError``)."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error
        self.message = message


class ServiceClient:
    """One TCP connection speaking the JSON-lines protocol.

    On connect the client pings the server and records the protocol
    version it advertises (:attr:`server_protocol`; a response without
    the field is a v1 server).  A server *newer* than this client is
    rejected outright — its responses may not mean what we think —
    while an older server stays usable for the ops it supports;
    v2-only calls such as :meth:`register_query` raise a clear
    client-side error instead of an opaque server one.
    """

    #: Highest protocol version this client speaks.
    PROTOCOL_VERSION = 2

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 10.0
    ) -> None:
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._file = self._sock.makefile("rwb")
        response = self.request({"op": "ping"})
        self.server_protocol = int(response.get("protocol", 1))
        if self.server_protocol > self.PROTOCOL_VERSION:
            self.close()
            raise ServiceError(
                f"server speaks protocol {self.server_protocol}, "
                f"newer than this client "
                f"(max {self.PROTOCOL_VERSION}); upgrade the client"
            )

    # -- plumbing ---------------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object; return the decoded response.

        Raises :class:`ServiceClientError` on an error response.
        """
        self._file.write(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok", False):
            raise ServiceClientError(
                response.get("error", "unknown"),
                response.get("message", ""),
            )
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- protocol surface -------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def register(
        self, filter_id: str, terms: Iterable[str], owner: str = ""
    ) -> None:
        self.request(
            {
                "op": "register",
                "filter_id": filter_id,
                "terms": sorted(terms),
                "owner": owner,
            }
        )

    def register_batch(
        self, filters: Iterable[Mapping[str, Any]]
    ) -> int:
        response = self.request(
            {"op": "register_batch", "filters": list(filters)}
        )
        return int(response["registered"])

    def register_query(
        self,
        query: str,
        query_id: Optional[str] = None,
        owner: str = "",
    ) -> str:
        """Register a boolean query subscription; returns its id.

        Requires a protocol-v2 server; against a v1 server this
        raises client-side rather than letting the server answer
        with an unintelligible ``unknown op`` error.
        """
        if self.server_protocol < 2:
            raise ServiceError(
                "register_query needs a protocol>=2 server; this one "
                f"speaks protocol {self.server_protocol}"
            )
        payload: Dict[str, Any] = {"op": "register_query", "query": query}
        if query_id is not None:
            payload["query_id"] = query_id
        if owner:
            payload["owner"] = owner
        return str(self.request(payload)["query_id"])

    def unregister(self, filter_id: str) -> None:
        self.request({"op": "unregister", "filter_id": filter_id})

    def finalize(self) -> None:
        self.request({"op": "finalize"})

    def ingest(
        self,
        doc_id: str,
        terms: Optional[Iterable[str]] = None,
        term_counts: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, Any]:
        """Publish one document; returns the plan summary
        (``matched`` filter ids, ``fanout``, ``posting_entries``)."""
        payload: Dict[str, Any] = {"op": "ingest", "doc_id": doc_id}
        if term_counts is not None:
            payload["term_counts"] = dict(term_counts)
        elif terms is not None:
            payload["terms"] = list(terms)
        else:
            raise ServiceError("ingest needs terms or term_counts")
        return self.request(payload)

    def reallocate(
        self,
        force: bool = False,
        drift_epsilon: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.request(
            {
                "op": "reallocate",
                "force": force,
                "drift_epsilon": drift_epsilon,
            }
        )["report"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The Prometheus text exposition."""
        return self.request({"op": "metrics"})["metrics"]

    def matched_ids(self, doc_id: str, terms: Iterable[str]) -> List[str]:
        """Convenience: just the matched filter ids for one document."""
        return list(self.ingest(doc_id, terms=terms)["matched"])

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
