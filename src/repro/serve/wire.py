"""Binary wire codec shared by the TCP protocol and the WAL.

One compact encoding serves two hot paths:

- the **protocol v3** frames of :mod:`repro.serve.server` /
  :mod:`repro.serve.client` — length-prefixed binary request/response
  frames replacing one ``json.loads`` per line on the socket;
- the **journal record codec** of :mod:`repro.serve.journal` — the
  dominant write-ahead-log records (``publish_batch``,
  ``register_batch``, ``subscribe``) encoded once per batch, with no
  ``sort_keys`` re-canonicalization per append.

The primitives are deliberately boring: unsigned LEB128 varints and
``varint length + UTF-8`` strings, written into a caller-owned
:class:`WireEncoder` so a connection (or the journal) reuses one
growable buffer instead of allocating per message.

Canonical term order
--------------------
Documents and filters are always encoded with their terms in sorted
order.  That makes the *decoded* object construction deterministic —
the same property the JSON journal codec had — so a crash replay that
rebuilds a :class:`~repro.model.Document` from bytes constructs it
exactly like the live apply path did (see
:meth:`repro.serve.journal.JournaledSystem._log_and_apply`).

Frame format (protocol v3)
--------------------------
``<u32 length (little-endian)> <payload>`` where a request payload is
``<u8 opcode> <body>`` and a response payload is ``<u8 status>
<body>`` (status 0 = ok, 1 = error carrying ``str error_name`` +
``str message``).  A connection is negotiated binary by the
:data:`HELLO` / :data:`HELLO_ACK` line exchange; everything after the
ack is frames.  The first hello byte is ``0x00``, which no JSON-lines
request can start with — that single byte is the whole negotiation
trick (see ``repro.serve.server``).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Sequence, Tuple

from ..errors import ProtocolError
from ..model import Document, Filter, Subscription

#: Client → server negotiation line: asks for the binary protocol.
#: Starts with 0x00 so a JSON-lines server answers with a JSON error
#: line (clients fall back on seeing ``{``) instead of hanging.
HELLO = b"\x00MV3\n"
#: Server → client negotiation line: binary accepted, speak frames.
HELLO_ACK = b"\x00MV3 3\n"

#: Protocol version spoken after a successful hello exchange.
BINARY_PROTOCOL_VERSION = 3

#: Hard ceiling on one frame's payload (requests and responses); a
#: length prefix above this is rejected with :class:`ProtocolError`
#: and the oversized payload is drained so the connection survives.
MAX_FRAME_BYTES = 32 << 20

#: Request opcodes.  OP_JSON wraps any v2 JSON request object, so the
#: whole service surface is reachable over one binary connection; the
#: dedicated opcodes cover the hot ops with no JSON at all.
OP_JSON = 0x00
OP_PING = 0x01
OP_INGEST = 0x02
OP_INGEST_BATCH = 0x03
OP_SUBSCRIBE = 0x04

#: Response status bytes.
STATUS_OK = 0x00
STATUS_ERROR = 0x01

_U32 = struct.Struct("<I")

# -- varint / string primitives -------------------------------------------


class WireEncoder:
    """A reusable growable encode buffer.

    ``reset()`` truncates without reallocating, so a long-lived
    connection amortizes the buffer across every frame it sends.
    """

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def reset(self) -> "WireEncoder":
        del self.buf[:]
        return self

    # Primitive writers ---------------------------------------------------

    def u8(self, value: int) -> None:
        self.buf.append(value)

    def varint(self, value: int) -> None:
        if value < 0:
            raise ProtocolError(f"varint cannot encode negative {value}")
        buf = self.buf
        while value >= 0x80:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def string(self, value: str) -> None:
        raw = value.encode("utf-8")
        self.varint(len(raw))
        self.buf += raw

    def raw(self, value: bytes) -> None:
        self.buf += value

    # Framing -------------------------------------------------------------

    def frame(self) -> bytes:
        """The buffer's contents as one length-prefixed frame."""
        return _U32.pack(len(self.buf)) + bytes(self.buf)


class WireDecoder:
    """Sequential reader over one frame's payload bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _need(self, count: int) -> None:
        if self.pos + count > len(self.data):
            raise ProtocolError(
                f"truncated frame: needed {count} bytes at offset "
                f"{self.pos}, have {len(self.data) - self.pos}"
            )

    def u8(self) -> int:
        self._need(1)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        data = self.data
        pos = self.pos
        result = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise ProtocolError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise ProtocolError("varint overflow (more than 9 bytes)")
        self.pos = pos
        return result

    def string(self) -> str:
        length = self.varint()
        self._need(length)
        value = self.data[self.pos:self.pos + length].decode("utf-8")
        self.pos += length
        return value

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)


# -- document / filter / plan codecs --------------------------------------


def encode_document(enc: WireEncoder, document: Document) -> None:
    """``str doc_id, varint n, [str term, varint count]`` sorted."""
    enc.string(document.doc_id)
    counts = document.term_counts
    enc.varint(len(counts))
    for term in sorted(counts):
        enc.string(term)
        enc.varint(counts[term])


def decode_document(dec: WireDecoder) -> Document:
    doc_id = dec.string()
    count = dec.varint()
    counts: Dict[str, int] = {}
    for _ in range(count):
        term = dec.string()
        counts[term] = dec.varint()
    return Document(
        doc_id=doc_id, terms=frozenset(counts), term_counts=counts
    )


def encode_filter(enc: WireEncoder, profile: Filter) -> None:
    enc.string(profile.filter_id)
    enc.string(profile.owner)
    enc.varint(len(profile.terms))
    for term in sorted(profile.terms):
        enc.string(term)


def decode_filter(dec: WireDecoder) -> Filter:
    filter_id = dec.string()
    owner = dec.string()
    terms = [dec.string() for _ in range(dec.varint())]
    return Filter(
        filter_id=filter_id, terms=frozenset(terms), owner=owner
    )


#: Subscribe item kind tags (see ``encode_subscribe_item``).  They
#: mirror the JSON journal codec's ``kind`` strings one to one.
_ITEM_FILTER = 0
_ITEM_QUERY = 1
_ITEM_PAIR = 2
_ITEM_SUBSCRIPTION = 3


def encode_subscribe_item(enc: WireEncoder, item: Any) -> None:
    """Encode one ``subscribe`` item *preserving its input shape*.

    Bare query text stays bare text for the same reason the JSON
    journal codec keeps it bare: replay re-runs ``subscribe`` on the
    decoded items, and resolving auto-assigned ids at encode time
    would desynchronize the id sequence between live and recovered
    twins.
    """
    if isinstance(item, Subscription):
        enc.u8(_ITEM_SUBSCRIPTION)
        enc.string(item.filter_id)
        enc.string(item.owner)
        enc.string(item.query)
        enc.varint(len(item.terms))
        for term in sorted(item.terms):
            enc.string(term)
    elif isinstance(item, Filter):
        enc.u8(_ITEM_FILTER)
        encode_filter(enc, item)
    elif isinstance(item, str):
        enc.u8(_ITEM_QUERY)
        enc.string(item)
    elif isinstance(item, tuple):
        enc.u8(_ITEM_PAIR)
        enc.varint(len(item))
        for value in item:
            enc.string(str(value))
    else:
        raise ProtocolError(
            f"cannot encode subscription item of type "
            f"{type(item).__name__}"
        )


def decode_subscribe_item(dec: WireDecoder) -> Any:
    kind = dec.u8()
    if kind == _ITEM_SUBSCRIPTION:
        filter_id = dec.string()
        owner = dec.string()
        query = dec.string()
        terms = [dec.string() for _ in range(dec.varint())]
        return Subscription(
            filter_id=filter_id,
            terms=frozenset(terms),
            owner=owner,
            query=query,
        )
    if kind == _ITEM_FILTER:
        return decode_filter(dec)
    if kind == _ITEM_QUERY:
        return dec.string()
    if kind == _ITEM_PAIR:
        return tuple(dec.string() for _ in range(dec.varint()))
    raise ProtocolError(f"unknown subscribe item kind {kind}")


def encode_plan_summary(
    enc: WireEncoder,
    matched: Sequence[str],
    fanout: int,
    posting_entries: int,
) -> None:
    """The ``ingest`` response body: matched ids + fanout accounting."""
    enc.varint(len(matched))
    for filter_id in matched:
        enc.string(filter_id)
    enc.varint(fanout)
    enc.varint(posting_entries)


def decode_plan_summary(dec: WireDecoder) -> Dict[str, Any]:
    matched = [dec.string() for _ in range(dec.varint())]
    return {
        "matched": matched,
        "fanout": dec.varint(),
        "posting_entries": dec.varint(),
    }


# -- WAL record codec ------------------------------------------------------

#: First byte of a binary journal record.  JSON records start with
#: ``{`` (0x7B), so one byte discriminates the two formats and old
#: JSON-era journals keep replaying unchanged.
RECORD_MAGIC = 0xB1

_REC_PUBLISH_BATCH = 0x01
_REC_REGISTER_BATCH = 0x02
_REC_SUBSCRIBE = 0x03

#: Ops the binary record codec covers; everything else stays JSON.
BINARY_RECORD_OPS = frozenset(
    {"publish_batch", "register_batch", "subscribe"}
)


def encode_record(enc: WireEncoder, record: Dict[str, Any]) -> bytes:
    """Encode one hot-op journal record into binary bytes.

    ``record`` carries live model objects (``Document`` / ``Filter`` /
    subscribe items), not their JSON dict forms — the codec is the
    canonicalization step, replacing ``json.dumps(..., sort_keys=True)``.
    """
    enc.reset()
    op = record["op"]
    enc.u8(RECORD_MAGIC)
    if op == "publish_batch":
        enc.u8(_REC_PUBLISH_BATCH)
        docs = record["docs"]
        enc.varint(len(docs))
        for document in docs:
            encode_document(enc, document)
    elif op == "register_batch":
        enc.u8(_REC_REGISTER_BATCH)
        profiles = record["filters"]
        enc.varint(len(profiles))
        for profile in profiles:
            encode_filter(enc, profile)
    elif op == "subscribe":
        enc.u8(_REC_SUBSCRIBE)
        chunk_size = record.get("chunk_size")
        enc.varint(0 if chunk_size is None else chunk_size + 1)
        items = record["items"]
        enc.varint(len(items))
        for item in items:
            encode_subscribe_item(enc, item)
    else:
        raise ProtocolError(f"no binary codec for journal op {op!r}")
    return bytes(enc.buf)


def decode_record(payload: bytes) -> Dict[str, Any]:
    """Decode one binary journal record into its apply form.

    The returned dict carries decoded model objects (the journal's
    ``_apply`` accepts both these and the JSON dict forms), built in
    the same canonical sorted-term order the JSON decoder used — so
    binary replay constructs bit-identical inputs.
    """
    dec = WireDecoder(payload)
    if dec.u8() != RECORD_MAGIC:
        raise ProtocolError("not a binary journal record")
    tag = dec.u8()
    if tag == _REC_PUBLISH_BATCH:
        return {
            "op": "publish_batch",
            "docs": [
                decode_document(dec) for _ in range(dec.varint())
            ],
        }
    if tag == _REC_REGISTER_BATCH:
        return {
            "op": "register_batch",
            "filters": [
                decode_filter(dec) for _ in range(dec.varint())
            ],
        }
    if tag == _REC_SUBSCRIBE:
        raw_chunk = dec.varint()
        chunk_size = None if raw_chunk == 0 else raw_chunk - 1
        return {
            "op": "subscribe",
            "chunk_size": chunk_size,
            "items": [
                decode_subscribe_item(dec) for _ in range(dec.varint())
            ],
        }
    raise ProtocolError(f"unknown binary record tag {tag:#04x}")


# -- frame helpers ---------------------------------------------------------


def error_frame(enc: WireEncoder, error: str, message: str) -> bytes:
    enc.reset()
    enc.u8(STATUS_ERROR)
    enc.string(error)
    enc.string(message)
    return enc.frame()


def split_header(header: bytes) -> int:
    """Payload length from a 4-byte frame header."""
    if len(header) != 4:
        raise ProtocolError("truncated frame header")
    return _U32.unpack(header)[0]


def pack_length(length: int) -> bytes:
    return _U32.pack(length)


def decode_error(dec: WireDecoder) -> Tuple[str, str]:
    """The (error name, message) pair of a STATUS_ERROR body."""
    return dec.string(), dec.string()


def decode_plans(dec: WireDecoder) -> List[Dict[str, Any]]:
    return [decode_plan_summary(dec) for _ in range(dec.varint())]
