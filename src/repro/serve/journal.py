"""Write-ahead journalling of system mutations, and crash recovery.

:class:`JournaledSystem` wraps one dissemination system and logs every
state-changing operation — registration, unregistration, allocation
refresh, frequency seeding, and document publication — to a
:class:`~repro.cluster.storage.WalWriter` *before* applying it.  The
first record of a journal captures the system's construction
parameters, so a crashed node restarts by rebuilding a fresh system
from that record and replaying everything after it.

Determinism is the whole point: a system is pure state machine over
its operation sequence (all randomness flows from the seeded RNGs the
constructor creates), so a recovered instance is **bit-identical** to
a twin that never crashed — same match sets, same stored replica
counts, same RNG stream positions.  The crash-recovery tests assert
exactly this.

Two details make the equivalence structural rather than hopeful:

- operations are applied *from their decoded journal form* even on
  the live path, so live apply and replay apply execute identical
  inputs;
- replay tracks the last applied lsn and skips records at or below
  it, so replaying a log twice (or resuming a partially replayed
  one) is idempotent.

Note the failure contract of log-before-apply: a record is durable
before its operation runs, so an operation that *raises* after
logging (duplicate registration, unregistering an unknown filter id)
raises the same exception again on replay.  The live service
survived that error — the client saw the failure and the node kept
running — so recovery survives it the same way: replay catches the
application-level exception and moves past the record.  Because the
apply path is deterministic, the re-raised error leaves state exactly
as the original did, preserving bit-identity.  Only WAL-integrity
errors (:class:`~repro.errors.WalError` and subclasses) abort
recovery.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..cluster.storage import WalReader, WalWriter, _list_segments
from ..errors import WalError
from ..experiments.harness import build_cluster, make_system
from ..model import Document, Filter, Subscription


def _encode_filter(profile: Filter) -> Dict[str, Any]:
    return {
        "filter_id": profile.filter_id,
        "terms": sorted(profile.terms),
        "owner": profile.owner,
    }


def _decode_filter(data: Dict[str, Any]) -> Filter:
    return Filter.from_terms(
        data["filter_id"], data["terms"], owner=data.get("owner", "")
    )


def _encode_subscribe_item(item: Any) -> Dict[str, Any]:
    """Encode one ``subscribe`` item *preserving its input shape*.

    Replay re-runs ``subscribe`` on the decoded items, so bare query
    text must stay bare text — resolving auto-assigned ids at encode
    time would desynchronize the subscription-id sequence between the
    live system and its recovered twin.
    """
    if isinstance(item, Subscription):
        return {
            "kind": "subscription",
            "filter_id": item.filter_id,
            "terms": sorted(item.terms),
            "owner": item.owner,
            "query": item.query,
        }
    if isinstance(item, Filter):
        return {"kind": "filter", **_encode_filter(item)}
    if isinstance(item, str):
        return {"kind": "query", "text": item}
    if isinstance(item, tuple):
        return {"kind": "pair", "values": [str(v) for v in item]}
    raise TypeError(
        f"cannot journal subscription item of type {type(item).__name__}"
    )


def _decode_subscribe_item(data: Dict[str, Any]) -> Any:
    kind = data["kind"]
    if kind == "subscription":
        return Subscription(
            filter_id=data["filter_id"],
            terms=frozenset(data["terms"]),
            owner=data.get("owner", ""),
            query=data.get("query", ""),
        )
    if kind == "filter":
        return _decode_filter(data)
    if kind == "query":
        return data["text"]
    if kind == "pair":
        return tuple(data["values"])
    raise WalError(f"unknown subscribe item kind {kind!r}")


def _encode_document(document: Document) -> Dict[str, Any]:
    return {
        "doc_id": document.doc_id,
        "term_counts": {
            term: document.term_counts[term]
            for term in sorted(document.terms)
        },
    }


def _decode_document(data: Dict[str, Any]) -> Document:
    counts = data["term_counts"]
    return Document(
        doc_id=data["doc_id"],
        terms=frozenset(counts),
        term_counts=dict(counts),
    )


class JournaledSystem:
    """A dissemination system with log-before-apply durability.

    Opening a directory that already holds journal segments recovers:
    the torn tail (if any) is repaired, the ``setup`` record rebuilds
    the system, and every following record is replayed.  Opening an
    empty directory — or one whose segments hold no durable records,
    the trace of a crash before the first fsync — builds a fresh
    system from the keyword arguments and logs them as the ``setup``
    record.

    The wrapped system is :attr:`system`; reads (``stats()``,
    ``match`` inspection, metrics) go straight to it.  Writes must go
    through the journal methods here — mutating :attr:`system`
    directly bypasses the log and forfeits recovery.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        scheme: str = "move",
        num_nodes: int = 8,
        node_capacity: int = 2_000,
        seed: int = 0,
        threshold: Optional[float] = None,
        segment_max_bytes: int = 1 << 20,
        fsync_interval: int = 1,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.last_applied_lsn = 0
        #: Records whose replay raised an application-level error and
        #: was skipped (each corresponds to a live operation that also
        #: failed); nonzero after a recovery over such a history.
        self.replay_skipped = 0
        recovered = False
        if _list_segments(self.directory):
            reader = WalReader(self.directory)
            reader.repair()
            recovered = self._recover(reader)
        if not recovered:
            self.setup = {
                "scheme": scheme,
                "num_nodes": num_nodes,
                "node_capacity": node_capacity,
                "seed": seed,
                "threshold": threshold,
            }
            self.system = self._build(self.setup)
        self._writer = WalWriter(
            self.directory,
            segment_max_bytes=segment_max_bytes,
            fsync_interval=fsync_interval,
        )
        if not recovered:
            self._writer.append(
                json.dumps(
                    {"op": "setup", **self.setup}, sort_keys=True
                ).encode("utf-8")
            )
            self.last_applied_lsn = self._writer.next_lsn - 1

    # -- construction / recovery -----------------------------------------

    @staticmethod
    def _build(setup: Dict[str, Any]):
        cluster, config = build_cluster(
            setup["num_nodes"],
            setup["node_capacity"],
            seed=setup["seed"],
        )
        return make_system(
            setup["scheme"], cluster, config, threshold=setup["threshold"]
        )

    def _recover(self, reader: WalReader) -> bool:
        """Rebuild from the journal; False if it holds no records.

        Segment files with zero replayable records are the trace of a
        crash between creating the first segment and making the setup
        record durable — no state was ever recoverable, so the caller
        falls back to a fresh start instead of refusing to boot.
        """
        records = iter(reader.replay())
        try:
            lsn, payload = next(records)
        except StopIteration:
            return False
        first = json.loads(payload)
        if first.get("op") != "setup":
            raise WalError(
                f"{self.directory}: first journal record is "
                f"{first.get('op')!r}, expected 'setup'"
            )
        self.setup = {k: v for k, v in first.items() if k != "op"}
        self.system = self._build(self.setup)
        self.last_applied_lsn = lsn
        for lsn, payload in records:
            self.replay_record(lsn, json.loads(payload))
        return True

    def replay_record(self, lsn: int, record: Dict[str, Any]) -> bool:
        """Apply one decoded record; False if already applied.

        Skipping ``lsn <= last_applied_lsn`` is what makes double
        replay idempotent.  An application-level exception out of the
        apply (a duplicate registration, an unknown filter id) is
        caught and the record skipped: the live node logged the
        record, saw the same deterministic error, answered the client
        with it, and kept running — so must recovery.  WAL-integrity
        errors still propagate.
        """
        if lsn <= self.last_applied_lsn:
            return False
        try:
            self._apply(record)
        except WalError:
            raise
        except Exception:
            self.replay_skipped += 1
        self.last_applied_lsn = lsn
        return True

    # -- the single apply path --------------------------------------------

    def _apply(self, record: Dict[str, Any]) -> Any:
        op = record["op"]
        system = self.system
        if op == "register":
            return system._admit_one(_decode_filter(record["filter"]))
        if op == "register_batch":
            return system._admit_batch(
                [_decode_filter(f) for f in record["filters"]]
            )
        if op == "subscribe":
            return system.subscribe(
                [_decode_subscribe_item(i) for i in record["items"]],
                chunk_size=record.get("chunk_size"),
            )
        if op == "unregister":
            return system.unregister(record["filter_id"])
        if op == "finalize":
            return system.finalize_registration()
        if op == "seed_frequencies":
            return system.seed_frequencies(
                [_decode_document(d) for d in record["docs"]]
            )
        if op == "reallocate":
            return system.reallocate(
                force=record["force"],
                drift_epsilon=record["drift_epsilon"],
            )
        if op == "rebalance":
            return system.rebalance()
        if op == "publish_batch":
            return system.publish_batch(
                [_decode_document(d) for d in record["docs"]]
            )
        raise WalError(f"unknown journal op {op!r}")

    def _log_and_apply(self, record: Dict[str, Any]) -> Any:
        payload = json.dumps(record, sort_keys=True).encode("utf-8")
        lsn = self._writer.append(payload)
        try:
            # Apply the *decoded* form so the live path and crash
            # replay execute identical inputs.
            return self._apply(json.loads(payload))
        finally:
            # The record is in the log whether or not apply raised;
            # the cursor tracks the log, and replay_record survives
            # failed records the same way the live path did.
            self.last_applied_lsn = lsn

    # -- journalled mutations ---------------------------------------------

    def register(self, profile: Filter) -> None:
        # Wire-op application surface: the v1 ``register`` op lands
        # here, so it stays warning-free (unlike the system shim).
        self._log_and_apply(
            {"op": "register", "filter": _encode_filter(profile)}
        )

    def register_batch(self, profiles: Iterable[Filter]) -> None:
        batch = [_encode_filter(p) for p in profiles]
        if not batch:
            return
        self._log_and_apply({"op": "register_batch", "filters": batch})

    # The runtime command table targets the non-warning admission
    # names uniformly across journalled and bare backends.
    _admit_one = register
    _admit_batch = register_batch

    def subscribe(
        self, items: Iterable[Any], *, chunk_size: Optional[int] = None
    ) -> List[str]:
        encoded = [_encode_subscribe_item(i) for i in items]
        if not encoded:
            return []
        return self._log_and_apply(
            {
                "op": "subscribe",
                "items": encoded,
                "chunk_size": chunk_size,
            }
        )

    def unregister(self, filter_id: str) -> Filter:
        return self._log_and_apply(
            {"op": "unregister", "filter_id": filter_id}
        )

    def finalize_registration(self) -> None:
        self._log_and_apply({"op": "finalize"})

    def seed_frequencies(self, corpus: Sequence[Document]) -> None:
        self._require("seed_frequencies")
        self._log_and_apply(
            {
                "op": "seed_frequencies",
                "docs": [_encode_document(d) for d in corpus],
            }
        )

    def reallocate(
        self,
        force: bool = False,
        drift_epsilon: Optional[float] = None,
    ):
        self._require("reallocate")
        return self._log_and_apply(
            {
                "op": "reallocate",
                "force": force,
                "drift_epsilon": drift_epsilon,
            }
        )

    def rebalance(self) -> int:
        self._require("rebalance")
        return self._log_and_apply({"op": "rebalance"})

    def publish_batch(self, documents: Sequence[Document]) -> List:
        if not documents:
            return []
        return self._log_and_apply(
            {
                "op": "publish_batch",
                "docs": [_encode_document(d) for d in documents],
            }
        )

    def publish(self, document: Document):
        return self.publish_batch([document])[0]

    def _require(self, op: str) -> None:
        if not hasattr(self.system, op):
            raise WalError(
                f"scheme {self.setup['scheme']!r} does not support "
                f"{op!r}"
            )

    # -- durability plumbing ----------------------------------------------

    def sync(self) -> None:
        """Force the batched fsync (durability barrier)."""
        self._writer.sync()

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "JournaledSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
