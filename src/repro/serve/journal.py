"""Write-ahead journalling of system mutations, and crash recovery.

:class:`JournaledSystem` wraps one dissemination system and logs every
state-changing operation — registration, unregistration, allocation
refresh, frequency seeding, and document publication — to a
:class:`~repro.cluster.storage.WalWriter` *before* applying it.  The
first record of a journal captures the system's construction
parameters, so a crashed node restarts by rebuilding a fresh system
from that record and replaying everything after it.

Determinism is the whole point: a system is pure state machine over
its operation sequence (all randomness flows from the seeded RNGs the
constructor creates), so a recovered instance is **bit-identical** to
a twin that never crashed — same match sets, same stored replica
counts, same RNG stream positions.  The crash-recovery tests assert
exactly this.

Two details make the equivalence structural rather than hopeful:

- operations are applied *from their decoded journal form* even on
  the live path, so live apply and replay apply execute identical
  inputs;
- replay tracks the last applied lsn and skips records at or below
  it, so replaying a log twice (or resuming a partially replayed
  one) is idempotent.

Note the failure contract of log-before-apply: a record is durable
before its operation runs, so an operation that *raises* after
logging (duplicate registration, unregistering an unknown filter id)
raises the same exception again on replay.  The live service
survived that error — the client saw the failure and the node kept
running — so recovery survives it the same way: replay catches the
application-level exception and moves past the record.  Because the
apply path is deterministic, the re-raised error leaves state exactly
as the original did, preserving bit-identity.  Only WAL-integrity
errors (:class:`~repro.errors.WalError` and subclasses) abort
recovery.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..cluster.storage import WalReader, WalWriter, _list_segments
from ..errors import SnapshotError, WalCorruptionError, WalError
from ..experiments.harness import build_cluster, make_system
from ..model import Document, Filter, Subscription
from ..obs import NULL_TRACER, get_default_tracer
from ..sim.engine import PERF_CLOCK
from .snapshot import (
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    snapshot_lsn,
    write_snapshot,
)
from .wire import RECORD_MAGIC, WireEncoder, decode_record, encode_record


def _encode_filter(profile: Filter) -> Dict[str, Any]:
    return {
        "filter_id": profile.filter_id,
        "terms": sorted(profile.terms),
        "owner": profile.owner,
    }


def _decode_filter(data: Dict[str, Any]) -> Filter:
    return Filter.from_terms(
        data["filter_id"], data["terms"], owner=data.get("owner", "")
    )


def _encode_subscribe_item(item: Any) -> Dict[str, Any]:
    """Encode one ``subscribe`` item *preserving its input shape*.

    Replay re-runs ``subscribe`` on the decoded items, so bare query
    text must stay bare text — resolving auto-assigned ids at encode
    time would desynchronize the subscription-id sequence between the
    live system and its recovered twin.
    """
    if isinstance(item, Subscription):
        return {
            "kind": "subscription",
            "filter_id": item.filter_id,
            "terms": sorted(item.terms),
            "owner": item.owner,
            "query": item.query,
        }
    if isinstance(item, Filter):
        return {"kind": "filter", **_encode_filter(item)}
    if isinstance(item, str):
        return {"kind": "query", "text": item}
    if isinstance(item, tuple):
        return {"kind": "pair", "values": [str(v) for v in item]}
    raise TypeError(
        f"cannot journal subscription item of type {type(item).__name__}"
    )


def _decode_subscribe_item(data: Dict[str, Any]) -> Any:
    kind = data["kind"]
    if kind == "subscription":
        return Subscription(
            filter_id=data["filter_id"],
            terms=frozenset(data["terms"]),
            owner=data.get("owner", ""),
            query=data.get("query", ""),
        )
    if kind == "filter":
        return _decode_filter(data)
    if kind == "query":
        return data["text"]
    if kind == "pair":
        return tuple(data["values"])
    raise WalError(f"unknown subscribe item kind {kind!r}")


def _encode_document(document: Document) -> Dict[str, Any]:
    return {
        "doc_id": document.doc_id,
        "term_counts": {
            term: document.term_counts[term]
            for term in sorted(document.terms)
        },
    }


def _decode_document(data: Dict[str, Any]) -> Document:
    counts = data["term_counts"]
    return Document(
        doc_id=data["doc_id"],
        terms=frozenset(counts),
        term_counts=dict(counts),
    )


def _decode_payload(payload: bytes) -> Dict[str, Any]:
    """Decode one journal payload, JSON or binary.

    One byte discriminates: binary records start with
    :data:`~repro.serve.wire.RECORD_MAGIC`, JSON records with ``{``.
    Journals written before the binary codec existed are all-JSON and
    replay unchanged.
    """
    if payload and payload[0] == RECORD_MAGIC:
        return decode_record(payload)
    return json.loads(payload)


def _is_sorted(terms: Sequence[str]) -> bool:
    return all(terms[i] <= terms[i + 1] for i in range(len(terms) - 1))


def _canonical_document(document: Document) -> Document:
    """``document`` with term_counts in sorted insertion order.

    The binary journal path applies the *same object* it encodes, so
    the object must already be in the canonical order a replay decode
    will reconstruct — otherwise live and recovered twins would
    iterate ``term_counts`` differently.  Documents decoded by the
    wire protocol arrive sorted already, so the common service path
    takes the no-copy branch.
    """
    counts = document.term_counts
    terms = list(counts)
    if _is_sorted(terms):
        return document
    ordered = {term: counts[term] for term in sorted(terms)}
    return Document(
        doc_id=document.doc_id,
        terms=frozenset(ordered),
        term_counts=ordered,
    )


def _canonical_subscribe_item(item: Any) -> Any:
    """Match the JSON codec's normalization for the binary path.

    Tuples are str-ified at encode time (the JSON codec did the same
    via ``[str(v) for v in item]``), so the live apply must see the
    str-ified form too.  Every other item kind round-trips as-is.
    """
    if isinstance(item, tuple):
        return tuple(str(v) for v in item)
    return item


class JournaledSystem:
    """A dissemination system with log-before-apply durability.

    Opening a directory that already holds journal segments recovers:
    the torn tail (if any) is repaired, the ``setup`` record rebuilds
    the system, and every following record is replayed.  Opening an
    empty directory — or one whose segments hold no durable records,
    the trace of a crash before the first fsync — builds a fresh
    system from the keyword arguments and logs them as the ``setup``
    record.

    The wrapped system is :attr:`system`; reads (``stats()``,
    ``match`` inspection, metrics) go straight to it.  Writes must go
    through the journal methods here — mutating :attr:`system`
    directly bypasses the log and forfeits recovery.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        scheme: str = "move",
        num_nodes: int = 8,
        node_capacity: int = 2_000,
        seed: int = 0,
        threshold: Optional[float] = None,
        segment_max_bytes: int = 1 << 20,
        fsync_interval: int = 1,
        snapshot_retain: int = 2,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if snapshot_retain < 1:
            raise WalError(
                f"snapshot_retain must be >= 1, got {snapshot_retain}"
            )
        self.snapshot_retain = snapshot_retain
        self.last_applied_lsn = 0
        #: Records whose replay raised an application-level error and
        #: was skipped (each corresponds to a live operation that also
        #: failed); nonzero after a recovery over such a history.
        self.replay_skipped = 0
        #: Records actually applied by the last recovery (with a
        #: snapshot boot, only the post-checkpoint tail).
        self.recovery_replayed_records = 0
        #: Wall seconds the last recovery took (0.0 for a fresh boot).
        self.recovery_seconds = 0.0
        #: lsn of the snapshot recovery booted from, or None.
        self.recovered_from_snapshot_lsn: Optional[int] = None
        #: Snapshot files recovery tried and rejected as unreadable.
        self.snapshots_skipped = 0
        #: Checkpoint accounting, updated by :meth:`checkpoint`.
        self.checkpoints = 0
        self.last_checkpoint_lsn = 0
        self.last_checkpoint_seconds = 0.0
        self.last_checkpoint_bytes = 0
        self.last_checkpoint_segments_removed = 0
        #: Reused encode buffer for the binary record codec.
        self._enc = WireEncoder()
        recovered = False
        if _list_segments(self.directory) or list_snapshots(
            self.directory
        ):
            recovered = self._recover()
        if not recovered:
            self.setup = {
                "scheme": scheme,
                "num_nodes": num_nodes,
                "node_capacity": node_capacity,
                "seed": seed,
                "threshold": threshold,
            }
            self.system = self._build(self.setup)
        self._writer = WalWriter(
            self.directory,
            segment_max_bytes=segment_max_bytes,
            fsync_interval=fsync_interval,
        )
        if not recovered:
            self._writer.append(
                json.dumps(
                    {"op": "setup", **self.setup}, sort_keys=True
                ).encode("utf-8")
            )
            self.last_applied_lsn = self._writer.next_lsn - 1

    # -- construction / recovery -----------------------------------------

    @staticmethod
    def _build(setup: Dict[str, Any]):
        cluster, config = build_cluster(
            setup["num_nodes"],
            setup["node_capacity"],
            seed=setup["seed"],
        )
        return make_system(
            setup["scheme"], cluster, config, threshold=setup["threshold"]
        )

    def _recover(self) -> bool:
        """Rebuild from snapshots + journal; False if neither exists.

        Boots from the newest loadable snapshot and replays only the
        WAL tail above its lsn; an unreadable snapshot is skipped in
        favour of the next older one, and with no usable snapshot the
        full-history replay runs as before.  Segment files with zero
        replayable records (and no snapshot) are the trace of a crash
        before the setup record was durable — the caller falls back
        to a fresh start instead of refusing to boot.
        """
        started = time.perf_counter()
        reader = WalReader(self.directory)
        reader.repair()
        tracer = get_default_tracer()
        with tracer.span("recovery", directory=str(self.directory)):
            if self._recover_from_snapshot(reader):
                self.recovery_seconds = time.perf_counter() - started
                return True
            if self._recover_full(reader):
                self.recovery_seconds = time.perf_counter() - started
                return True
        return False

    def _recover_from_snapshot(self, reader: WalReader) -> bool:
        for path in reversed(list_snapshots(self.directory)):
            try:
                lsn, payload = load_snapshot(path)
                setup, system = pickle.loads(payload)
            except SnapshotError:
                self.snapshots_skipped += 1
                continue
            except Exception:
                # CRC passed but the pickle won't load (e.g. state
                # written by an incompatible code version) — same
                # treatment as damage: try the next older snapshot.
                self.snapshots_skipped += 1
                continue
            self.setup = setup
            self.system = system
            # The snapshot was pickled with neutral attachments; give
            # the revived system the process's current tracer (the
            # runtime re-installs its clock on start()).
            self.system.tracer = get_default_tracer()
            self.last_applied_lsn = lsn
            self.recovered_from_snapshot_lsn = lsn
            self._replay_tail(reader, after=lsn)
            return True
        return False

    def _recover_full(self, reader: WalReader) -> bool:
        records = iter(reader.replay())
        try:
            lsn, payload = next(records)
        except StopIteration:
            return False
        first = json.loads(payload)
        if first.get("op") != "setup":
            raise WalError(
                f"{self.directory}: first journal record is "
                f"{first.get('op')!r}, expected 'setup' — with no "
                "usable snapshot, a truncated journal cannot be "
                "replayed from scratch"
            )
        self.setup = {k: v for k, v in first.items() if k != "op"}
        self.system = self._build(self.setup)
        self.last_applied_lsn = lsn
        for lsn, payload in records:
            if self.replay_record(lsn, _decode_payload(payload)):
                self.recovery_replayed_records += 1
        return True

    def _replay_tail(self, reader: WalReader, after: int) -> None:
        """Replay every record above ``after``, verifying contiguity.

        The writer assigns lsns with no holes, so the tail above a
        snapshot must start at ``after + 1`` and increase by exactly
        one — a gap means segments holding unreplayed records were
        lost (e.g. truncation outran the snapshots that justified it)
        and silently skipping it would diverge from the uncrashed
        twin.  Records at or below ``after`` are skipped without even
        decoding their payloads.
        """
        expected = after + 1
        for lsn, payload in reader.replay():
            if lsn <= after:
                continue
            if lsn != expected:
                raise WalCorruptionError(
                    f"{self.directory}: journal tail jumps from lsn "
                    f"{expected - 1} to {lsn}; records in between "
                    "were lost"
                )
            expected += 1
            if self.replay_record(lsn, _decode_payload(payload)):
                self.recovery_replayed_records += 1

    def replay_record(self, lsn: int, record: Dict[str, Any]) -> bool:
        """Apply one decoded record; False if already applied.

        Skipping ``lsn <= last_applied_lsn`` is what makes double
        replay idempotent.  An application-level exception out of the
        apply (a duplicate registration, an unknown filter id) is
        caught and the record skipped: the live node logged the
        record, saw the same deterministic error, answered the client
        with it, and kept running — so must recovery.  WAL-integrity
        errors still propagate.
        """
        if lsn <= self.last_applied_lsn:
            return False
        try:
            self._apply(record)
        except WalError:
            raise
        except Exception:
            self.replay_skipped += 1
        self.last_applied_lsn = lsn
        return True

    # -- the single apply path --------------------------------------------

    def _apply(self, record: Dict[str, Any]) -> Any:
        """Apply one record, in JSON-dict or binary-decoded form.

        The hot ops arrive in two shapes: the JSON codec's dicts (from
        old journals and the non-hot live path) and the binary codec's
        model objects (from binary journals and the binary live path).
        Both shapes construct identical apply inputs — the binary
        decoder builds documents/filters in the same canonical sorted
        order the JSON decoder does.
        """
        op = record["op"]
        system = self.system
        if op == "publish_batch":
            docs = record["docs"]
            if docs and isinstance(docs[0], dict):
                docs = [_decode_document(d) for d in docs]
            return system.publish_batch(docs)
        if op == "register":
            return system._admit_one(_decode_filter(record["filter"]))
        if op == "register_batch":
            profiles = record["filters"]
            if profiles and isinstance(profiles[0], dict):
                profiles = [_decode_filter(f) for f in profiles]
            return system._admit_batch(profiles)
        if op == "subscribe":
            items = [
                _decode_subscribe_item(i) if isinstance(i, dict) else i
                for i in record["items"]
            ]
            return system.subscribe(
                items, chunk_size=record.get("chunk_size")
            )
        if op == "unregister":
            return system.unregister(record["filter_id"])
        if op == "finalize":
            return system.finalize_registration()
        if op == "seed_frequencies":
            return system.seed_frequencies(
                [_decode_document(d) for d in record["docs"]]
            )
        if op == "reallocate":
            return system.reallocate(
                force=record["force"],
                drift_epsilon=record["drift_epsilon"],
            )
        if op == "rebalance":
            return system.rebalance()
        if op == "checkpoint":
            # A marker, not a mutation: it records that a snapshot at
            # record["lsn"] exists so operators can correlate the log
            # with snapshot files.  Replay applies nothing.
            return None
        raise WalError(f"unknown journal op {op!r}")

    def _log_and_apply(self, record: Dict[str, Any]) -> Any:
        # The encoders above emit only JSON-pure values with sorted
        # structures, so ``record == json.loads(json.dumps(record))``
        # holds and the record can be applied directly — one encode
        # for the log, no sort_keys re-canonicalization, no decode
        # round-trip on the live path.  Replay still applies the
        # loads() form, which is the same structure by construction.
        payload = json.dumps(record).encode("utf-8")
        lsn = self._writer.append(payload)
        try:
            return self._apply(record)
        finally:
            # The record is in the log whether or not apply raised;
            # the cursor tracks the log, and replay_record survives
            # failed records the same way the live path did.
            self.last_applied_lsn = lsn

    def _log_binary_and_apply(self, record: Dict[str, Any]) -> Any:
        """Hot-op twin of :meth:`_log_and_apply`: binary record codec.

        ``record`` carries live model objects; the codec canonicalizes
        them into bytes once, and the same objects are applied — valid
        because callers pre-canonicalize (sorted term order, str-ified
        tuples) so encode → decode reconstructs equal inputs.
        """
        payload = encode_record(self._enc, record)
        lsn = self._writer.append(payload)
        try:
            return self._apply(record)
        finally:
            self.last_applied_lsn = lsn

    # -- journalled mutations ---------------------------------------------

    def register(self, profile: Filter) -> None:
        # Wire-op application surface: the v1 ``register`` op lands
        # here, so it stays warning-free (unlike the system shim).
        self._log_and_apply(
            {"op": "register", "filter": _encode_filter(profile)}
        )

    def register_batch(self, profiles: Iterable[Filter]) -> None:
        batch = list(profiles)
        if not batch:
            return
        self._log_binary_and_apply(
            {"op": "register_batch", "filters": batch}
        )

    # The runtime command table targets the non-warning admission
    # names uniformly across journalled and bare backends.
    _admit_one = register
    _admit_batch = register_batch

    def subscribe(
        self, items: Iterable[Any], *, chunk_size: Optional[int] = None
    ) -> List[str]:
        canonical = [_canonical_subscribe_item(i) for i in items]
        if not canonical:
            return []
        return self._log_binary_and_apply(
            {
                "op": "subscribe",
                "items": canonical,
                "chunk_size": chunk_size,
            }
        )

    def unregister(self, filter_id: str) -> Filter:
        return self._log_and_apply(
            {"op": "unregister", "filter_id": filter_id}
        )

    def finalize_registration(self) -> None:
        self._log_and_apply({"op": "finalize"})

    def seed_frequencies(self, corpus: Sequence[Document]) -> None:
        self._require("seed_frequencies")
        self._log_and_apply(
            {
                "op": "seed_frequencies",
                "docs": [_encode_document(d) for d in corpus],
            }
        )

    def reallocate(
        self,
        force: bool = False,
        drift_epsilon: Optional[float] = None,
    ):
        self._require("reallocate")
        return self._log_and_apply(
            {
                "op": "reallocate",
                "force": force,
                "drift_epsilon": drift_epsilon,
            }
        )

    def rebalance(self) -> int:
        self._require("rebalance")
        return self._log_and_apply({"op": "rebalance"})

    def publish_batch(self, documents: Sequence[Document]) -> List:
        if not documents:
            return []
        return self._log_binary_and_apply(
            {
                "op": "publish_batch",
                "docs": [_canonical_document(d) for d in documents],
            }
        )

    def publish(self, document: Document):
        return self.publish_batch([document])[0]

    def _require(self, op: str) -> None:
        if not hasattr(self.system, op):
            raise WalError(
                f"scheme {self.setup['scheme']!r} does not support "
                f"{op!r}"
            )

    # -- checkpoint / compaction -------------------------------------------

    def _pickle_state(self) -> bytes:
        """Pickle ``(setup, system)`` with neutral attachments.

        The service runtime installs its asyncio event-loop clock on
        the pipeline and may install a live tracer with sink
        callables; neither survives pickling.  Both are swapped for
        process-neutral defaults for the duration of the dump and
        restored after — the snapshot captures pure dissemination
        state (slab columns, postings, RNG streams), never plumbing.
        """
        system = self.system
        engine = getattr(system, "_engine", None)
        saved_clock = engine.clock if engine is not None else None
        saved_tracer = getattr(system, "tracer", None)
        try:
            if engine is not None:
                engine.clock = PERF_CLOCK
            if saved_tracer is not None:
                system.tracer = NULL_TRACER
            return pickle.dumps(
                (self.setup, system),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        finally:
            if engine is not None:
                engine.clock = saved_clock
            if saved_tracer is not None:
                system.tracer = saved_tracer

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot state, mark the log, and drop replayed segments.

        The sequence is crash-safe at every point:

        1. ``sync()`` — everything at or below the snapshot lsn is
           durable before the snapshot can claim it;
        2. write the snapshot (temp + fsync + atomic rename) — a
           crash mid-write leaves the previous snapshot authoritative;
        3. rotate to a fresh segment and log a ``checkpoint`` marker
           (a replay no-op) — a crash before the marker just means
           the tail replay starts from the snapshot with no marker;
        4. prune snapshots to ``snapshot_retain``, then truncate
           segments fully below the **oldest retained** snapshot —
           never below the newest, so a latently corrupt newest
           snapshot still recovers from the older one plus tail.

        Returns a summary dict (lsn, snapshot path, segments removed,
        bytes, seconds); the same numbers land on the
        ``last_checkpoint_*`` attributes for the metrics surface.
        """
        started = time.perf_counter()
        tracer = getattr(self.system, "tracer", None) or NULL_TRACER
        with tracer.span(
            "checkpoint", directory=str(self.directory)
        ):
            self._writer.sync()
            lsn = self.last_applied_lsn
            payload = self._pickle_state()
            path = write_snapshot(self.directory, lsn, payload)
            self._writer.rotate()
            self._log_and_apply({"op": "checkpoint", "lsn": lsn})
            self._writer.sync()
            prune_snapshots(
                self.directory, retain=self.snapshot_retain
            )
            retained = list_snapshots(self.directory)
            removed = self._writer.truncate_through(
                snapshot_lsn(retained[0])
            )
        elapsed = time.perf_counter() - started
        self.checkpoints += 1
        self.last_checkpoint_lsn = lsn
        self.last_checkpoint_seconds = elapsed
        self.last_checkpoint_bytes = len(payload)
        self.last_checkpoint_segments_removed = removed
        return {
            "lsn": lsn,
            "snapshot": str(path),
            "bytes": len(payload),
            "segments_removed": removed,
            "seconds": elapsed,
        }

    # -- durability plumbing ----------------------------------------------

    @property
    def writer(self) -> WalWriter:
        """The underlying WAL writer (fsync/group-commit counters)."""
        return self._writer

    def begin_commit_window(self) -> None:
        """Open a WAL group-commit window (see ``WalWriter``)."""
        self._writer.begin_group()

    def end_commit_window(self) -> int:
        """Close the window with one fsync; records made durable."""
        return self._writer.end_group()

    def sync(self) -> None:
        """Force the batched fsync (durability barrier)."""
        self._writer.sync()

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "JournaledSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
