"""Real service mode: the asyncio dataplane over the same pipeline.

The simulator answers "what would MOVE do at scale"; this package
answers "run it, for real, on this machine".  The same staged
dissemination pipeline (:mod:`repro.core.pipeline`) is driven by a
live event loop instead of virtual time — the split is the
:class:`~repro.sim.engine.Clock` / :class:`~repro.sim.engine.
EventDriver` contract, implemented here by
:class:`AsyncioEventDriver`.

- :mod:`repro.serve.driver` — the asyncio
  :class:`~repro.sim.engine.EventDriver` (loop time + ``call_later``),
- :mod:`repro.serve.journal` — :class:`JournaledSystem`:
  log-before-apply journalling of every mutation onto the
  write-ahead log (:mod:`repro.cluster.storage`), and crash recovery
  by replay — a recovered system is bit-identical to a never-crashed
  twin,
- :mod:`repro.serve.runtime` — :class:`ServiceRuntime`: a bounded
  single-worker queue carrying documents and control commands in one
  total order (micro-batching, admission control, backpressure,
  graceful drain),
- :mod:`repro.serve.server` / :mod:`repro.serve.client` — the TCP
  JSON-lines protocol (``python -m repro serve``) and its blocking
  client, with ``repro.obs`` metrics exposed in Prometheus text
  format.
"""

from .client import ServiceClient, ServiceClientError
from .driver import AsyncioEventDriver
from .journal import JournaledSystem
from .runtime import ServeConfig, ServiceRuntime
from .server import ServiceServer

__all__ = [
    "AsyncioEventDriver",
    "JournaledSystem",
    "ServeConfig",
    "ServiceRuntime",
    "ServiceServer",
    "ServiceClient",
    "ServiceClientError",
]
