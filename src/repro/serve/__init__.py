"""Real service mode: the asyncio dataplane over the same pipeline.

The simulator answers "what would MOVE do at scale"; this package
answers "run it, for real, on this machine".  The same staged
dissemination pipeline (:mod:`repro.core.pipeline`) is driven by a
live event loop instead of virtual time — the split is the
:class:`~repro.sim.engine.Clock` / :class:`~repro.sim.engine.
EventDriver` contract, implemented here by
:class:`AsyncioEventDriver`.

- :mod:`repro.serve.driver` — the asyncio
  :class:`~repro.sim.engine.EventDriver` (loop time + ``call_later``),
- :mod:`repro.serve.wire` — the binary wire codec shared by the
  protocol-v3 frames and the journal's binary record format (LEB128
  varints, length-prefixed strings, reused encode buffers),
- :mod:`repro.serve.journal` — :class:`JournaledSystem`:
  log-before-apply journalling of every mutation onto the
  write-ahead log (:mod:`repro.cluster.storage`) with group commit,
  plus :meth:`~JournaledSystem.checkpoint` snapshots and
  tail-only crash recovery — a recovered system is bit-identical to
  a never-crashed twin,
- :mod:`repro.serve.snapshot` — the CRC-framed snapshot files
  checkpointing writes and recovery boots from,
- :mod:`repro.serve.runtime` — :class:`ServiceRuntime`: a bounded
  single-worker queue carrying documents and control commands in one
  total order (micro-batching, WAL commit windows, admission
  control, backpressure, graceful drain),
- :mod:`repro.serve.server` / :mod:`repro.serve.client` — the TCP
  front end (``python -m repro serve``) speaking both binary v3
  frames and JSON-lines v2, and its blocking client, with
  ``repro.obs`` metrics exposed in Prometheus text format.
"""

from .client import ServiceClient, ServiceClientError
from .driver import AsyncioEventDriver
from .journal import JournaledSystem
from .runtime import ServeConfig, ServiceRuntime
from .server import ServiceServer
from .wire import BINARY_PROTOCOL_VERSION

__all__ = [
    "AsyncioEventDriver",
    "BINARY_PROTOCOL_VERSION",
    "JournaledSystem",
    "ServeConfig",
    "ServiceRuntime",
    "ServiceServer",
    "ServiceClient",
    "ServiceClientError",
]
