"""CRC-framed checkpoint snapshot files for the journal.

A snapshot is the pickled state of a :class:`~repro.serve.journal.
JournaledSystem` — its setup record plus the whole wrapped system,
columnar slab arrays and RNG streams included — captured at a known
lsn.  Recovery boots from the newest loadable snapshot and replays
only the WAL tail above its lsn, which is what turns recovery time
from O(history) into O(since-last-checkpoint).

File format
-----------
``snapshot-<lsn:016d>.snap`` containing::

    <8-byte magic "MVSNAP1\\n">
    <lsn u64 LE> <payload length u32 LE> <crc u32 LE>
    <payload bytes>

The CRC covers the lsn bytes and the payload (same convention as the
WAL frame), so a header and body written by different attempts cannot
verify.  Writes go through a temp file + fsync + atomic rename +
directory fsync: a crash mid-write leaves a ``.tmp`` orphan, never a
half-valid ``.snap``.

Any validation failure loads as :class:`~repro.errors.SnapshotError`;
callers treat that snapshot as nonexistent and fall back to the next
older one (or full WAL replay).
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import List, Tuple, Union

from ..errors import SnapshotError

_MAGIC = b"MVSNAP1\n"
_HEADER = struct.Struct("<QII")
_NAME_FMT = "snapshot-{lsn:016d}.snap"
_NAME_GLOB = "snapshot-*.snap"


def snapshot_lsn(path: Path) -> int:
    """The lsn encoded in a snapshot file's name."""
    return int(path.name[len("snapshot-"):-len(".snap")])


def list_snapshots(directory: Union[str, Path]) -> List[Path]:
    """Snapshot files, oldest first (callers scan the reverse)."""
    return sorted(Path(directory).glob(_NAME_GLOB), key=snapshot_lsn)


def write_snapshot(
    directory: Union[str, Path], lsn: int, payload: bytes
) -> Path:
    """Durably write ``payload`` as the snapshot at ``lsn``.

    Returns the final path.  The rename is the commit point: until it
    happens recovery cannot see the file, after it the file is fully
    framed and fsynced.
    """
    directory = Path(directory)
    final = directory / _NAME_FMT.format(lsn=lsn)
    tmp = final.with_suffix(".tmp")
    lsn_bytes = struct.pack("<Q", lsn)
    crc = zlib.crc32(payload, zlib.crc32(lsn_bytes))
    with open(tmp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_HEADER.pack(lsn, len(payload), crc))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return final


def load_snapshot(path: Union[str, Path]) -> Tuple[int, bytes]:
    """Validate and read a snapshot; ``(lsn, payload)``.

    Raises :class:`SnapshotError` on any damage — wrong magic,
    truncation, CRC mismatch, or a header lsn that disagrees with the
    file name (a rename aimed at the wrong target).
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"{path.name}: unreadable ({exc})") from exc
    if not data.startswith(_MAGIC):
        raise SnapshotError(f"{path.name}: bad magic")
    header_end = len(_MAGIC) + _HEADER.size
    if len(data) < header_end:
        raise SnapshotError(f"{path.name}: truncated header")
    lsn, length, crc = _HEADER.unpack_from(data, len(_MAGIC))
    if lsn != snapshot_lsn(path):
        raise SnapshotError(
            f"{path.name}: header lsn {lsn} disagrees with file name"
        )
    payload = data[header_end:]
    if len(payload) != length:
        raise SnapshotError(
            f"{path.name}: payload is {len(payload)} bytes, "
            f"header says {length}"
        )
    expected = zlib.crc32(payload, zlib.crc32(struct.pack("<Q", lsn)))
    if crc != expected:
        raise SnapshotError(
            f"{path.name}: CRC mismatch "
            f"(stored {crc:#010x}, computed {expected:#010x})"
        )
    return lsn, payload


def prune_snapshots(
    directory: Union[str, Path], retain: int = 2
) -> int:
    """Delete all but the newest ``retain`` snapshots; count removed.

    Keeping more than one means a latent corruption in the newest
    snapshot (bad disk, not torn write) still leaves a recovery path:
    the older snapshot plus the WAL tail above *its* lsn — which is
    why truncation in the journal only drops segments below the
    **oldest retained** snapshot's lsn.
    """
    snapshots = list_snapshots(directory)
    removed = 0
    for stale in snapshots[:-retain] if retain > 0 else snapshots:
        stale.unlink()
        removed += 1
    # A crash between two write_snapshot attempts can leave an orphan
    # .tmp; it is invisible to recovery but worth sweeping here.
    for orphan in Path(directory).glob("snapshot-*.tmp"):
        orphan.unlink()
    return removed
