"""The asyncio :class:`~repro.sim.engine.EventDriver`.

The simulator and the live service share one dataplane; what differs
is the source of time and the mechanism firing timed callbacks.
:class:`AsyncioEventDriver` is the real-time half of that contract:
``now`` reads the event loop's monotonic clock and ``schedule``
arms a timer on the loop, so periodic work written against
:class:`~repro.sim.engine.EventDriver` (e.g. the allocation refresh)
runs unchanged under either driver.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from ..errors import ServiceError
from ..sim.engine import EventDriver


class _TimerEvent:
    """Cancellable handle wrapping an asyncio ``TimerHandle``.

    Matches the surface of :class:`~repro.sim.engine.Event` that
    callers rely on: ``cancel()`` and the ``cancelled`` flag.
    """

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._handle.cancel()


class AsyncioEventDriver(EventDriver):
    """Real-time event driver over an asyncio event loop.

    The loop binds lazily: constructed anywhere, the driver attaches
    to the running loop on first use (so a
    :class:`~repro.serve.runtime.ServiceRuntime` can be configured
    before ``asyncio.run`` starts).  ``now`` is ``loop.time()`` —
    monotonic seconds sharing the loop's own timebase, which keeps
    scheduled callbacks and pipeline/tracer timings coherent.
    """

    __slots__ = ("_loop",)

    def __init__(
        self, loop: Optional[asyncio.AbstractEventLoop] = None
    ) -> None:
        self._loop = loop

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            try:
                self._loop = asyncio.get_running_loop()
            except RuntimeError:
                raise ServiceError(
                    "AsyncioEventDriver used outside a running event "
                    "loop; construct it with an explicit loop or use "
                    "it from async code"
                ) from None
        return self._loop

    @property
    def now(self) -> float:
        return self.loop.time()

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> _TimerEvent:
        """Arm ``callback`` ``delay`` seconds from now on the loop."""
        if delay < 0:
            raise ServiceError(
                f"cannot schedule into the past (delay={delay})"
            )
        return _TimerEvent(self.loop.call_later(delay, callback))
