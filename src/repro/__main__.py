"""Command-line entry point: ``python -m repro``.

Subcommands:

- ``experiments [ids...]`` — regenerate paper figures as text tables
  (all of them when no ids are given),
- ``list`` — list the available experiment ids,
- ``demo`` — run the quickstart scenario inline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(_args: argparse.Namespace) -> int:
    from .experiments.registry import experiment_ids

    for experiment_id in experiment_ids():
        print(experiment_id)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.registry import (
        export_csv,
        format_result,
        run_experiment,
        experiment_ids,
    )

    targets = args.ids or experiment_ids()
    for experiment_id in targets:
        result = run_experiment(experiment_id)
        print(f"=== {experiment_id} ===")
        print(format_result(result))
        print()
        if args.csv_dir:
            written = export_csv(experiment_id, result, args.csv_dir)
            for path in written:
                print(f"wrote {path}")
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from . import Cluster, Document, Filter, MoveSystem

    cluster = Cluster()
    move = MoveSystem(cluster)
    move.register(Filter.from_text("alice", "distributed systems"))
    move.register(Filter.from_text("bob", "cloud storage"))
    move.seed_frequencies(
        [Document.from_text("seed", "cloud systems news")]
    )
    move.finalize_registration()
    plan = move.publish(
        Document.from_text("d1", "new distributed cloud tricks")
    )
    print(f"matched filters: {sorted(plan.matched_filter_ids)}")
    print(f"nodes involved:  {plan.fanout}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "MOVE reproduction (ICDCS 2012): keyword-based content "
            "filtering and dissemination"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")

    list_parser = subparsers.add_parser(
        "list", help="list experiment ids"
    )
    list_parser.set_defaults(func=_cmd_list)

    exp_parser = subparsers.add_parser(
        "experiments", help="regenerate paper figures"
    )
    exp_parser.add_argument(
        "ids", nargs="*", help="experiment ids (default: all)"
    )
    exp_parser.add_argument(
        "--csv-dir",
        default=None,
        help="also export each figure's series as CSV into this "
        "directory",
    )
    exp_parser.set_defaults(func=_cmd_experiments)

    demo_parser = subparsers.add_parser(
        "demo", help="run the quickstart scenario"
    )
    demo_parser.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
