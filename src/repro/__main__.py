"""Command-line entry point: ``python -m repro``.

Subcommands:

- ``experiments [ids...]`` — regenerate paper figures as text tables
  (all of them when no ids are given); ``--trace PATH`` additionally
  installs a pipeline :class:`~repro.obs.Tracer` as the session
  default and dumps every span to ``PATH`` as JSON lines,
- ``trace`` — run one scheme over a tiny traced workload and write
  the spans as JSON lines (the CI observability smoke; feed the
  output to ``scripts/trace_report.py``),
- ``serve`` — run the real service mode: an asyncio TCP endpoint
  (JSON lines: register / unregister / ingest / stats / metrics)
  over one dissemination system, with optional write-ahead-log
  durability and crash recovery (``--wal-dir``); prints
  ``READY port=<n> protocol=<v>`` once listening (see
  ``docs/OPERATIONS.md``),
- ``list`` — list the available experiment ids,
- ``demo`` — run the quickstart scenario inline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(_args: argparse.Namespace) -> int:
    from .experiments.registry import experiment_ids

    for experiment_id in experiment_ids():
        print(experiment_id)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.registry import (
        export_csv,
        format_result,
        run_experiment,
        experiment_ids,
    )
    from .obs import Tracer, set_default_tracer

    tracer = None
    if args.trace:
        # Systems adopt the session default tracer at construction, so
        # installing it here traces every system the figures build.
        tracer = Tracer()
        set_default_tracer(tracer)
    targets = args.ids or experiment_ids()
    try:
        for experiment_id in targets:
            result = run_experiment(experiment_id)
            print(f"=== {experiment_id} ===")
            print(format_result(result))
            print()
            if args.csv_dir:
                written = export_csv(experiment_id, result, args.csv_dir)
                for path in written:
                    print(f"wrote {path}")
    finally:
        if tracer is not None:
            set_default_tracer(None)
            count = tracer.write_jsonl(args.trace)
            print(f"wrote {count} spans to {args.trace}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .experiments.harness import ScaledWorkload, run_scheme_once
    from .obs import Tracer

    workload = ScaledWorkload(
        num_filters=args.filters,
        num_documents=args.documents,
        num_nodes=args.nodes,
        seed=args.seed,
    )
    bundle = workload.build()
    tracer = Tracer()
    result = run_scheme_once(args.scheme, bundle, tracer=tracer)
    count = tracer.write_jsonl(args.out)
    print(
        f"{args.scheme}: {len(bundle.documents)} documents, "
        f"{result.total_matches} matches, "
        f"{count} spans -> {args.out}"
    )
    for name, row in sorted(tracer.stage_summary().items()):
        print(
            f"  {name:<14} count={int(row['count']):<5d} "
            f"mean={row['mean_s'] * 1e6:8.1f}us "
            f"p95={row['p95_s'] * 1e6:8.1f}us"
        )
    realloc = [s for s in tracer.spans if s.name == "reallocate"]
    if realloc:
        skipped = sum(1 for s in realloc if s.tags.get("skipped"))
        kept = sum(s.tags.get("keys_kept", 0) for s in realloc)
        rebuilt = sum(s.tags.get("keys_rebuilt", 0) for s in realloc)
        moved = sum(s.tags.get("replicas_moved", 0) for s in realloc)
        print(
            f"  reallocations: {len(realloc)} "
            f"({len(realloc) - skipped} applied, {skipped} skipped), "
            f"keys kept {kept} / rebuilt {rebuilt}, "
            f"replicas moved {moved}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import ServeConfig, ServiceRuntime, ServiceServer

    config = ServeConfig(
        scheme=args.scheme,
        num_nodes=args.nodes,
        node_capacity=args.capacity,
        seed=args.seed,
        threshold=args.threshold,
        wal_dir=args.wal_dir,
        fsync_interval=args.fsync_interval,
        segment_max_bytes=args.segment_max_bytes,
        queue_capacity=args.queue_capacity,
        admission_high_watermark=args.admission_watermark,
        batch_max_docs=args.batch_max_docs,
        reallocate_interval=args.reallocate_interval,
        drift_epsilon=args.drift_epsilon,
        wal_group_commit=not args.no_group_commit,
        checkpoint_interval=args.checkpoint_interval,
        snapshot_retain=args.snapshot_retain,
    )

    async def run() -> None:
        from .serve.server import PROTOCOL_VERSION
        from .serve.wire import BINARY_PROTOCOL_VERSION

        runtime = ServiceRuntime(config)
        server = ServiceServer(
            runtime,
            host=args.host,
            port=args.port,
            binary_enabled=not args.no_binary,
        )
        await server.start()
        binary = (
            f" binary={BINARY_PROTOCOL_VERSION}"
            if server.binary_enabled
            else ""
        )
        print(
            f"READY port={server.port} protocol={PROTOCOL_VERSION}"
            f"{binary}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, server.shutdown_requested.set
                )
            except NotImplementedError:  # pragma: no cover - non-posix
                pass
        await server.shutdown_requested.wait()
        print("draining", flush=True)
        await server.close()
        print("stopped", flush=True)

    asyncio.run(run())
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from . import Cluster, Document, Filter, MoveSystem

    cluster = Cluster()
    move = MoveSystem(cluster)
    move.subscribe(
        [
            Filter.from_text("alice", "distributed systems"),
            Filter.from_text("bob", "cloud storage"),
            ("carol", "cloud AND (storage OR compute)"),
        ]
    )
    move.seed_frequencies(
        [Document.from_text("seed", "cloud systems news")]
    )
    move.finalize_registration()
    plan = move.publish(
        Document.from_text("d1", "new distributed cloud tricks")
    )
    print(f"matched filters: {sorted(plan.matched_filter_ids)}")
    print(f"nodes involved:  {plan.fanout}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "MOVE reproduction (ICDCS 2012): keyword-based content "
            "filtering and dissemination"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")

    list_parser = subparsers.add_parser(
        "list", help="list experiment ids"
    )
    list_parser.set_defaults(func=_cmd_list)

    exp_parser = subparsers.add_parser(
        "experiments", help="regenerate paper figures"
    )
    exp_parser.add_argument(
        "ids", nargs="*", help="experiment ids (default: all)"
    )
    exp_parser.add_argument(
        "--csv-dir",
        default=None,
        help="also export each figure's series as CSV into this "
        "directory",
    )
    exp_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="trace every pipeline run and write the spans to PATH "
        "as JSON lines (see scripts/trace_report.py)",
    )
    exp_parser.set_defaults(func=_cmd_experiments)

    trace_parser = subparsers.add_parser(
        "trace",
        help="run one traced workload and dump spans as JSON lines",
    )
    trace_parser.add_argument(
        "--scheme",
        default="move",
        choices=["move", "il", "rs", "central"],
        help="dissemination scheme to trace (default: move)",
    )
    trace_parser.add_argument(
        "--filters", type=int, default=200, help="filter count"
    )
    trace_parser.add_argument(
        "--documents", type=int, default=20, help="document count"
    )
    trace_parser.add_argument(
        "--nodes", type=int, default=8, help="cluster size"
    )
    trace_parser.add_argument(
        "--seed", type=int, default=0, help="workload seed"
    )
    trace_parser.add_argument(
        "--out",
        default="trace.jsonl",
        help="JSON-lines output path (default: trace.jsonl)",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the live TCP service (JSON lines; see "
        "docs/OPERATIONS.md)",
    )
    serve_parser.add_argument(
        "--scheme",
        default="move",
        choices=["move", "il", "rs", "central"],
        help="dissemination scheme to serve (default: move)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = let the OS pick; the bound port is "
        "printed as READY port=<n>)",
    )
    serve_parser.add_argument(
        "--nodes", type=int, default=8, help="cluster size"
    )
    serve_parser.add_argument(
        "--capacity",
        type=int,
        default=2_000,
        help="per-node filter capacity",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=0, help="system seed"
    )
    serve_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="similarity threshold (default: boolean semantics)",
    )
    serve_parser.add_argument(
        "--wal-dir",
        default=None,
        help="write-ahead-log directory; enables durability and "
        "crash recovery on restart",
    )
    serve_parser.add_argument(
        "--fsync-interval",
        type=int,
        default=1,
        help="fsync every N journal appends (1 = every append)",
    )
    serve_parser.add_argument(
        "--segment-max-bytes",
        type=int,
        default=1 << 20,
        help="WAL segment rotation size in bytes (default: 1 MiB); "
        "checkpoints can only truncate whole segments, so smaller "
        "segments mean tighter disk bounds at more files",
    )
    serve_parser.add_argument(
        "--queue-capacity",
        type=int,
        default=1_024,
        help="ingest queue bound",
    )
    serve_parser.add_argument(
        "--admission-watermark",
        type=float,
        default=1.0,
        help="queue fraction at which ingest sheds (1.0 = never "
        "shed, rely on backpressure)",
    )
    serve_parser.add_argument(
        "--batch-max-docs",
        type=int,
        default=64,
        help="micro-batch size cap",
    )
    serve_parser.add_argument(
        "--reallocate-interval",
        type=float,
        default=None,
        help="seconds between periodic allocation refreshes "
        "(default: disabled)",
    )
    serve_parser.add_argument(
        "--drift-epsilon",
        type=float,
        default=None,
        help="drift threshold for the periodic refresh; a tick "
        "below it skips reallocation (default: the system's "
        "configured epsilon)",
    )
    serve_parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        help="seconds between automatic journal checkpoints "
        "(snapshot + WAL truncation; requires --wal-dir)",
    )
    serve_parser.add_argument(
        "--snapshot-retain",
        type=int,
        default=2,
        help="checkpoint snapshots kept on disk (default: 2)",
    )
    serve_parser.add_argument(
        "--no-group-commit",
        action="store_true",
        help="fsync per append instead of coalescing each worker "
        "cycle's appends into one fsync",
    )
    serve_parser.add_argument(
        "--no-binary",
        action="store_true",
        help="serve JSON-lines only (decline binary negotiation)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    demo_parser = subparsers.add_parser(
        "demo", help="run the quickstart scenario"
    )
    demo_parser.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
