"""IL — the pure distributed inverted list baseline (Section III).

Registration: a filter is stored, by the key/value ``put``, on the home
node of *each* of its terms; the home node of ``t_i`` indexes it only
under ``t_i`` (the posting lists of all home nodes together form one
distributed inverted list).

Dissemination: a document is forwarded, in parallel, to the home nodes
of all of its terms that pass the Bloom-filter membership check; each
home node matches the document using only its own term's posting list.

No allocation: skewed ``p_i`` makes some home nodes store huge filter
sets (storage hot spots, Figure 9a) and skewed ``q_i`` makes some home
nodes receive most documents (matching hot spots, Figure 9b) — the low
throughput the MOVE scheme exists to fix.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cluster.cluster import Cluster
from ..config import SystemConfig
from ..matching.bloom import BloomFilter
from ..matching.inverted_index import InvertedIndex
from ..model import Document, Filter
from ..text.interning import DEFAULT_INTERNER
from .base import DisseminationPlan, DisseminationSystem, NodeTask

#: Sentinel distinguishing "never routed" from "bloom-rejected" in the
#: per-batch route memo.
_UNROUTED = object()


class InvertedListSystem(DisseminationSystem):
    """The paper's baseline solution on the key/value cluster."""

    name = "IL"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SystemConfig] = None,
        threshold: Optional[float] = None,
    ) -> None:
        super().__init__(config, threshold=threshold)
        self.cluster = cluster
        self._indexes: Dict[str, InvertedIndex] = {
            node_id: InvertedIndex() for node_id in cluster.node_ids()
        }
        self._bloom = (
            BloomFilter(
                self.config.expected_filter_terms,
                self.config.bloom_fp_rate,
            )
            if self.config.use_bloom_filter
            else None
        )
        self._ingest_rng = None  # lazily built per-config seed stream

    # -- registration -----------------------------------------------------

    def home_of(self, term: str) -> str:
        return self.cluster.ring.home_node(term)

    def index_of(self, node_id: str) -> InvertedIndex:
        index = self._indexes.get(node_id)
        if index is None:
            index = InvertedIndex()
            self._indexes[node_id] = index
        return index

    def _register(self, profile: Filter) -> None:
        storage_load = self.metrics.load("storage_replicas")
        for term in profile.terms:
            node_id = self.home_of(term)
            node = self.cluster.node(node_id)
            # Full filter object stored via the filter store (Figure 3)
            # and indexed under this home node's term only.
            node.filter_store.put(
                profile.filter_id, "terms", profile.sorted_terms()
            )
            self.index_of(node_id).add_filter(
                profile, indexed_terms=[term]
            )
            storage_load.add(node_id, 1.0)
            if self._bloom is not None:
                self._bloom.add(term)

    # -- dissemination -------------------------------------------------------

    def _terms_by_home(self, document: Document) -> Dict[str, List[str]]:
        """Document terms that pass the Bloom check, grouped by home."""
        grouped: Dict[str, List[str]] = defaultdict(list)
        for term in document.terms:
            if self._bloom is not None and term not in self._bloom:
                continue
            grouped[self.home_of(term)].append(term)
        return grouped

    def publish(self, document: Document) -> DisseminationPlan:
        ingest = self._choose_ingest()
        matched: Set[str] = set()
        unreachable: Set[str] = set()
        tasks: List[NodeTask] = []
        grouped = self._terms_by_home(document)
        for node_id, terms in grouped.items():
            node = self.cluster.node(node_id)
            index = self.index_of(node_id)
            if not node.alive:
                for term in terms:
                    filters, _ = index.filters_for_term(term)
                    unreachable.update(f.filter_id for f in filters)
                continue
            lists = 0
            entries = 0
            for term in terms:
                filters, cost = index.match_document_single_term(
                    document, term
                )
                lists += cost.posting_lists
                entries += cost.posting_entries
                matched.update(
                    f.filter_id
                    for f in self._apply_semantics(document, filters)
                )
            tasks.append(
                NodeTask(
                    node_id=node_id,
                    path=(ingest, node_id),
                    posting_lists=lists,
                    posting_entries=entries,
                )
            )
        unreachable -= matched
        self._account_tasks(tasks)
        self.metrics.counter("documents_published").add()
        return DisseminationPlan(
            document=document,
            matched_filter_ids=matched,
            tasks=tasks,
            unreachable_filter_ids=unreachable,
            routing_messages=len(grouped),
        )

    # -- batched fast path ---------------------------------------------------

    def publish_batch(
        self, documents: Sequence[Document]
    ) -> List[DisseminationPlan]:
        """Integer-keyed batched dissemination (the hot path).

        Per-term work that cannot change mid-batch is computed once and
        memoized by dense term id: the Bloom membership + home-node
        routing decision, and the home node's posting-list retrieval
        (filters, their ids, and the :class:`RetrievalCost` numbers).
        Every document then runs the same routing/matching/accounting
        logic as :meth:`publish` — including per-document ingest RNG
        draws — so the returned plans are bit-identical to the
        per-document loop.  :meth:`publish` itself stays the slow
        reference implementation the equivalence tests diff against.
        """
        route: Dict[int, Optional[str]] = {}
        retrieval: Dict[
            int, Tuple[List[Filter], Tuple[str, ...], int, int]
        ] = {}
        return [
            self._publish_fast(document, route, retrieval)
            for document in documents
        ]

    def _retrieve_cached(
        self,
        retrieval: Dict[int, Tuple[List[Filter], Tuple[str, ...], int, int]],
        node_id: str,
        term_id: int,
    ) -> Tuple[List[Filter], Tuple[str, ...], int, int]:
        """Posting retrieval for one home term, memoized per batch."""
        entry = retrieval.get(term_id)
        if entry is None:
            term = DEFAULT_INTERNER.term(term_id)
            filters, cost = self.index_of(node_id).filters_for_term(term)
            entry = (
                filters,
                tuple(profile.filter_id for profile in filters),
                cost.posting_lists,
                cost.posting_entries,
            )
            retrieval[term_id] = entry
        return entry

    def _publish_fast(
        self,
        document: Document,
        route: Dict[int, Optional[str]],
        retrieval: Dict[
            int, Tuple[List[Filter], Tuple[str, ...], int, int]
        ],
    ) -> DisseminationPlan:
        ingest = self._choose_ingest()
        matched: Set[str] = set()
        unreachable: Set[str] = set()
        tasks: List[NodeTask] = []
        bloom = self._bloom
        # Group surviving terms by home node, memoizing the per-term
        # bloom + ring decision under the dense term id.
        grouped: Dict[str, List[int]] = {}
        for term, term_id in zip(document.terms, document.term_ids):
            home = route.get(term_id, _UNROUTED)
            if home is _UNROUTED:
                if bloom is not None and term not in bloom:
                    home = None
                else:
                    home = self.home_of(term)
                route[term_id] = home
            if home is None:
                continue
            bucket = grouped.get(home)
            if bucket is None:
                grouped[home] = bucket = []
            bucket.append(term_id)
        plain_boolean = self._scorer is None
        for node_id, term_ids in grouped.items():
            node = self.cluster.node(node_id)
            if not node.alive:
                for term_id in term_ids:
                    _, filter_ids, _, _ = self._retrieve_cached(
                        retrieval, node_id, term_id
                    )
                    unreachable.update(filter_ids)
                continue
            lists = 0
            entries = 0
            for term_id in term_ids:
                filters, filter_ids, n_lists, n_entries = (
                    self._retrieve_cached(retrieval, node_id, term_id)
                )
                lists += n_lists
                entries += n_entries
                if plain_boolean:
                    matched.update(filter_ids)
                else:
                    matched.update(
                        profile.filter_id
                        for profile in self._apply_semantics(
                            document, filters
                        )
                    )
            tasks.append(
                NodeTask(
                    node_id=node_id,
                    path=(ingest, node_id),
                    posting_lists=lists,
                    posting_entries=entries,
                )
            )
        unreachable -= matched
        self._account_tasks(tasks)
        self.metrics.counter("documents_published").add()
        return DisseminationPlan(
            document=document,
            matched_filter_ids=matched,
            tasks=tasks,
            unreachable_filter_ids=unreachable,
            routing_messages=len(grouped),
        )

    def _choose_ingest(self) -> str:
        """Documents enter at a random live node (a client connection)."""
        if self._ingest_rng is None:
            import random

            self._ingest_rng = random.Random(
                (self.config.seed or 0) + 0x1A
            )
        live = self.cluster.live_node_ids()
        if not live:
            raise RuntimeError("no live nodes to ingest documents")
        return self._ingest_rng.choice(live)

    def _unregister(self, profile: Filter) -> None:
        """Remove the filter from every home node that indexed it."""
        storage_load = self.metrics.load("storage_replicas")
        for term in profile.terms:
            node_id = self.home_of(term)
            index = self.index_of(node_id)
            if profile.filter_id in index:
                index.remove_filter(profile.filter_id)
                storage_load.add(node_id, 0.0)
            node = self.cluster.node(node_id)
            node.filter_store.delete(profile.filter_id)

    # -- elasticity -----------------------------------------------------------

    def rebalance(self) -> int:
        """Move term postings whose home changed (ring membership).

        After a node joins (or permanently leaves) the ring, some terms
        map to new home nodes; their posting lists are handed off so
        the home-node invariant — every term's filters live on its
        current home — is restored.  Returns the number of filter
        replicas moved.
        """
        moved = 0
        for node_id, index in list(self._indexes.items()):
            for term in list(index.terms()):
                new_home = self.home_of(term)
                if new_home == node_id:
                    continue
                filters = index.remove_term(term)
                target_index = self.index_of(new_home)
                target_node = self.cluster.node(new_home)
                storage_load = self.metrics.load("storage_replicas")
                for profile in filters:
                    target_node.filter_store.put(
                        profile.filter_id,
                        "terms",
                        profile.sorted_terms(),
                    )
                    target_index.add_filter(
                        profile, indexed_terms=[term]
                    )
                    storage_load.add(new_home, 1.0)
                    moved += 1
        return moved

    # -- diagnostics ---------------------------------------------------------

    def storage_distribution(self) -> Dict[str, float]:
        """Filter replicas per node (Figure 9a's raw data)."""
        return {
            node_id: float(index.stored_replica_count())
            for node_id, index in self._indexes.items()
        }
