"""IL — the pure distributed inverted list baseline (Section III).

Registration: a filter is stored, by the key/value ``put``, on the home
node of *each* of its terms; the home node of ``t_i`` indexes it only
under ``t_i`` (the posting lists of all home nodes together form one
distributed inverted list).

Dissemination: a document is forwarded, in parallel, to the home nodes
of all of its terms that pass the Bloom-filter membership check; each
home node matches the document using only its own term's posting list.
Both stages run through the staged pipeline
(:mod:`repro.core.pipeline`); IL supplies the simplest hooks of the
four systems — Bloom + ring routing and single-term posting matching.

No allocation: skewed ``p_i`` makes some home nodes store huge filter
sets (storage hot spots, Figure 9a) and skewed ``q_i`` makes some home
nodes receive most documents (matching hot spots, Figure 9b) — the low
throughput the MOVE scheme exists to fix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..config import SystemConfig
from ..core.pipeline import (
    BatchCaches,
    ExecutionContext,
    Retrieval,
    group_terms_by_home,
)
from ..matching.bloom import BloomFilter
from ..matching.inverted_index import InvertedIndex
from ..model import Document, Filter
from ..text.interning import DEFAULT_INTERNER
from .base import DisseminationSystem


class InvertedListSystem(DisseminationSystem):
    """The paper's baseline solution on the key/value cluster."""

    name = "IL"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SystemConfig] = None,
        threshold: Optional[float] = None,
    ) -> None:
        super().__init__(config, threshold=threshold)
        self.cluster = cluster
        self._indexes: Dict[str, InvertedIndex] = {
            node_id: self._make_index() for node_id in cluster.node_ids()
        }
        self._bloom = (
            BloomFilter(
                self.config.expected_filter_terms,
                self.config.bloom_fp_rate,
            )
            if self.config.use_bloom_filter
            else None
        )
        self._ingest_rng = None  # lazily built per-config seed stream

    # -- registration -----------------------------------------------------

    def home_of(self, term: str) -> str:
        return self.cluster.ring.home_node(term)

    def index_of(self, node_id: str) -> InvertedIndex:
        index = self._indexes.get(node_id)
        if index is None:
            index = self._make_index()
            self._indexes[node_id] = index
        return index

    def _register(self, profile: Filter) -> None:
        storage_load = self.metrics.load("storage_replicas")
        for term in profile.terms:
            node_id = self.home_of(term)
            # Full filter object stored via the filter store (Figure 3;
            # the columnar slab in slab mode) and indexed under this
            # home node's term only.
            self._store_filter(node_id, profile)
            self.index_of(node_id).add_filter(
                profile, indexed_terms=[term]
            )
            storage_load.add(node_id, 1.0)
            if self._bloom is not None:
                self._bloom.add(term)

    def _register_batch(self, profiles) -> None:
        """Bulk registration: identical placement to the per-filter
        loop (same store writes, bloom and load updates, in the same
        order), with each home index loaded through ``add_filters`` —
        one sort per posting list instead of one insert per replica."""
        storage_load = self.metrics.load("storage_replicas")
        bloom = self._bloom
        buffers: Dict[str, List[Tuple[Filter, List[str]]]] = {}
        for profile in profiles:
            for term in profile.terms:
                node_id = self.home_of(term)
                self._store_filter(node_id, profile)
                buffers.setdefault(node_id, []).append(
                    (profile, [term])
                )
                storage_load.add(node_id, 1.0)
                if bloom is not None:
                    bloom.add(term)
        for node_id, buffered in buffers.items():
            self.index_of(node_id).add_filters(buffered)

    # -- dissemination (pipeline stage hooks) ------------------------------

    def _resolve_routes(
        self, document: Document, caches: BatchCaches
    ) -> Dict[str, List[int]]:
        """Bloom-pruned term-id grouping by ring home node."""
        return group_terms_by_home(
            document, caches, self._bloom, self.home_of
        )

    def _execute(
        self, ctx: ExecutionContext, routes: Dict[str, List[int]]
    ) -> None:
        """Single-term posting matching on each term's home node."""
        ctx.routing_messages = len(routes)
        caches = ctx.caches
        document = ctx.document
        matched = ctx.matched
        plain_boolean = self._scorer is None
        for node_id, term_ids in routes.items():
            if not self.cluster.node(node_id).alive:
                for term_id in term_ids:
                    ctx.unreachable.update(
                        self._retrieve_cached(caches, node_id, term_id)[1]
                    )
                continue
            lists = 0
            entries = 0
            for term_id in term_ids:
                filters, filter_ids, n_lists, n_entries = (
                    self._retrieve_cached(caches, node_id, term_id)
                )
                lists += n_lists
                entries += n_entries
                if plain_boolean:
                    matched.update(filter_ids)
                else:
                    matched.update(
                        profile.filter_id
                        for profile in self._apply_semantics(
                            document, filters
                        )
                    )
            ctx.work.add(node_id, lists, entries, (ctx.ingest, node_id))

    def _retrieve_cached(
        self, caches: BatchCaches, node_id: str, term_id: int
    ) -> Retrieval:
        """Posting retrieval for one home term, memoized per batch
        (the home node derives from the term, so the id alone keys it).
        """
        entry = caches.retrieval.get(term_id)
        if entry is None:
            entry = caches.retrieve(
                term_id,
                self.index_of(node_id),
                DEFAULT_INTERNER.term(term_id),
            )
        return entry

    def _choose_ingest(self) -> str:
        """Documents enter at a random live node (a client connection)."""
        if self._ingest_rng is None:
            import random

            self._ingest_rng = random.Random(
                (self.config.seed or 0) + 0x1A
            )
        live = self.cluster.live_node_ids()
        if not live:
            raise RuntimeError("no live nodes to ingest documents")
        return self._ingest_rng.choice(live)

    def _unregister(self, profile: Filter) -> None:
        """Remove the filter from every home node that indexed it."""
        storage_load = self.metrics.load("storage_replicas")
        for term in profile.terms:
            node_id = self.home_of(term)
            index = self.index_of(node_id)
            if profile.filter_id in index:
                index.remove_filter(profile.filter_id)
                storage_load.add(node_id, 0.0)
            self._unstore_filter(node_id, profile.filter_id)

    # -- elasticity -----------------------------------------------------------

    def rebalance(self) -> int:
        """Move term postings whose home changed (ring membership).

        After a node joins (or permanently leaves) the ring, some terms
        map to new home nodes; their posting lists are handed off so
        the home-node invariant — every term's filters live on its
        current home — is restored.  Returns the number of filter
        replicas moved.
        """
        moved = 0
        for node_id, index in list(self._indexes.items()):
            for term in list(index.terms()):
                new_home = self.home_of(term)
                if new_home == node_id:
                    continue
                filters = index.remove_term(term)
                target_index = self.index_of(new_home)
                storage_load = self.metrics.load("storage_replicas")
                for profile in filters:
                    self._store_filter(new_home, profile)
                    target_index.add_filter(
                        profile, indexed_terms=[term]
                    )
                    storage_load.add(new_home, 1.0)
                    moved += 1
        return moved

    # -- diagnostics ---------------------------------------------------------

    def storage_distribution(self) -> Dict[str, float]:
        """Filter replicas per node (Figure 9a's raw data)."""
        return {
            node_id: float(index.stored_replica_count())
            for node_id, index in self._indexes.items()
        }
