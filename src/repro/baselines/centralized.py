"""Centralized SIFT matching — one node holds every filter.

Two faces of the same baseline:

- :class:`CentralizedSift` — the Figure 6/7 experiment substrate.
  Before the cluster experiments, the paper studies on one node how
  the number of documents ``Q`` and the number of filters ``P`` trade
  off at a fixed product ``R = P * Q``.  This class is that single
  node: all filters local, SIFT matching, and the cost model's
  disk-pressure behaviour (very large ``P`` pushes the working set out
  of cache and the disk becomes the bottleneck — the Figure 6 knee at
  ``Q = 2``).
- :class:`CentralizedSystem` — the same idea as a
  :class:`~repro.baselines.base.DisseminationSystem`: a cluster where
  one designated node stores and matches everything (the degenerate
  scheme every distributed design is measured against).  It runs
  through the staged pipeline (:mod:`repro.core.pipeline`), so it gets
  batched publishing and per-term retrieval memoization like the
  distributed schemes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cluster.cluster import Cluster
from ..config import CostModelConfig, SystemConfig
from ..core.pipeline import BatchCaches, ExecutionContext, Retrieval
from ..errors import ConfigurationError
from ..matching.inverted_index import InvertedIndex
from ..matching.sift import SiftMatcher
from ..model import Document, Filter
from ..sim.costs import MatchCostModel
from .base import DisseminationSystem


@dataclass(frozen=True)
class SingleNodeResult:
    """Outcome of matching a document batch on one node."""

    documents_matched: int
    total_filters: int
    total_match_seconds: float
    total_posting_entries: int

    @property
    def document_throughput(self) -> float:
        """Documents matched per second of modelled latency."""
        if self.total_match_seconds <= 0:
            return 0.0
        return self.documents_matched / self.total_match_seconds

    @property
    def pair_throughput(self) -> float:
        """(document, filter) match work per second — ``R / time``.

        This is the metric Figures 6/7 plot: with ``R = P * Q`` fixed,
        fewer/larger batches of filters (small Q, large P) finish the
        same amount of match work sooner because the dominant cost is
        the per-document posting-list seeks.  All three of the paper's
        quantitative claims (8.92x at fixed R, 6.714x across R at fixed
        Q, and the Q=2 disk knee) hold under this reading and none
        holds under documents-per-second.
        """
        if self.total_match_seconds <= 0:
            return 0.0
        return (
            self.documents_matched
            * self.total_filters
            / self.total_match_seconds
        )


class CentralizedSift:
    """One node holding ``P`` filters and matching documents via SIFT."""

    def __init__(
        self,
        cost_model: Optional[MatchCostModel] = None,
        memory_capacity: int = 5_000_000,
        disk_pressure_slope: float = 1.5,
    ) -> None:
        """``memory_capacity`` is the filter count beyond which the
        working set spills and each retrieval slows down by
        ``disk_pressure_slope`` per capacity multiple — the mechanism
        behind the paper's observation that ``P = 5e6`` is *slower*
        than ``P = 1e6`` on Figure 6 (bound ``C ≈ 5e6``)."""
        self.cost_model = cost_model or MatchCostModel(CostModelConfig())
        if memory_capacity < 1:
            raise ValueError("memory_capacity must be >= 1")
        if disk_pressure_slope < 0:
            raise ValueError("disk_pressure_slope must be >= 0")
        self.memory_capacity = memory_capacity
        self.disk_pressure_slope = disk_pressure_slope
        self.index = InvertedIndex()
        self._matcher = SiftMatcher(self.index)

    def register_all(self, profiles: Iterable[Filter]) -> None:
        for profile in profiles:
            self.index.add_filter(profile)

    def disk_pressure_factor(self) -> float:
        """Service-time multiplier from working-set overflow."""
        stored = len(self.index)
        overflow = stored / self.memory_capacity - 1.0
        if overflow <= 0:
            return 1.0
        return 1.0 + self.disk_pressure_slope * overflow

    def match(self, document: Document) -> List[Filter]:
        """Matching filters only (logical result)."""
        filters, _ = self._matcher.match(document)
        return filters

    def run_batch(
        self, documents: Sequence[Document]
    ) -> SingleNodeResult:
        """Match a batch and report modelled throughput.

        Every document term costs one dictionary probe (``y_p``) even
        when no posting list exists for it — SIFT must look the term up
        to find that out — plus the retrieval cost of the lists that do
        exist.
        """
        pressure = self.disk_pressure_factor()
        y_probe = self.cost_model.config.y_p
        total_seconds = 0.0
        total_entries = 0
        for document in documents:
            _, cost = self._matcher.match(document)
            total_entries += cost.posting_entries
            total_seconds += pressure * (
                self.cost_model.match_time(
                    cost.posting_lists, cost.posting_entries
                )
                + y_probe * len(document)
            )
        return SingleNodeResult(
            documents_matched=len(documents),
            total_filters=len(self.index),
            total_match_seconds=total_seconds,
            total_posting_entries=total_entries,
        )


class CentralizedSystem(DisseminationSystem):
    """All filters on one cluster node — the degenerate scheme.

    Registration stores every filter on the designated central node,
    indexed under all of its terms; every published document is
    forwarded there (one routing message, no pruning) and matched with
    the centralized SIFT algorithm.  When the central node is down the
    entire term-sharing candidate set is unreachable — the paper's
    single point of failure, made measurable.
    """

    name = "Central"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SystemConfig] = None,
        threshold: Optional[float] = None,
        central_node: Optional[str] = None,
    ) -> None:
        super().__init__(config, threshold=threshold)
        self.cluster = cluster
        node_ids = cluster.node_ids()
        if not node_ids:
            raise ConfigurationError("cluster has no nodes")
        if central_node is None:
            central_node = node_ids[0]
        elif central_node not in node_ids:
            raise ConfigurationError(
                f"central node {central_node!r} is not in the cluster"
            )
        self.central_node = central_node
        self.index = self._make_index()
        self._matcher = SiftMatcher(self.index)
        self._rng = random.Random((self.config.seed or 0) + 0x0C)

    # -- registration ----------------------------------------------------

    def _register(self, profile: Filter) -> None:
        self._store_filter(self.central_node, profile)
        # Full local inverted list: indexed under every term.
        self.index.add_filter(profile)
        self.metrics.load("storage_replicas").add(self.central_node, 1.0)

    def _register_batch(self, profiles) -> None:
        """Bulk registration: identical placement to the per-filter
        loop (same store writes and load updates, in the same order),
        with the central inverted list loaded through ``add_filters``
        — one sort per posting list instead of one insert per filter.
        """
        storage_load = self.metrics.load("storage_replicas")
        buffered: List[Tuple[Filter, None]] = []
        for profile in profiles:
            self._store_filter(self.central_node, profile)
            buffered.append((profile, None))
            storage_load.add(self.central_node, 1.0)
        if buffered:
            self.index.add_filters(buffered)

    def _unregister(self, profile: Filter) -> None:
        """Remove the filter from the central node."""
        self.index.remove_filter(profile.filter_id)
        self._unstore_filter(self.central_node, profile.filter_id)

    # -- dissemination (pipeline stage hooks) ------------------------------

    def _resolve_routes(
        self, document: Document, caches: BatchCaches
    ) -> str:
        """Everything routes to the one central node."""
        return self.central_node

    def _execute(self, ctx: ExecutionContext, central: str) -> None:
        """Centralized SIFT matching over all document terms."""
        ctx.routing_messages = 1
        caches = ctx.caches
        document = ctx.document
        if not self.cluster.node(central).alive:
            for term, term_id in zip(document.terms, document.term_ids):
                ctx.unreachable.update(
                    self._retrieve_cached(caches, term_id, term)[1]
                )
            return
        matched = ctx.matched
        lists = 0
        entries = 0
        if self._scorer is None:
            for term, term_id in zip(document.terms, document.term_ids):
                _, filter_ids, n_lists, n_entries = (
                    self._retrieve_cached(caches, term_id, term)
                )
                lists += n_lists
                entries += n_entries
                matched.update(filter_ids)
        elif self._kernel_accumulates():
            # Score-accumulation SIFT: the central index holds every
            # filter under all its terms, so walking the |d| posting
            # lists accumulates each candidate's full dot product
            # (see repro.matching.kernel).  The CSR backend runs the
            # whole central block as one vectorized pass
            # (repro.matching.csr_kernel); both paths produce
            # bit-identical matches and costs.
            bulk = self._kernel.bulk_match(document, self.index, caches)
            if bulk is not None:
                profiles, lists, entries = bulk
                matched.update(
                    profile.filter_id for profile in profiles
                )
            else:
                scoring = self._kernel.begin(document, caches)
                for term, term_id in zip(
                    document.terms, document.term_ids
                ):
                    filters, _, n_lists, n_entries = (
                        self._retrieve_cached(caches, term_id, term)
                    )
                    lists += n_lists
                    entries += n_entries
                    scoring.accumulate(term, filters)
                matched.update(
                    profile.filter_id for profile in scoring.matched()
                )
        else:
            # Dedup candidates across terms (as SIFT does) before
            # scoring each one once against the threshold.
            candidates: Dict[str, Filter] = {}
            for term, term_id in zip(document.terms, document.term_ids):
                filters, _, n_lists, n_entries = (
                    self._retrieve_cached(caches, term_id, term)
                )
                lists += n_lists
                entries += n_entries
                for profile in filters:
                    candidates.setdefault(profile.filter_id, profile)
            matched.update(
                profile.filter_id
                for profile in self._apply_semantics(
                    document, candidates.values()
                )
            )
        ctx.work.add(central, lists, entries, (ctx.ingest, central))

    def _retrieve_cached(
        self, caches: BatchCaches, term_id: int, term: str
    ) -> Retrieval:
        """Central-index posting retrieval, memoized per batch."""
        entry = caches.retrieval.get(term_id)
        if entry is None:
            entry = caches.retrieve(term_id, self.index, term)
        return entry

    def _choose_ingest(self) -> str:
        live = self.cluster.live_node_ids()
        if not live:
            raise RuntimeError("no live nodes to ingest documents")
        return self._rng.choice(live)

    # -- diagnostics -----------------------------------------------------------

    def storage_distribution(self) -> Dict[str, float]:
        """Distinct filters per node: everything on the central node."""
        return {
            node_id: (
                float(len(self.index))
                if node_id == self.central_node
                else 0.0
            )
            for node_id in self.cluster.node_ids()
        }

