"""Single-node SIFT matcher — the Figure 6/7 experiment substrate.

Before the cluster experiments, the paper studies on one node how the
number of documents ``Q`` and the number of filters ``P`` trade off at
a fixed product ``R = P * Q``.  This class is that single node: all
filters local, SIFT matching, and the cost model's disk-pressure
behaviour (very large ``P`` pushes the working set out of cache and
the disk becomes the bottleneck — the Figure 6 knee at ``Q = 2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..config import CostModelConfig
from ..matching.inverted_index import InvertedIndex
from ..matching.sift import SiftMatcher
from ..model import Document, Filter
from ..sim.costs import MatchCostModel


@dataclass(frozen=True)
class SingleNodeResult:
    """Outcome of matching a document batch on one node."""

    documents_matched: int
    total_filters: int
    total_match_seconds: float
    total_posting_entries: int

    @property
    def document_throughput(self) -> float:
        """Documents matched per second of modelled latency."""
        if self.total_match_seconds <= 0:
            return 0.0
        return self.documents_matched / self.total_match_seconds

    @property
    def pair_throughput(self) -> float:
        """(document, filter) match work per second — ``R / time``.

        This is the metric Figures 6/7 plot: with ``R = P * Q`` fixed,
        fewer/larger batches of filters (small Q, large P) finish the
        same amount of match work sooner because the dominant cost is
        the per-document posting-list seeks.  All three of the paper's
        quantitative claims (8.92x at fixed R, 6.714x across R at fixed
        Q, and the Q=2 disk knee) hold under this reading and none
        holds under documents-per-second.
        """
        if self.total_match_seconds <= 0:
            return 0.0
        return (
            self.documents_matched
            * self.total_filters
            / self.total_match_seconds
        )


class CentralizedSift:
    """One node holding ``P`` filters and matching documents via SIFT."""

    def __init__(
        self,
        cost_model: Optional[MatchCostModel] = None,
        memory_capacity: int = 5_000_000,
        disk_pressure_slope: float = 1.5,
    ) -> None:
        """``memory_capacity`` is the filter count beyond which the
        working set spills and each retrieval slows down by
        ``disk_pressure_slope`` per capacity multiple — the mechanism
        behind the paper's observation that ``P = 5e6`` is *slower*
        than ``P = 1e6`` on Figure 6 (bound ``C ≈ 5e6``)."""
        self.cost_model = cost_model or MatchCostModel(CostModelConfig())
        if memory_capacity < 1:
            raise ValueError("memory_capacity must be >= 1")
        if disk_pressure_slope < 0:
            raise ValueError("disk_pressure_slope must be >= 0")
        self.memory_capacity = memory_capacity
        self.disk_pressure_slope = disk_pressure_slope
        self.index = InvertedIndex()
        self._matcher = SiftMatcher(self.index)

    def register_all(self, profiles: Iterable[Filter]) -> None:
        for profile in profiles:
            self.index.add_filter(profile)

    def disk_pressure_factor(self) -> float:
        """Service-time multiplier from working-set overflow."""
        stored = len(self.index)
        overflow = stored / self.memory_capacity - 1.0
        if overflow <= 0:
            return 1.0
        return 1.0 + self.disk_pressure_slope * overflow

    def match(self, document: Document) -> List[Filter]:
        """Matching filters only (logical result)."""
        filters, _ = self._matcher.match(document)
        return filters

    def run_batch(
        self, documents: Sequence[Document]
    ) -> SingleNodeResult:
        """Match a batch and report modelled throughput.

        Every document term costs one dictionary probe (``y_p``) even
        when no posting list exists for it — SIFT must look the term up
        to find that out — plus the retrieval cost of the lists that do
        exist.
        """
        pressure = self.disk_pressure_factor()
        y_probe = self.cost_model.config.y_p
        total_seconds = 0.0
        total_entries = 0
        for document in documents:
            _, cost = self._matcher.match(document)
            total_entries += cost.posting_entries
            total_seconds += pressure * (
                self.cost_model.match_time(
                    cost.posting_lists, cost.posting_entries
                )
                + y_probe * len(document)
            )
        return SingleNodeResult(
            documents_matched=len(documents),
            total_filters=len(self.index),
            total_match_seconds=total_seconds,
            total_posting_entries=total_entries,
        )
