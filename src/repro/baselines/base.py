"""Shared protocol for all four dissemination systems.

Every system (IL, RS, MOVE, Centralized) answers the same two
questions for a published document:

1. *logical* — which registered filters match (must equal the brute-
   force oracle; the completeness invariant), and
2. *physical* — which nodes do how much disk and network work
   (the per-node tasks the discrete-event harness schedules and the
   Figure 9 load metrics aggregate).

:meth:`DisseminationSystem.publish` returns both as a
:class:`DisseminationPlan`.

Dissemination itself runs through the staged engine in
:mod:`repro.core.pipeline`; a concrete system supplies the engine's
stage hooks (:meth:`~DisseminationSystem._choose_ingest`,
:meth:`~DisseminationSystem._resolve_routes`,
:meth:`~DisseminationSystem._execute`, plus the optional
:meth:`~DisseminationSystem._observe`) instead of overriding
:meth:`~DisseminationSystem.publish` directly.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from itertools import islice
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from types import MappingProxyType
from typing import Mapping, MutableMapping

from ..config import SystemConfig
from ..matching.inverted_index import InvertedIndex
from ..model import Document, Filter, Subscription
from ..model.query import QueryNode
from ..model.slab import FilterSlabStore, SlabRegistry
from ..obs import MetricsRegistry, SystemStats, get_default_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import BatchCaches, ExecutionContext


@dataclass(frozen=True)
class NodeTask:
    """Work one node performs for one document.

    ``path`` is the hop sequence the document payload travels (ingest
    node first, executing node last); the harness charges link latency
    per hop and the payload transfer cost once per delivery.
    ``posting_lists``/``posting_entries`` parameterize the disk-bound
    service time via the cost model.
    """

    node_id: str
    path: Tuple[str, ...]
    posting_lists: int
    posting_entries: int

    def __post_init__(self) -> None:
        if not self.path or self.path[-1] != self.node_id:
            raise ValueError(
                f"task path must end at the executing node {self.node_id!r}"
            )
        if self.posting_lists < 0 or self.posting_entries < 0:
            raise ValueError("task costs must be non-negative")


@dataclass
class DisseminationPlan:
    """Outcome of publishing one document."""

    document: Document
    matched_filter_ids: Set[str]
    tasks: List[NodeTask] = field(default_factory=list)
    #: Filter ids that *should* have matched but were unreachable due
    #: to node failures (the Figure 9(d) availability loss).
    unreachable_filter_ids: Set[str] = field(default_factory=set)
    #: Control-plane routing messages (bloom-pruned forwarding).
    routing_messages: int = 0

    @property
    def fanout(self) -> int:
        """Distinct nodes that performed matching work."""
        return len({task.node_id for task in self.tasks})

    @property
    def total_posting_entries(self) -> int:
        return sum(task.posting_entries for task in self.tasks)


class DisseminationSystem(ABC):
    """Common lifecycle: register filters → finalize → publish docs.

    ``threshold`` switches all three systems from the paper's boolean
    any-term semantics to the similarity-threshold extension (Section
    III-A, following SIFT/STAIRS): a candidate filter sharing a term
    with the document is delivered only when its VSM cosine similarity
    reaches the threshold.  Candidate *routing* is unchanged — shared
    terms still decide which nodes see the document — so the allocation
    machinery is semantics-agnostic, exactly as the paper argues.
    """

    #: Short scheme label used in experiment tables ("Move", "IL", "RS").
    name: str = "abstract"

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        threshold: Optional[float] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.metrics = MetricsRegistry()
        #: Bumped on every registration/allocation mutation; combined
        #: with the cluster's membership epoch it forms the *batch
        #: epoch* (:meth:`_batch_epoch`) the pipeline pins per batch
        #: to enforce the batch contract.
        self._mutation_epoch = 0
        #: The tracer dissemination reports to.  Defaults to the
        #: module default (the disabled no-op singleton unless
        #: :func:`repro.obs.set_default_tracer` installed one); assign
        #: a :class:`repro.obs.Tracer` any time to start tracing.
        self.tracer = get_default_tracer()
        #: Columnar filter storage (``filter_storage="slab"``): one
        #: shared :class:`~repro.model.slab.FilterSlabStore` holds
        #: every registered filter's interned term-ids, the registry
        #: below becomes a lazy view over it, and the scheme's indexes
        #: are :class:`~repro.matching.slab_index.SlabBackedIndex`es
        #: whose postings store slab slots.  ``None`` in the default
        #: object mode.
        self.filter_slab: Optional[FilterSlabStore] = (
            FilterSlabStore()
            if self.config.filter_storage == "slab"
            else None
        )
        self._registered: MutableMapping[str, Filter] = (
            SlabRegistry(self.filter_slab)
            if self.filter_slab is not None
            else {}
        )
        #: Parsed predicates of predicated subscriptions, keyed by id
        #: (object mode only; slab mode keeps the raw query text in
        #: the slab's sparse query column and parses lazily).
        self._predicates: Optional[Dict[str, QueryNode]] = (
            None if self.filter_slab is not None else {}
        )
        #: How many registered subscriptions carry a delivery-time
        #: predicate; ``0`` keeps every batch on the anchor-only fast
        #: path, bit-identical to the pre-predicate pipeline.
        self._predicate_count = 0
        #: Monotonic sequence for auto-assigned subscription ids
        #: (bare query-text items passed to :meth:`subscribe`).
        self._subscription_seq = 0
        if threshold is not None and not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.threshold = threshold
        if threshold is not None:
            from ..matching.kernel import ScoreKernel
            from ..matching.vsm import VsmScorer

            self._scorer = VsmScorer()
            self._kernel = ScoreKernel(
                self._scorer,
                threshold,
                enabled=self.config.matching_kernel,
                backend=self.config.matching_backend,
            )
        else:
            self._scorer = None
            self._kernel = None
        #: The active batch's :class:`~repro.core.pipeline.BatchCaches`,
        #: set by the pipeline around ``publish_batch`` so the scoring
        #: kernel can share per-document vectors across node visits
        #: without widening the `_apply_semantics` signature.
        self._active_caches: Optional["BatchCaches"] = None
        # Deferred import: the pipeline module imports this one for
        # the plan/task types, so it cannot be imported at module
        # scope without a cycle.
        from ..core.pipeline import DisseminationPipeline

        self._engine = DisseminationPipeline(self)

    def _apply_semantics(
        self, document: Document, filters: Iterable[Filter]
    ) -> List[Filter]:
        """Post-filter term-sharing candidates by the active semantics.

        Under the threshold semantics this routes through the
        score-accumulation kernel (:mod:`repro.matching.kernel`): the
        document's tf–idf vector is computed once per batch and each
        (document, filter) cosine once ever, bit-for-bit identical to
        ``VsmScorer.similarity``.  Subclasses may override to swap in
        different semantics — candidate order is preserved, and the
        systems detect overrides and keep feeding every term-sharing
        candidate through here (see ``_kernel_accumulates``).
        """
        kernel = self._kernel
        if kernel is None:
            return list(filters)
        if not kernel.enabled:
            threshold = self.threshold
            scorer = self._scorer
            return [
                profile
                for profile in filters
                if scorer.similarity(document, profile) >= threshold
            ]
        return kernel.select(document, filters, self._active_caches)

    @property
    def matching_backend(self) -> str:
        """What actually scores candidates, for tracing/diagnostics.

        ``"boolean"`` under the paper's any-term semantics (no scorer),
        ``"reference"`` when the kernel is disabled (naive
        per-candidate scoring), else the kernel's resolved backend —
        ``"python"`` or ``"csr"``.
        """
        kernel = self._kernel
        if kernel is None:
            return "boolean"
        if not kernel.enabled:
            return "reference"
        return kernel.backend

    def _kernel_accumulates(self) -> bool:
        """True when the posting-walk accumulation fast path may run.

        Requires an enabled kernel *and* the base `_apply_semantics`:
        a subclass override must see every term-sharing candidate, so
        the systems fall back to the candidate-dedup path whenever one
        is installed.
        """
        kernel = self._kernel
        return (
            kernel is not None
            and kernel.enabled
            and type(self)._apply_semantics
            is DisseminationSystem._apply_semantics
        )

    # -- storage layout ------------------------------------------------------

    def _make_index(self) -> InvertedIndex:
        """One local inverted index in the configured storage layout.

        Object mode: the classic :class:`InvertedIndex`.  Slab mode: a
        :class:`~repro.matching.slab_index.SlabBackedIndex` sharing the
        system's :attr:`filter_slab`, whose postings hold slab slots.
        Every scheme constructs its per-node/home/subset indexes
        through this hook.
        """
        if self.filter_slab is not None:
            from ..matching.slab_index import SlabBackedIndex

            return SlabBackedIndex(self.filter_slab)
        return InvertedIndex()

    def _store_filter(self, node_id: str, profile: Filter) -> None:
        """Persist one stored replica's filter payload on a node.

        Object mode writes the sorted-terms row into the node's
        filter-store column family (what an SSTable would hold).  Slab
        mode skips the per-row write entirely: the shared columnar
        slab *is* the filter payload store, and materializing 2–3
        replica rows per filter is exactly the per-object overhead the
        slab tier removes (KV write counters are therefore not part of
        the slab/object equivalence contract — match sets, RNG
        streams, and stored replica counts are).
        """
        if self.filter_slab is not None:
            return
        self.cluster.node(node_id).filter_store.put(
            profile.filter_id, "terms", profile.sorted_terms()
        )

    def _unstore_filter(self, node_id: str, filter_id: str) -> None:
        """Drop one stored replica's filter payload (see above)."""
        if self.filter_slab is not None:
            return
        self.cluster.node(node_id).filter_store.delete(filter_id)

    # -- batch contract ------------------------------------------------------

    def _batch_epoch(self) -> int:
        """Epoch pinning the state the per-batch memos depend on.

        The sum of this system's mutation epoch (registration and
        allocation changes) and the cluster's membership epoch (node
        joins, crashes, recoveries); both only ever increase, so any
        mid-batch mutation changes the sum.  The pipeline snapshots it
        when a batch opens and re-checks it before every document,
        raising :class:`~repro.errors.BatchContractError` on drift —
        the enforcement half of the batch contract the caches assume.
        """
        cluster = getattr(self, "cluster", None)
        if cluster is None:
            return self._mutation_epoch
        return self._mutation_epoch + cluster.membership_epoch

    # -- registration ------------------------------------------------------

    @abstractmethod
    def _register(self, profile: Filter) -> None:
        """Scheme-specific placement of one filter."""

    def _term_popularity(self, term: str) -> float:
        """How many registered filters carry ``term`` (anchor choice).

        Schemes that track term statistics (MOVE's
        :class:`~repro.stats.TermStatistics`) answer from the live
        popularity tracker, so a conjunctive subscription homes at its
        *rarest* candidate anchor set; schemes without statistics
        return 0 and the choice degrades to the deterministic
        smallest/lexicographic rule.
        """
        stats = getattr(self, "term_stats", None)
        if stats is None:
            return 0.0
        return float(stats.popularity.count(term))

    def _next_subscription_id(self, pending: Set[str]) -> str:
        """Deterministic auto id for a bare query-text item.

        Skips ids already registered *and* ids earlier items of the
        in-flight chunk claimed (``pending``), so a bare-text item
        never collides with an explicit id in the same call.
        """
        while True:
            self._subscription_seq += 1
            candidate = f"q{self._subscription_seq}"
            if candidate not in self._registered and candidate not in pending:
                return candidate

    def _coerce_subscription(
        self,
        item: Union[Filter, str, Tuple[str, ...]],
        pending: Set[str],
    ) -> Filter:
        """Normalize one :meth:`subscribe` item to a profile object.

        ``Filter``/``Subscription`` objects pass through unchanged
        (their anchors were fixed at construction); a query string or
        an ``(id, query[, owner])`` tuple is parsed and homed at its
        rarest anchor candidate against the live popularity
        statistics.  Raises :class:`~repro.model.QueryError` here — at
        the API boundary — when a query cannot be routed.
        """
        if isinstance(item, Filter):
            return item
        if isinstance(item, str):
            return Subscription.from_query(
                self._next_subscription_id(pending),
                item,
                popularity=self._term_popularity,
            )
        if isinstance(item, tuple) and len(item) in (2, 3):
            owner = item[2] if len(item) == 3 else ""
            return Subscription.from_query(
                item[0],
                item[1],
                owner=owner,
                popularity=self._term_popularity,
            )
        raise TypeError(
            "subscribe() items must be Filter/Subscription objects, "
            "query strings, or (id, query[, owner]) tuples; "
            f"got {item!r}"
        )

    def subscribe(
        self,
        items: Union[Filter, str, Iterable[Union[Filter, str, Tuple[str, ...]]]],
        *,
        chunk_size: Optional[int] = None,
    ) -> List[str]:
        """Register subscriptions; **the** registration entrypoint.

        Accepts any mix of flat :class:`~repro.model.Filter` profiles,
        first-class :class:`~repro.model.Subscription` objects, raw
        query strings (``"storm AND (flood OR surge) NOT sports"`` —
        ids are auto-assigned ``q1, q2, …``), and ``(id, query[,
        owner])`` tuples; a single item may be passed bare.  Returns
        the registered ids in input order.

        Query items are parsed up front and homed at their **rarest
        anchor term** (live popularity statistics where the scheme
        tracks them); the full predicate is evaluated at the delivery
        boundary, so routing, allocation, and Bloom pruning see only
        the anchors.  An unroutable query (``NOT sports``) raises
        :class:`~repro.model.QueryError` before anything registers.

        Validation is all-or-nothing per chunk: a duplicate id
        anywhere in a chunk (against the registry or within the chunk)
        raises without registering any of that chunk.  ``chunk_size``
        bounds peak memory when ``items`` is a large stream — each
        chunk is admitted as one bulk operation, exactly what the old
        ``register_streaming`` helper did.

        This entrypoint replaces ``register`` / ``register_all`` /
        ``register_batch`` / ``register_streaming``, which remain as
        deprecated shims (see docs/API.md for the migration note).
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if isinstance(items, (Filter, str)):
            items = [items]
        registered: List[str] = []
        iterator = iter(items)
        while True:
            if chunk_size is None:
                raw_chunk = list(iterator)
            else:
                raw_chunk = list(islice(iterator, chunk_size))
            if not raw_chunk:
                break
            pending: Set[str] = set()
            chunk: List[Filter] = []
            for item in raw_chunk:
                profile = self._coerce_subscription(item, pending)
                pending.add(profile.filter_id)
                chunk.append(profile)
            self._admit_batch(chunk)
            registered.extend(profile.filter_id for profile in chunk)
            if chunk_size is None:
                break
        return registered

    def subscriptions(self) -> Mapping[str, Filter]:
        """Read-only view of every registered subscription by id.

        Flat registrations appear as :class:`~repro.model.Filter`,
        predicated ones as :class:`~repro.model.Subscription` (whose
        ``query`` carries the original text).  Object mode returns a
        snapshot copy; slab mode returns a lazy read-only proxy that
        rehydrates one profile at a time through the slab's bounded
        cache.  This view replaces direct ``registered_filters``
        mapping pokes.
        """
        if self.filter_slab is not None:
            return MappingProxyType(self._registered)
        return dict(self._registered)

    def register(self, profile: Filter) -> None:
        """Deprecated: use :meth:`subscribe`."""
        warnings.warn(
            "register() is deprecated; use subscribe([profile]) "
            "(see docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._admit_one(profile)

    def register_all(self, profiles: Iterable[Filter]) -> None:
        """Deprecated: use :meth:`subscribe`."""
        warnings.warn(
            "register_all() is deprecated; use subscribe(profiles) "
            "(see docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        for profile in profiles:
            self._admit_one(profile)

    def register_batch(self, profiles: Iterable[Filter]) -> None:
        """Deprecated: use :meth:`subscribe`."""
        warnings.warn(
            "register_batch() is deprecated; use subscribe(profiles) "
            "(see docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._admit_batch(list(profiles))

    def _record_predicates(self, batch: Sequence[Filter]) -> None:
        """Post-admission predicate bookkeeping for ``batch``."""
        for profile in batch:
            if (
                isinstance(profile, Subscription)
                and profile.predicate is not None
            ):
                self._predicate_count += 1
                if self._predicates is not None:
                    self._predicates[profile.filter_id] = profile.predicate

    def _admit_one(self, profile: Filter) -> None:
        """Register one profile (the old ``register`` body)."""
        if profile.filter_id in self._registered:
            raise ValueError(
                f"filter {profile.filter_id!r} is already registered"
            )
        self._registered[profile.filter_id] = profile
        self._register(profile)
        self._mutation_epoch += 1
        if self._kernel is not None:
            self._kernel.register_filter(profile)
        self._record_predicates((profile,))
        self.metrics.counter("filters_registered").add()

    def _register_batch(self, profiles: Sequence[Filter]) -> None:
        """Scheme-specific bulk placement.

        The default is the per-filter loop; schemes whose placement
        funnels into an :class:`~repro.matching.inverted_index.
        InvertedIndex` override it to buffer per destination and load
        postings through ``add_filters`` (one sort per posting list
        instead of one insert per filter).  An override must leave the
        system in exactly the state the per-filter loop would.
        """
        for profile in profiles:
            self._register(profile)

    def _admit_batch(self, batch: Sequence[Filter]) -> None:
        """Register many profiles as one bulk operation.

        Equivalent to a per-profile :meth:`_admit_one` loop — same
        final placement, stores, metrics, and duplicate-id rejection —
        but lets the scheme amortize posting-list maintenance across
        the batch.  Validation is all-or-nothing *before* placement: a
        duplicate anywhere in the batch (against the registry or
        within the batch itself) raises without registering any of it.
        """
        seen: Set[str] = set()
        for profile in batch:
            if profile.filter_id in self._registered or (
                profile.filter_id in seen
            ):
                raise ValueError(
                    f"filter {profile.filter_id!r} is already registered"
                )
            seen.add(profile.filter_id)
        self._register_batch(batch)
        if batch:
            self._mutation_epoch += 1
        for profile in batch:
            self._registered[profile.filter_id] = profile
        if self._kernel is not None:
            for profile in batch:
                self._kernel.register_filter(profile)
        self._record_predicates(batch)
        if batch:
            self.metrics.counter("filters_registered").add(
                float(len(batch))
            )

    def _unregister(self, profile: Filter) -> None:
        """Scheme-specific removal of one filter.

        Default raises; schemes that support subscription churn
        override it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support unregistration"
        )

    def unregister(self, filter_id: str) -> Filter:
        """Remove a registered filter; returns the removed profile.

        The registry entry is dropped only after the scheme-specific
        removal succeeds: a scheme that raises (e.g. one that does not
        support churn) leaves the filter registered, keeping the
        registry consistent with the placement structures that still
        hold it.
        """
        profile = self._registered.get(filter_id)
        if profile is None:
            raise KeyError(f"unknown filter {filter_id!r}")
        self._unregister(profile)
        if (
            isinstance(profile, Subscription)
            and profile.predicate is not None
        ):
            self._predicate_count -= 1
            if self._predicates is not None:
                self._predicates.pop(filter_id, None)
        del self._registered[filter_id]
        self._mutation_epoch += 1
        if self._kernel is not None:
            self._kernel.unregister_filter(filter_id)
        self.metrics.counter("filters_unregistered").add()
        return profile

    def finalize_registration(self) -> None:
        """Hook run after bulk registration (MOVE allocates here)."""

    @property
    def registered_filters(self) -> Mapping[str, Filter]:
        """Read view of the registry (the delivery boundary).

        Alias of :meth:`subscriptions`, kept for compatibility; new
        code should call ``subscriptions()``.
        """
        return self.subscriptions()

    # -- predicate delivery gate --------------------------------------------

    @property
    def has_predicates(self) -> bool:
        """True when any registered subscription carries a predicate.

        Checked once per batch by the pipeline: ``False`` keeps the
        whole batch on the anchor-only fast path, byte-identical to
        the flat-filter pipeline.
        """
        return self._predicate_count > 0

    def _predicate_of(self, filter_id: str) -> Optional[QueryNode]:
        """The parsed predicate of ``filter_id``, or None if flat.

        Object mode answers from the predicate dict; slab mode asks
        the slab, which parses the stored raw query text lazily and
        memoizes the tree per slot.
        """
        if self._predicates is not None:
            return self._predicates.get(filter_id)
        return self.filter_slab.predicate_by_id(filter_id)

    def _apply_predicate_gate(
        self, document: Document, matched: Set[str]
    ) -> Tuple[int, int]:
        """Drop matched ids whose predicate rejects ``document``.

        The delivery-boundary evaluation of the tentpole: anchors got
        the document here (routing is predicate-blind), the full
        boolean tree decides delivery.  Mutates ``matched`` in place,
        consumes no RNG, and returns ``(evaluated, rejected)`` counts
        for the per-batch metrics.  Ids rejected here are *not* moved
        to the unreachable set — same convention as the threshold
        semantics, where a candidate failing the score test is simply
        not a match.
        """
        doc_terms = document.terms
        evaluated = 0
        rejected: List[str] = []
        for filter_id in matched:
            predicate = self._predicate_of(filter_id)
            if predicate is None:
                continue
            evaluated += 1
            if not predicate.matches(doc_terms):
                rejected.append(filter_id)
        if rejected:
            matched.difference_update(rejected)
        return evaluated, len(rejected)

    @property
    def total_filters(self) -> int:
        return len(self._registered)

    # -- stats snapshot ------------------------------------------------------

    def _build_stats(self) -> SystemStats:
        """Snapshot the registry (the implementation behind ``stats``)."""
        return SystemStats.from_registry(
            self.name, self.metrics, len(self._registered)
        )

    def stats(self) -> SystemStats:
        """Uniform typed metrics snapshot, same shape on all schemes.

        Replaces ad-hoc probing of ``system.metrics``: the returned
        :class:`~repro.obs.SystemStats` carries the cross-scheme
        totals (documents published/received, posting entries, filter
        counts, nodes touched) plus full counter / load-total maps for
        scheme-specific extras.
        """
        return self._build_stats()

    # -- pipeline stage hooks ------------------------------------------------

    def _observe(self, document: Document) -> None:
        """Pre-dissemination statistics hook (MOVE feeds ``q_i`` here).

        Runs before the ingest draw so the observation order matches
        the seed implementations exactly.  Default: no-op.
        """

    def _choose_ingest(self) -> str:
        """Draw the ingest node for one document (consumes RNG)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _choose_ingest"
        )

    def _resolve_routes(
        self, document: Document, caches: "BatchCaches"
    ) -> object:
        """Stages 1–2: prune terms and resolve destinations.

        Returns the scheme's routing state for one document — e.g. a
        ``{home node: [term ids]}`` grouping for the home-node schemes
        (see :func:`repro.core.pipeline.group_terms_by_home`) — which
        the pipeline passes on to :meth:`_execute` untouched.  Pure
        modulo the batch caches: must not consume RNG.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement _resolve_routes"
        )

    def _execute(self, ctx: "ExecutionContext", routes: object) -> None:
        """Stage 3: per-node matching and work accumulation.

        Fills ``ctx.matched``, ``ctx.unreachable``, ``ctx.work``, and
        ``ctx.routing_messages``.  Any per-document RNG (partition
        draws, failure fallbacks) is consumed here, after the ingest
        draw, in the same order as the seed implementations.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement _execute"
        )

    # -- publication --------------------------------------------------------

    def publish(self, document: Document) -> DisseminationPlan:
        """Match ``document`` against all registered filters.

        Literally a singleton batch: the staged pipeline runs with
        fresh caches, so per-document and batched publishing share one
        implementation and cannot drift apart.
        """
        return self.publish_batch([document])[0]

    def publish_all(
        self, documents: Iterable[Document]
    ) -> List[DisseminationPlan]:
        return [self.publish(document) for document in documents]

    def publish_batch(
        self, documents: Sequence[Document]
    ) -> List[DisseminationPlan]:
        """Publish ``documents`` as one batch, in order.

        Runs the staged pipeline (:mod:`repro.core.pipeline`) with one
        shared cache set, memoizing per-term routing and retrieval
        work across the batch.  Batching is observationally inert:
        plans are bit-identical to the per-document loop under the
        same seed — equal matched sets, tasks, costs, and RNG
        consumption.  Registration, allocation, and cluster
        membership must not change mid-batch: the pipeline pins the
        batch epoch and raises
        :class:`~repro.errors.BatchContractError` if they do.

        Subclasses customize dissemination through the stage hooks
        (``_choose_ingest`` / ``_resolve_routes`` / ``_execute``); an
        override of :meth:`publish` is *not* consulted here (the
        pre-pipeline publish-override shim has been removed).
        """
        return self._engine.publish_batch(documents)

    # -- shared accounting ---------------------------------------------------

    def _account_tasks(self, tasks: Sequence[NodeTask]) -> None:
        """Fold a plan's tasks into the Figure 9 load metrics."""
        received = self.metrics.load("documents_received")
        entries = self.metrics.load("posting_entries")
        for task in tasks:
            received.add(task.node_id, 1.0)
            entries.add(task.node_id, float(task.posting_entries))
