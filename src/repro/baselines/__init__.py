"""Baseline dissemination systems the paper compares against.

- :mod:`repro.baselines.base` — the shared system protocol and the
  dissemination-plan structures (also used by MOVE itself),
- :mod:`repro.baselines.inverted_list` — **IL**: the pure distributed
  inverted list of Section III (no allocation),
- :mod:`repro.baselines.rendezvous` — **RS**: the distributed
  rendezvous/flooding scheme with ROAR-style partition levels and SIFT
  local matching,
- :mod:`repro.baselines.centralized` — a single-node SIFT matcher (the
  Figure 6/7 experiments) and **Centralized**: the same idea as a full
  dissemination system (everything on one cluster node).

All four systems disseminate through the staged pipeline in
:mod:`repro.core.pipeline`, supplying only their route-resolution and
matching callbacks.
"""

from .base import DisseminationPlan, DisseminationSystem, NodeTask
from .centralized import CentralizedSift, CentralizedSystem
from .inverted_list import InvertedListSystem
from .rendezvous import RendezvousSystem

__all__ = [
    "DisseminationSystem",
    "DisseminationPlan",
    "NodeTask",
    "InvertedListSystem",
    "RendezvousSystem",
    "CentralizedSift",
    "CentralizedSystem",
]
