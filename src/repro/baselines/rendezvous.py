"""RS — the distributed rendezvous (flooding) baseline.

The Google-cluster search architecture [5] with the ROAR [16]
partition-level extension, adapted to content matching as the paper's
evaluation does (Section VI-A):

- the hash of a filter's unique name maps it to a partition, so filters
  are evenly distributed over the cluster;
- the cluster's ``N`` nodes are arranged into ``partition_level``
  partitions of ``N / partition_level`` replica nodes; every replica of
  a partition stores that partition's full filter share (this is where
  "the partition mechanism leads to more redundant filters on each
  node" comes from);
- RS has no distributed inverted list, so each node indexes its local
  filters under *all* their terms and matches each received document
  with the centralized SIFT algorithm — retrieving the posting lists of
  all ``|d|`` document terms;
- a published document is forwarded to one (randomly chosen) replica of
  *every* partition: blind flooding — every partition is visited whether
  or not it stores matching filters.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from ..cluster.cluster import Cluster
from ..config import SystemConfig
from ..errors import ConfigurationError
from ..matching.inverted_index import InvertedIndex
from ..matching.sift import SiftMatcher
from ..model import Document, Filter
from ..sim.randomness import stable_hash64
from .base import DisseminationPlan, DisseminationSystem, NodeTask


class RendezvousSystem(DisseminationSystem):
    """Flooding with ROAR-style partition levels and SIFT matching."""

    name = "RS"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SystemConfig] = None,
        partition_level: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> None:
        super().__init__(config, threshold=threshold)
        self.cluster = cluster
        node_ids = cluster.node_ids()
        if not node_ids:
            raise ConfigurationError("cluster has no nodes")
        replica_target = self.config.cluster.replica_count
        if partition_level is None:
            # Default: enough partitions that each filter lands on
            # ~replica_count nodes (the paper's "three folds of
            # replicas" comparison point).
            partition_level = max(1, len(node_ids) // replica_target)
        if not 1 <= partition_level <= len(node_ids):
            raise ConfigurationError(
                f"partition_level must be in [1, {len(node_ids)}], "
                f"got {partition_level}"
            )
        self.partition_level = partition_level
        # Round-robin nodes into partitions: partition p gets nodes
        # p, p + L, p + 2L, ... — every partition has >= 1 replica.
        self._partitions: List[List[str]] = [
            node_ids[p :: partition_level] for p in range(partition_level)
        ]
        self._indexes: Dict[str, InvertedIndex] = {
            node_id: InvertedIndex() for node_id in node_ids
        }
        self._matchers: Dict[str, SiftMatcher] = {
            node_id: SiftMatcher(index)
            for node_id, index in self._indexes.items()
        }
        self._rng = random.Random((self.config.seed or 0) + 0x25)

    # -- registration ----------------------------------------------------

    def partition_of(self, filter_id: str) -> int:
        return stable_hash64(filter_id) % self.partition_level

    def _register(self, profile: Filter) -> None:
        partition = self._partitions[self.partition_of(profile.filter_id)]
        storage_load = self.metrics.load("storage_replicas")
        for node_id in partition:
            node = self.cluster.node(node_id)
            node.filter_store.put(
                profile.filter_id, "terms", profile.sorted_terms()
            )
            # Full local inverted list: indexed under every term.
            self._indexes[node_id].add_filter(profile)
            storage_load.add(node_id, 1.0)

    def _unregister(self, profile: Filter) -> None:
        """Remove the filter from every replica of its partition."""
        partition = self._partitions[self.partition_of(profile.filter_id)]
        for node_id in partition:
            self._indexes[node_id].remove_filter(profile.filter_id)
            self.cluster.node(node_id).filter_store.delete(
                profile.filter_id
            )

    # -- dissemination --------------------------------------------------------

    def publish(self, document: Document) -> DisseminationPlan:
        ingest = self._choose_ingest()
        matched: Set[str] = set()
        unreachable: Set[str] = set()
        tasks: List[NodeTask] = []
        for partition in self._partitions:
            live = [
                node_id
                for node_id in partition
                if self.cluster.node(node_id).alive
            ]
            if not live:
                # Whole partition down: its filter share is unreachable.
                sample_index = self._indexes[partition[0]]
                filters, _ = sample_index.match_document_all_terms(
                    document
                )
                unreachable.update(f.filter_id for f in filters)
                continue
            node_id = self._rng.choice(live)
            filters, cost = self._matchers[node_id].match(document)
            matched.update(
                f.filter_id
                for f in self._apply_semantics(document, filters)
            )
            tasks.append(
                NodeTask(
                    node_id=node_id,
                    path=(ingest, node_id),
                    posting_lists=cost.posting_lists,
                    posting_entries=cost.posting_entries,
                )
            )
        unreachable -= matched
        self._account_tasks(tasks)
        self.metrics.counter("documents_published").add()
        return DisseminationPlan(
            document=document,
            matched_filter_ids=matched,
            tasks=tasks,
            unreachable_filter_ids=unreachable,
            routing_messages=self.partition_level,
        )

    def _choose_ingest(self) -> str:
        live = self.cluster.live_node_ids()
        if not live:
            raise RuntimeError("no live nodes to ingest documents")
        return self._rng.choice(live)

    # -- diagnostics -----------------------------------------------------------

    def storage_distribution(self) -> Dict[str, float]:
        """Distinct filters stored per node.

        RS indexes each local filter under all of its terms, so the
        capacity-relevant count is the number of filters, not posting
        entries (IL/MOVE home copies are indexed under exactly one term
        each, where the two counts coincide).
        """
        return {
            node_id: float(len(index))
            for node_id, index in self._indexes.items()
        }
