"""RS — the distributed rendezvous (flooding) baseline.

The Google-cluster search architecture [5] with the ROAR [16]
partition-level extension, adapted to content matching as the paper's
evaluation does (Section VI-A):

- the hash of a filter's unique name maps it to a partition, so filters
  are evenly distributed over the cluster;
- the cluster's ``N`` nodes are arranged into ``partition_level``
  partitions of ``N / partition_level`` replica nodes; every replica of
  a partition stores that partition's full filter share (this is where
  "the partition mechanism leads to more redundant filters on each
  node" comes from);
- RS has no distributed inverted list, so each node indexes its local
  filters under *all* their terms and matches each received document
  with the centralized SIFT algorithm — retrieving the posting lists of
  all ``|d|`` document terms;
- a published document is forwarded to one (randomly chosen) replica of
  *every* partition: blind flooding — every partition is visited whether
  or not it stores matching filters.

Dissemination runs through the staged pipeline
(:mod:`repro.core.pipeline`): route resolution is the partition list
itself (flooding has no pruning), and execution memoizes each
partition's live-replica roster and each replica's per-term posting
retrievals across the batch — the per-partition replica *choice* stays
a fresh RNG draw per document, exactly as in the seed implementation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..config import SystemConfig
from ..core.pipeline import BatchCaches, ExecutionContext, Retrieval
from ..errors import ConfigurationError
from ..matching.inverted_index import InvertedIndex
from ..matching.sift import SiftMatcher
from ..model import Document, Filter
from ..sim.randomness import stable_hash64
from .base import DisseminationSystem


class RendezvousSystem(DisseminationSystem):
    """Flooding with ROAR-style partition levels and SIFT matching."""

    name = "RS"

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SystemConfig] = None,
        partition_level: Optional[int] = None,
        threshold: Optional[float] = None,
    ) -> None:
        super().__init__(config, threshold=threshold)
        self.cluster = cluster
        node_ids = cluster.node_ids()
        if not node_ids:
            raise ConfigurationError("cluster has no nodes")
        replica_target = self.config.cluster.replica_count
        if partition_level is None:
            # Default: enough partitions that each filter lands on
            # ~replica_count nodes (the paper's "three folds of
            # replicas" comparison point).
            partition_level = max(1, len(node_ids) // replica_target)
        if not 1 <= partition_level <= len(node_ids):
            raise ConfigurationError(
                f"partition_level must be in [1, {len(node_ids)}], "
                f"got {partition_level}"
            )
        self.partition_level = partition_level
        # Round-robin nodes into partitions: partition p gets nodes
        # p, p + L, p + 2L, ... — every partition has >= 1 replica.
        self._partitions: List[List[str]] = [
            node_ids[p :: partition_level] for p in range(partition_level)
        ]
        self._indexes: Dict[str, InvertedIndex] = {
            node_id: self._make_index() for node_id in node_ids
        }
        self._matchers: Dict[str, SiftMatcher] = {
            node_id: SiftMatcher(index)
            for node_id, index in self._indexes.items()
        }
        self._rng = random.Random((self.config.seed or 0) + 0x25)

    # -- registration ----------------------------------------------------

    def partition_of(self, filter_id: str) -> int:
        return stable_hash64(filter_id) % self.partition_level

    def _register(self, profile: Filter) -> None:
        partition = self._partitions[self.partition_of(profile.filter_id)]
        storage_load = self.metrics.load("storage_replicas")
        for node_id in partition:
            self._store_filter(node_id, profile)
            # Full local inverted list: indexed under every term.
            self._indexes[node_id].add_filter(profile)
            storage_load.add(node_id, 1.0)

    def _register_batch(self, profiles) -> None:
        """Bulk registration: identical placement to the per-filter
        loop (same store writes and load updates, in the same order),
        with each replica's local inverted list loaded through
        ``add_filters`` — one sort per posting list instead of one
        insert per filter."""
        storage_load = self.metrics.load("storage_replicas")
        buffers: Dict[str, List[Tuple[Filter, None]]] = {}
        for profile in profiles:
            partition = self._partitions[
                self.partition_of(profile.filter_id)
            ]
            for node_id in partition:
                self._store_filter(node_id, profile)
                buffers.setdefault(node_id, []).append((profile, None))
                storage_load.add(node_id, 1.0)
        for node_id, buffered in buffers.items():
            self._indexes[node_id].add_filters(buffered)

    def _unregister(self, profile: Filter) -> None:
        """Remove the filter from every replica of its partition."""
        partition = self._partitions[self.partition_of(profile.filter_id)]
        for node_id in partition:
            self._indexes[node_id].remove_filter(profile.filter_id)
            self._unstore_filter(node_id, profile.filter_id)

    # -- dissemination (pipeline stage hooks) ------------------------------

    def _resolve_routes(
        self, document: Document, caches: BatchCaches
    ) -> List[List[str]]:
        """Blind flooding: every partition sees every document."""
        return self._partitions

    def _execute(
        self, ctx: ExecutionContext, routes: List[List[str]]
    ) -> None:
        """One randomly chosen live replica of every partition runs the
        centralized SIFT match over all document terms."""
        ctx.routing_messages = self.partition_level
        caches = ctx.caches
        document = ctx.document
        matched = ctx.matched
        rosters = caches.routing
        node_of = self.cluster.node
        plain_boolean = self._scorer is None
        for p_index, partition in enumerate(routes):
            live = rosters.get(p_index)
            if live is None:
                live = [
                    node_id
                    for node_id in partition
                    if node_of(node_id).alive
                ]
                rosters[p_index] = live
            if not live:
                # Whole partition down: its filter share is unreachable.
                sample = partition[0]
                for term, term_id in zip(
                    document.terms, document.term_ids
                ):
                    ctx.unreachable.update(
                        self._retrieve_cached(caches, sample, term_id, term)[1]
                    )
                continue
            node_id = self._rng.choice(live)
            lists = 0
            entries = 0
            if plain_boolean:
                for term, term_id in zip(
                    document.terms, document.term_ids
                ):
                    _, filter_ids, n_lists, n_entries = (
                        self._retrieve_cached(
                            caches, node_id, term_id, term
                        )
                    )
                    lists += n_lists
                    entries += n_entries
                    matched.update(filter_ids)
            elif self._kernel_accumulates():
                # Score-accumulation SIFT: every replica indexes its
                # filters under all their terms, so walking the |d|
                # posting lists accumulates each candidate's full dot
                # product (see repro.matching.kernel).  The CSR
                # backend runs the whole replica block as one
                # vectorized pass (repro.matching.csr_kernel); both
                # paths produce bit-identical matches and costs.
                bulk = self._kernel.bulk_match(
                    document, self._indexes[node_id], caches
                )
                if bulk is not None:
                    profiles, lists, entries = bulk
                    matched.update(
                        profile.filter_id for profile in profiles
                    )
                else:
                    scoring = self._kernel.begin(document, caches)
                    for term, term_id in zip(
                        document.terms, document.term_ids
                    ):
                        filters, _, n_lists, n_entries = (
                            self._retrieve_cached(
                                caches, node_id, term_id, term
                            )
                        )
                        lists += n_lists
                        entries += n_entries
                        scoring.accumulate(term, filters)
                    matched.update(
                        profile.filter_id
                        for profile in scoring.matched()
                    )
            else:
                # Dedup candidates across terms (as SIFT does) before
                # scoring each one once against the threshold.
                candidates: Dict[str, Filter] = {}
                for term, term_id in zip(
                    document.terms, document.term_ids
                ):
                    filters, _, n_lists, n_entries = (
                        self._retrieve_cached(
                            caches, node_id, term_id, term
                        )
                    )
                    lists += n_lists
                    entries += n_entries
                    for profile in filters:
                        candidates.setdefault(profile.filter_id, profile)
                matched.update(
                    profile.filter_id
                    for profile in self._apply_semantics(
                        document, candidates.values()
                    )
                )
            ctx.work.add(node_id, lists, entries, (ctx.ingest, node_id))

    def _retrieve_cached(
        self,
        caches: BatchCaches,
        node_id: str,
        term_id: int,
        term: str,
    ) -> Retrieval:
        """Per-replica posting retrieval, memoized per batch (RS nodes
        index under all terms, so the node must be part of the key)."""
        key = (node_id, term_id)
        entry = caches.retrieval.get(key)
        if entry is None:
            entry = caches.retrieve(key, self._indexes[node_id], term)
        return entry

    def _choose_ingest(self) -> str:
        live = self.cluster.live_node_ids()
        if not live:
            raise RuntimeError("no live nodes to ingest documents")
        return self._rng.choice(live)

    # -- diagnostics -----------------------------------------------------------

    def storage_distribution(self) -> Dict[str, float]:
        """Distinct filters stored per node.

        RS indexes each local filter under all of its terms, so the
        capacity-relevant count is the number of filters, not posting
        entries (IL/MOVE home copies are indexed under exactly one term
        each, where the two counts coincide).
        """
        return {
            node_id: float(len(index))
            for node_id, index in self._indexes.items()
        }
