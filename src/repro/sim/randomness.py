"""Seeded random-stream management.

Every stochastic component (workload generation, partition choice,
randomized rounding, failure injection) draws from its own named child
stream so adding a new consumer never perturbs existing ones — the
classic trick for reproducible simulations.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional


class RandomSource:
    """A root seed that hands out independent named child generators.

    >>> src = RandomSource(42)
    >>> a = src.stream("workload").random()
    >>> b = RandomSource(42).stream("workload").random()
    >>> a == b
    True
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed if seed is not None else random.randrange(2**63)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the child generator ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()
            ).digest()
            generator = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RandomSource":
        """Derive an independent child :class:`RandomSource`."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))


def stable_hash64(value: str) -> int:
    """A process-independent 64-bit hash of ``value``.

    Python's builtin ``hash`` is salted per process; anything that must
    be stable across runs (ring tokens, term-to-home-node mapping) goes
    through this helper instead.
    """
    digest = hashlib.md5(value.encode()).digest()
    return int.from_bytes(digest[:8], "big")
