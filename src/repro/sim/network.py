"""Network latency model for the simulated cluster.

Models a flat datacenter fabric with optional rack locality: messages
between nodes in the same rack see ``intra_rack_latency``; cross-rack
messages see ``inter_rack_latency``.  Document-payload transfers add
the cost model's per-document ``y_d`` on top (handled by callers so
control messages stay cheap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .engine import Simulator


@dataclass(frozen=True)
class LinkSpec:
    """Latency parameters of the simulated fabric (seconds)."""

    intra_rack_latency: float = 5e-5
    inter_rack_latency: float = 2e-4

    def __post_init__(self) -> None:
        if self.intra_rack_latency < 0 or self.inter_rack_latency < 0:
            raise ValueError("link latencies must be non-negative")


class NetworkModel:
    """Delivers callbacks after the appropriate link latency.

    ``rack_of`` maps a node id to its rack name; when omitted, every
    pair of distinct nodes is treated as cross-rack and self-delivery
    is instantaneous.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[LinkSpec] = None,
        rack_of: Optional[Callable[[str], str]] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec or LinkSpec()
        self._rack_of = rack_of
        self.messages_sent = 0
        self.bytes_like_cost = 0.0

    def latency(self, source: str, destination: str) -> float:
        """One-way latency between two nodes."""
        if source == destination:
            return 0.0
        if self._rack_of is not None:
            if self._rack_of(source) == self._rack_of(destination):
                return self.spec.intra_rack_latency
        return self.spec.inter_rack_latency

    def send(
        self,
        source: str,
        destination: str,
        deliver: Callable[[], None],
        payload_cost: float = 0.0,
    ) -> None:
        """Deliver ``deliver()`` at the destination after latency.

        ``payload_cost`` adds serialized-transfer time (the paper's
        ``y_d`` for document payloads).
        """
        self.messages_sent += 1
        self.bytes_like_cost += payload_cost
        delay = self.latency(source, destination) + payload_cost
        self.sim.schedule(delay, deliver)
