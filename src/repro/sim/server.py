"""Single-server FIFO queue — the disk-bound node service model.

Each simulated cluster node owns one :class:`FifoServer`.  Jobs arrive
with a precomputed service time (from :class:`~repro.sim.costs.
MatchCostModel`); the server works them one at a time in arrival order,
which is how a disk-bound matcher behaves and what makes hot-spot nodes
the throughput bottleneck in the paper's analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from ..errors import SimulationError
from ..obs.metrics import MetricsRegistry
from .engine import Simulator


@dataclass
class _Job:
    service_time: float
    on_complete: Optional[Callable[[], None]]
    enqueued_at: float


@dataclass
class ServerStats:
    """Aggregate statistics of one server."""

    jobs_completed: int = 0
    busy_time: float = 0.0
    total_wait: float = 0.0
    total_sojourn: float = 0.0
    max_queue_length: int = 0

    @property
    def mean_wait(self) -> float:
        if not self.jobs_completed:
            return 0.0
        return self.total_wait / self.jobs_completed

    @property
    def mean_sojourn(self) -> float:
        if not self.jobs_completed:
            return 0.0
        return self.total_sojourn / self.jobs_completed

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / elapsed, 1.0)


class FifoServer:
    """A work-conserving single server bound to a simulator.

    ``registry`` optionally wires the server into the observability
    layer (:mod:`repro.obs`): each completed job observes its service
    and wait times (simulated seconds) into the ``server.service`` /
    ``server.wait`` histograms and accumulates the per-server
    ``server_busy_time`` load — the per-node event timeline failure
    diagnosis needs.  Without a registry the completion path is
    untouched.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "server",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.stats = ServerStats()
        self.registry = registry
        self._queue: Deque[_Job] = deque()
        self._queued_work = 0.0
        self._busy = False
        self._paused = False

    @property
    def queue_length(self) -> int:
        """Jobs waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def queued_work(self) -> float:
        """Total service seconds waiting in the queue.

        Maintained as an O(1) running total on submit/start rather
        than summed over the deque per call — the load-balancing
        policies poll this per routing decision, making a linear scan
        O(queue) per published document.
        """
        return self._queued_work

    @property
    def busy(self) -> bool:
        return self._busy

    def submit(
        self,
        service_time: float,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue a job taking ``service_time`` simulated seconds."""
        if service_time < 0:
            raise SimulationError(
                f"service_time must be non-negative, got {service_time}"
            )
        job = _Job(service_time, on_complete, self.sim.now)
        self._queue.append(job)
        self._queued_work += service_time
        self.stats.max_queue_length = max(
            self.stats.max_queue_length, len(self._queue)
        )
        self._maybe_start()

    def pause(self) -> None:
        """Stop taking new work (models a crashed node).

        The job currently in service still completes (its disk write
        was already issued); queued jobs stay queued until `resume`.
        """
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._busy or self._paused or not self._queue:
            return
        job = self._queue.popleft()
        if self._queue:
            self._queued_work -= job.service_time
        else:
            # Empty queue holds exactly zero work; snapping kills any
            # accumulated float round-off from the running total.
            self._queued_work = 0.0
        self._busy = True
        self.stats.total_wait += self.sim.now - job.enqueued_at
        started = self.sim.now

        def finish() -> None:
            self._busy = False
            self.stats.jobs_completed += 1
            self.stats.busy_time += self.sim.now - started
            self.stats.total_sojourn += self.sim.now - job.enqueued_at
            registry = self.registry
            if registry is not None:
                registry.histogram("server.service").observe(
                    self.sim.now - started
                )
                registry.histogram("server.wait").observe(
                    started - job.enqueued_at
                )
                registry.load("server_busy_time").add(
                    self.name, self.sim.now - started
                )
            if job.on_complete is not None:
                job.on_complete()
            self._maybe_start()

        self.sim.schedule(job.service_time, finish)
