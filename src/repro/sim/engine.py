"""A minimal, deterministic discrete-event engine — and the clock
abstraction that lets the same dataplane run off real time.

Events are ``(time, sequence, callback)`` triples in a binary heap; the
sequence number breaks ties so simultaneous events fire in scheduling
order, which keeps runs reproducible under a fixed seed.

Two small abstractions decouple everything above this module from the
*source* of time:

- :class:`Clock` — a monotonically non-decreasing ``now``.  The
  :class:`Simulator` is a virtual clock; :class:`MonotonicClock` and
  :class:`PerfClock` read the host's real clocks.  The dissemination
  pipeline and the tracer take a :class:`Clock` so stage timings come
  from whichever driver is running them.
- :class:`EventDriver` — a clock that can also ``schedule`` callbacks.
  The :class:`Simulator` fires them in virtual time; the asyncio
  runtime (:class:`repro.serve.AsyncioEventDriver`) fires them on a
  live event loop.  Periodic work (the 10-minute allocation refresh)
  is written once against this interface and runs under either
  driver.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError


class Clock(ABC):
    """A monotonically non-decreasing time source (seconds)."""

    __slots__ = ()

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or real)."""


class MonotonicClock(Clock):
    """Real time via :func:`time.monotonic` (the service runtime's
    default timebase; immune to wall-clock steps)."""

    __slots__ = ()

    @property
    def now(self) -> float:
        return _time.monotonic()


class PerfClock(Clock):
    """Real time via :func:`time.perf_counter` (highest resolution;
    the tracer's historical timebase, kept as its default)."""

    __slots__ = ()

    @property
    def now(self) -> float:
        return _time.perf_counter()


#: Shared real-clock singletons — the classes are stateless.
MONOTONIC_CLOCK = MonotonicClock()
PERF_CLOCK = PerfClock()


class EventDriver(Clock):
    """A :class:`Clock` that can also schedule timed callbacks.

    Implementations must provide :meth:`schedule` returning a handle
    with a ``cancel()`` method.  :meth:`schedule_at` has a default in
    terms of :meth:`schedule`.
    """

    __slots__ = ()

    @abstractmethod
    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> "Event":
        """Run ``callback`` ``delay`` seconds from now; returns a
        cancellable handle."""

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> "Event":
        """Schedule ``callback`` at absolute time ``time``."""
        return self.schedule(time - self.now, callback)


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Set by the owning :class:`Simulator` so it can track how many
    #: cancelled entries its heap is carrying (lazy compaction).
    on_cancel: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it fires."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()


class Simulator(EventDriver):
    """Event loop with a virtual clock.

    The canonical :class:`EventDriver`: ``now`` is virtual time and
    ``schedule`` fires callbacks in deterministic event order.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    2
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._running = False
        self._cancelled_count = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued.

        Cancelled events occupy heap slots until popped or lazily
        compacted away (see :meth:`_maybe_compact`), so the count may
        transiently include some of them.
        """
        return len(self._heap)

    def _note_cancelled(self) -> None:
        """One queued event was cancelled; compact when they dominate."""
        self._cancelled_count += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Drop cancelled entries once they exceed half the heap.

        Long-running workloads that schedule-then-cancel (timeouts,
        lease renewals) would otherwise grow the heap without bound;
        rebuilding is O(n) and amortized by the half-full trigger.
        """
        if self._cancelled_count <= len(self._heap) // 2:
            return
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_count = 0

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})"
            )
        event = Event(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
            on_cancel=self._note_cancelled,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        return self.schedule(time - self._now, callback)

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_count -= 1
                continue
            if event.time < self._now:
                raise SimulationError(
                    "event heap corrupted: time went backwards "
                    f"({event.time} < {self._now})"
                )
            self._now = event.time
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` events have fired.  Returns events fired.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so rate
        computations over the window are exact.
        """
        if self._running:
            raise SimulationError("run() re-entered from an event callback")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_count -= 1
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return fired
