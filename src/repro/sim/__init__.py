"""Discrete-event simulation substrate.

The paper's evaluation ran on ~100 physical machines; this package
replaces the hardware with a deterministic discrete-event simulation.
Throughput is measured in the same units the paper's cost model uses
(Eq. 1–3: ``y_p`` per document/filter match, ``y_d`` per document
transfer), so the relative shapes of the curves are preserved.

- :mod:`repro.sim.engine` — event loop (priority queue of timestamped
  callbacks) plus the :class:`Clock` / :class:`EventDriver`
  abstractions that let the same dataplane run off real time
  (see :mod:`repro.serve`),
- :mod:`repro.sim.server` — single-server FIFO queues (the disk-bound
  node model),
- :mod:`repro.sim.network` — link latency model,
- :mod:`repro.sim.costs` — the paper's latency cost model,
- :mod:`repro.sim.randomness` — seeded stream splitting.

Metrics primitives (``Counter``, ``MetricsRegistry``, …) live in
:mod:`repro.obs`; the old ``repro.sim.metrics`` shim module has been
removed.
"""

from .costs import MatchCostModel
from .engine import (
    Clock,
    Event,
    EventDriver,
    MonotonicClock,
    PerfClock,
    Simulator,
)
from .network import NetworkModel
from .randomness import RandomSource
from .server import FifoServer

__all__ = [
    "Simulator",
    "Event",
    "Clock",
    "EventDriver",
    "MonotonicClock",
    "PerfClock",
    "FifoServer",
    "NetworkModel",
    "MatchCostModel",
    "RandomSource",
]
