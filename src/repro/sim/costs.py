"""The paper's latency cost model (Section IV-B, Eq. 1–3).

On a node, filters are indexed by a local inverted list and the latency
to match a document is dominated by retrieving posting lists from disk
(the paper cites EC2 measurements showing disk IO is the bottleneck).
We model the service time of matching one document on one node as::

    service = y_seek * (#posting lists retrieved)
            + y_p    * (#posting entries scanned)

and the cost of shipping a document to a node as ``y_d``.  For the
baseline/Move home-node matcher, one posting list is retrieved per
shared term; for the SIFT/rendezvous matcher, all ``|d|`` lists are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..config import CostModelConfig


@dataclass
class MatchCostModel:
    """Computes service and transfer times from the cost config."""

    config: CostModelConfig

    @classmethod
    def default(cls) -> "MatchCostModel":
        return cls(CostModelConfig())

    def transfer_time(self, fanout: int = 1) -> float:
        """Time to ship one document to ``fanout`` nodes.

        Transfers to the nodes of a partition happen in parallel
        (Section IV-A), so the latency contribution per node is one
        ``y_d`` regardless of fanout; the *work* is ``fanout * y_d``.
        This returns the per-node latency; callers that account work
        multiply by fanout themselves.
        """
        if fanout < 0:
            raise ValueError(f"fanout must be non-negative, got {fanout}")
        return self.config.y_d if fanout else 0.0

    def match_time(
        self, posting_lists: int, posting_entries: int
    ) -> float:
        """Service time of one local match operation."""
        if posting_lists < 0 or posting_entries < 0:
            raise ValueError(
                "posting_lists and posting_entries must be non-negative"
            )
        return (
            self.config.y_seek * posting_lists
            + self.config.y_p * posting_entries
        )

    def match_time_from_lengths(self, lengths: Iterable[int]) -> float:
        """Service time when retrieving lists of the given lengths."""
        lists = 0
        entries = 0
        for length in lengths:
            lists += 1
            entries += length
        return self.match_time(lists, entries)

    def theoretical_latency_eq1(
        self, p_i: float, q_i: float, total_filters: int,
        total_documents: int, n_i: int,
    ) -> float:
        """Equation 1: ``Y_i = y_p * p_i*P * q_i*Q / n_i``.

        The paper's closed form for the latency of matching the ``Q_i``
        documents with the ``P_i`` filters under an allocation onto
        ``n_i`` nodes; notably independent of the allocation ratio.
        """
        if n_i < 1:
            raise ValueError(f"n_i must be >= 1, got {n_i}")
        return (
            self.config.y_p
            * (p_i * total_filters)
            * (q_i * total_documents)
            / n_i
        )

    def theoretical_latency_eq2(
        self, p_i: float, q_i: float, total_filters: int,
        total_documents: int, n_i: int, ratio: float,
    ) -> float:
        """Equation 2: transfer + match latency under ratio ``ratio``."""
        if n_i < 1:
            raise ValueError(f"n_i must be >= 1, got {n_i}")
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        received = q_i * total_documents
        return received * (
            self.config.y_d * ratio
            + self.config.y_p * p_i * total_filters / n_i
        )
