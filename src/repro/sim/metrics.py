"""Metrics collection: counters, per-node load, throughput series.

Experiments read every reported number from here so there is a single
definition of, e.g., "matching cost" (Figure 9b) or "throughput"
(Figures 6–8) shared by all three systems under comparison.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple


class Counter:
    """A monotone named counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative add {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class LoadTracker:
    """Per-key (typically per-node) load accumulator.

    Used for Figure 9(a) storage cost and Figure 9(b) matching cost.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._load: Dict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        self._load[key] += amount

    def set(self, key: str, amount: float) -> None:
        self._load[key] = amount

    def get(self, key: str) -> float:
        return self._load.get(key, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._load)

    def total(self) -> float:
        return sum(self._load.values())

    def mean(self) -> float:
        if not self._load:
            return 0.0
        return self.total() / len(self._load)

    def ranked(self, descending: bool = True) -> List[Tuple[str, float]]:
        """(key, load) pairs sorted by load."""
        return sorted(
            self._load.items(), key=lambda kv: kv[1], reverse=descending
        )

    def normalized_ranked(
        self, reference_mean: Optional[float] = None, descending: bool = True
    ) -> List[float]:
        """Loads divided by a reference mean, ranked.

        Figure 9 plots each node's load over the *RS scheme's* overall
        average load; pass that mean as ``reference_mean``.
        """
        mean = self.mean() if reference_mean is None else reference_mean
        if mean == 0.0:
            return [0.0 for _ in self._load]
        return [
            load / mean for _, load in self.ranked(descending=descending)
        ]

    def imbalance(self) -> float:
        """Max/mean ratio — 1.0 is perfectly balanced."""
        if not self._load:
            return 1.0
        mean = self.mean()
        if mean == 0.0:
            return 1.0
        return max(self._load.values()) / mean


class ThroughputMeter:
    """Counts completed documents and reports docs/second.

    The paper (Section VI-A): "for a document, if all matching filters
    are found, we then add the throughput by 1" — callers invoke
    :meth:`complete` exactly once per fully matched document.
    """

    def __init__(self) -> None:
        self.completed = 0
        self.started = 0
        self._first_completion: Optional[float] = None
        self._last_completion: Optional[float] = None

    def start(self) -> None:
        self.started += 1

    def complete(self, now: float) -> None:
        self.completed += 1
        if self._first_completion is None:
            self._first_completion = now
        self._last_completion = now

    def throughput(self, elapsed: float) -> float:
        """Documents fully matched per second over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed

    @property
    def completion_span(self) -> float:
        if self._first_completion is None or self._last_completion is None:
            return 0.0
        return self._last_completion - self._first_completion


@dataclass
class MetricsRegistry:
    """Bag of named metrics owned by one system instance."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    loads: Dict[str, LoadTracker] = field(default_factory=dict)
    meter: ThroughputMeter = field(default_factory=ThroughputMeter)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def load(self, name: str) -> LoadTracker:
        if name not in self.loads:
            self.loads[name] = LoadTracker(name)
        return self.loads[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat name→value view of all counters."""
        snap = {name: c.value for name, c in self.counters.items()}
        snap["documents_completed"] = float(self.meter.completed)
        return snap
