"""Metrics collection: counters, per-node load, throughput series.

Experiments read every reported number from here so there is a single
definition of, e.g., "matching cost" (Figure 9b) or "throughput"
(Figures 6–8) shared by all three systems under comparison.

The implementations now live in :mod:`repro.obs.metrics` — the unified
observability registry that also backs the tracing layer — and this
module re-exports them unchanged, so ``repro.sim`` imports keep
working and figure experiments keep their single source of truth.
"""

from __future__ import annotations

from ..obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    LoadTracker,
    MetricsRegistry,
    ThroughputMeter,
)

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "LoadTracker",
    "MetricsRegistry",
    "ThroughputMeter",
]
