"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still distinguishing subsystem-specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object failed validation."""


class ClusterError(ReproError):
    """Base class for cluster-substrate errors."""


class NodeDownError(ClusterError):
    """An operation was routed to a node that is not alive."""

    def __init__(self, node_id: str, operation: str = "") -> None:
        self.node_id = node_id
        self.operation = operation
        detail = f" during {operation}" if operation else ""
        super().__init__(f"node {node_id!r} is down{detail}")


class UnknownNodeError(ClusterError):
    """A node id was referenced that is not part of the cluster."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        super().__init__(f"unknown node {node_id!r}")


class RingEmptyError(ClusterError):
    """A lookup was attempted on a hash ring with no live members."""


class StorageError(ReproError):
    """Base class for column-family storage errors."""


class WalError(StorageError):
    """The write-ahead log was driven incorrectly."""


class WalCorruptionError(WalError):
    """A WAL segment holds an unreadable record outside the torn tail.

    The reader tolerates a truncated or CRC-broken record at the *end
    of the final segment* (a torn write from the crash that the log
    exists to survive); the same damage anywhere else means the log
    files were tampered with or lost data, which replay must not paper
    over.
    """


class UnknownColumnFamilyError(StorageError):
    """A read or write referenced a column family that was never created."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unknown column family {name!r}")


class AllocationError(ReproError):
    """A filter-allocation plan could not be constructed or is invalid."""


class WorkloadError(ReproError):
    """A workload generator received unsatisfiable parameters."""


class SimulationError(ReproError):
    """The discrete-event engine was driven incorrectly."""


class MatchingError(ReproError):
    """A matching engine was misused (e.g. unregistered filter id)."""


class BatchContractError(ReproError):
    """Registration/allocation/membership mutated inside a batch.

    The staged pipeline memoizes per-term routing and posting
    retrievals for the duration of one ``publish_batch`` call on the
    premise that registration, allocation, and cluster membership are
    frozen while the batch runs.  A mutation that lands mid-batch
    (reachable from the asyncio service runtime, or from a stage-hook
    override calling back into the system) would silently serve stale
    memos; the pipeline detects it per document and raises this
    instead.
    """


class ServiceError(ReproError):
    """Base class for the asyncio service runtime's errors."""


class AdmissionError(ServiceError):
    """The ingest queue refused a document (backpressure shed).

    Raised by non-waiting ingest when the bounded queue is at (or
    above) the admission watermark; the publisher should back off and
    retry, exactly as a loaded HTTP frontend would answer 429.
    """


class ServiceDrainingError(ServiceError):
    """An operation arrived after the runtime began draining."""


class ProtocolError(ServiceError):
    """A wire frame or binary record could not be decoded.

    Covers both directions: a server rejecting a malformed, truncated,
    or oversized binary frame (the connection answers with a typed
    error and survives), and a client rejecting a response it cannot
    parse.  Also raised by the journal's binary record codec when a
    record's bytes don't decode.
    """


class SnapshotError(StorageError):
    """A checkpoint snapshot file is unreadable or failed validation.

    Recovery treats this as "that snapshot does not exist" and falls
    back to the next-older snapshot (or full WAL replay); the journal
    only raises it to a caller when *no* usable snapshot remains and
    the WAL alone cannot reconstruct state.
    """
