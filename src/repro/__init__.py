"""repro — a reproduction of MOVE (ICDCS 2012).

MOVE is a large-scale keyword-based content filtering and dissemination
system: users register keyword *filters*, published *documents* are
matched against them on a cluster of commodity machines, and an
adaptive filter-allocation scheme (combined replication + separation
under a storage budget) maximizes matching throughput.

Quickstart::

    from repro import Cluster, MoveSystem, Document, Filter

    cluster = Cluster()
    move = MoveSystem(cluster)
    move.subscribe([Filter.from_text("f1", "distributed systems")])
    move.subscribe([("q1", "cloud AND (storage OR compute)")])
    move.seed_frequencies([Document.from_text("seed", "systems paper")])
    move.finalize_registration()
    plan = move.publish(Document.from_text("d1", "new distributed tricks"))
    print(plan.matched_filter_ids)   # {'f1'}

Package layout: see DESIGN.md for the full system inventory and the
per-experiment index.
"""

from .baselines import (
    CentralizedSift,
    CentralizedSystem,
    DisseminationPlan,
    DisseminationSystem,
    InvertedListSystem,
    NodeTask,
    RendezvousSystem,
)
from .cluster import Cluster, KeyValueClient
from .config import (
    AllocationConfig,
    ClusterConfig,
    CostModelConfig,
    SystemConfig,
)
from .core import Coordinator, ForwardingTable, MoveOptimizer, MoveSystem
from .errors import ReproError
from .model import (
    BooleanAnyTermSemantics,
    Document,
    Filter,
    QueryError,
    Subscription,
    ThresholdSemantics,
    brute_force_match,
    parse_query,
)
from .obs import (
    MetricsRegistry,
    NullTracer,
    SystemStats,
    Tracer,
    get_default_tracer,
    set_default_tracer,
)
from .text import Tokenizer, tokenize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SystemConfig",
    "ClusterConfig",
    "CostModelConfig",
    "AllocationConfig",
    # data model
    "Document",
    "Filter",
    "Subscription",
    "QueryError",
    "parse_query",
    "BooleanAnyTermSemantics",
    "ThresholdSemantics",
    "brute_force_match",
    # substrate
    "Cluster",
    "KeyValueClient",
    "Tokenizer",
    "tokenize",
    # systems
    "MoveSystem",
    "InvertedListSystem",
    "RendezvousSystem",
    "CentralizedSift",
    "CentralizedSystem",
    "DisseminationSystem",
    "DisseminationPlan",
    "NodeTask",
    # core machinery
    "MoveOptimizer",
    "Coordinator",
    "ForwardingTable",
    # observability
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "SystemStats",
    "get_default_tracer",
    "set_default_tracer",
    # errors
    "ReproError",
]
