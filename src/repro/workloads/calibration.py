"""Calibration verification: measure a workload against its targets.

The synthetic traces are only useful if they actually reproduce the
published statistics.  This module measures a generated workload and
reports each statistic against its target with a pass/fail verdict —
the experiment harness and CI use it to catch calibration drift when
generators change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..model import Document, Filter
from ..stats.term_stats import FrequencyTracker, PopularityTracker
from .queries import MSN_PROFILE, MsnTraceProfile


@dataclass(frozen=True)
class CalibrationCheck:
    """One measured statistic against its target."""

    name: str
    target: float
    measured: float
    tolerance: float

    @property
    def passed(self) -> bool:
        return abs(self.measured - self.target) <= self.tolerance

    def __str__(self) -> str:
        verdict = "ok " if self.passed else "FAIL"
        return (
            f"[{verdict}] {self.name}: measured {self.measured:.4f}, "
            f"target {self.target:.4f} ± {self.tolerance:.4f}"
        )


@dataclass
class CalibrationReport:
    """All checks for one workload."""

    checks: List[CalibrationCheck] = field(default_factory=list)

    def add(
        self, name: str, target: float, measured: float, tolerance: float
    ) -> None:
        self.checks.append(
            CalibrationCheck(name, target, measured, tolerance)
        )

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def format_report(self) -> str:
        lines = ["# Workload calibration"]
        lines.extend(str(check) for check in self.checks)
        lines.append(
            "calibration " + ("PASSED" if self.passed else "FAILED")
        )
        return "\n".join(lines)


def verify_filter_trace(
    filters: Sequence[Filter],
    profile: MsnTraceProfile = MSN_PROFILE,
    length_tolerance: float = 0.15,
    share_tolerance: float = 0.03,
) -> CalibrationReport:
    """Check a filter trace against the MSN profile statistics."""
    report = CalibrationReport()
    if not filters:
        report.add("non-empty trace", 1.0, 0.0, 0.0)
        return report
    total = len(filters)
    mean_terms = sum(len(f) for f in filters) / total
    report.add(
        "mean terms/query",
        profile.mean_terms_per_query,
        mean_terms,
        length_tolerance,
    )
    for k, target in zip((1, 2, 3), profile.cumulative_length_shares):
        share = sum(1 for f in filters if len(f) <= k) / total
        report.add(
            f"cumulative share <= {k} terms",
            target,
            share,
            share_tolerance,
        )
    # Popularity concentration: top fraction's share of draws.
    tracker = PopularityTracker()
    for profile_filter in filters:
        tracker.register(profile_filter)
    distinct = len(tracker.terms())
    top_k = max(1, round(distinct * 1000 / 757_996))
    mass_fraction = (
        tracker.top_mass(top_k) / mean_terms if mean_terms else 0.0
    )
    report.add(
        f"top-{top_k} draw share",
        profile.top_1000_popularity_mass
        / profile.mean_terms_per_query,
        mass_fraction,
        0.05,
    )
    return report


def verify_corpus(
    documents: Sequence[Document],
    target_mean_terms: float,
    mean_tolerance_fraction: float = 0.15,
) -> CalibrationReport:
    """Check a document corpus's length statistics."""
    report = CalibrationReport()
    if not documents:
        report.add("non-empty corpus", 1.0, 0.0, 0.0)
        return report
    mean_terms = sum(len(d) for d in documents) / len(documents)
    report.add(
        "mean terms/document",
        target_mean_terms,
        mean_terms,
        target_mean_terms * mean_tolerance_fraction,
    )
    # Skew sanity: the hottest term must appear in far more documents
    # than the median term (heavy tail present).
    tracker = FrequencyTracker()
    for document in documents:
        tracker.observe(document)
    tracker.renew()
    ranked = tracker.ranked()
    if len(ranked) >= 10:
        top = ranked[0][1]
        median = ranked[len(ranked) // 2][1]
        ratio = top / median if median else float("inf")
        report.add(
            "heavy tail present (top/median freq ratio >= 3)",
            1.0,
            1.0 if ratio >= 3.0 else 0.0,
            0.0,
        )
    return report
