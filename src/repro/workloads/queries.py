"""MSN-like profile-filter trace generation.

The paper uses a 4,000,000-entry MSN query history as the filter trace
(Section VI-A), with these published statistics:

- average 2.843 terms per query,
- cumulative share of queries with at most 1 / 2 / 3 terms:
  31.33 % / 67.75 % / 85.31 %,
- 757,996 distinct query terms with heavily skewed popularity
  (top-1000 accumulated popularity 0.437).

:class:`FilterTraceGenerator` reproduces those statistics at a
configurable scale: query lengths are drawn from the published length
distribution and terms from a Zipf sampler over a
:class:`~repro.workloads.terms.SharedVocabulary` query ranking whose
exponent is calibrated so the top-1000 mass lands near 0.437 at paper
scale (the calibration helper searches the right exponent for scaled
vocabularies).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the numpy-hidden CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..errors import WorkloadError
from ..model import Filter
from .terms import SharedVocabulary
from .zipf import ZipfSampler, zipf_weights


@dataclass(frozen=True)
class MsnTraceProfile:
    """Published statistics of the MSN filter trace."""

    total_queries: int = 4_000_000
    distinct_terms: int = 757_996
    mean_terms_per_query: float = 2.843
    #: P(|f| <= 1), P(|f| <= 2), P(|f| <= 3).
    cumulative_length_shares: Tuple[float, float, float] = (
        0.3133,
        0.6775,
        0.8531,
    )
    top_1000_popularity_mass: float = 0.437

    def length_distribution(self, max_length: int = 12) -> List[float]:
        """Per-length probabilities extending the published CDF.

        Lengths 1–3 follow the published cumulative shares; the
        remaining 14.69 % tail follows a geometric shape over
        4..max_length whose ratio is fitted so the overall mean matches
        ``mean_terms_per_query`` (the published tail is heavy: its
        conditional mean must be ~8.7 terms, so ratios above 1 —
        mass increasing towards the longest queries — are allowed).
        """
        c1, c2, c3 = self.cumulative_length_shares
        probabilities = [c1, c2 - c1, c3 - c2]
        tail_mass = 1.0 - c3
        best: Optional[List[float]] = None
        best_error = float("inf")
        if np is None:
            step = (3.0 - 0.05) / 295
            ratios = [0.05 + i * step for i in range(296)]
        else:
            # Kept on numpy when available: linspace's endpoint
            # handling reproduces the historical fitted ratios bit
            # for bit.
            ratios = np.linspace(0.05, 3.0, 296)
        for ratio in ratios:
            weights = [ratio**i for i in range(max_length - 3)]
            scale = tail_mass / sum(weights)
            tail = [w * scale for w in weights]
            candidate = probabilities + tail
            mean = sum(
                (i + 1) * p for i, p in enumerate(candidate)
            )
            error = abs(mean - self.mean_terms_per_query)
            if error < best_error:
                best_error = error
                best = candidate
        assert best is not None
        return best


#: The paper's trace statistics as a ready-made profile.
MSN_PROFILE = MsnTraceProfile()


#: Fraction of the vocabulary the paper's top-1000 terms represent
#: (1000 of 757,996 distinct MSN query terms).
PAPER_TOP_FRACTION = 1000.0 / 757_996.0

#: Share of all term *draws* those top terms account for.  The paper
#: reports accumulated popularity 0.437 while the popularities sum to
#: the mean query length 2.843, so the draw share is 0.437 / 2.843.
PAPER_TOP_MASS_FRACTION = 0.437 / 2.843


def calibrate_popularity_exponent(
    vocabulary_size: int,
    target_mass_fraction: float = PAPER_TOP_MASS_FRACTION,
    top_fraction: float = PAPER_TOP_FRACTION,
    tolerance: float = 0.005,
) -> float:
    """Zipf exponent reproducing the paper's popularity concentration.

    The paper's statistic — the top 1000 of 757,996 terms accumulate
    0.437 of the summed popularities — translates scale-free into "the
    top ``top_fraction`` of terms receive ``target_mass_fraction`` of
    all term draws"; binary search finds the exponent achieving it at
    the (scaled) vocabulary size.
    """
    if not 0.0 < target_mass_fraction < 1.0:
        raise WorkloadError(
            f"target mass must be in (0, 1), got {target_mass_fraction}"
        )
    if not 0.0 < top_fraction < 1.0:
        raise WorkloadError(
            f"top_fraction must be in (0, 1), got {top_fraction}"
        )
    top_k = max(1, int(round(top_fraction * vocabulary_size)))
    lo, hi = 0.0, 4.0
    for _ in range(60):
        mid = (lo + hi) / 2
        weights = zipf_weights(vocabulary_size, mid)
        top = weights[:top_k]
        mass = float(sum(top) if np is None else top.sum())
        if abs(mass - target_mass_fraction) <= tolerance:
            return mid
        if mass < target_mass_fraction:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


class FilterTraceGenerator:
    """Generates :class:`~repro.model.Filter` streams MSN-style.

    ``scale`` shrinks the trace (query count and vocabulary) while
    preserving the length distribution and the *shape* of the
    popularity skew.
    """

    def __init__(
        self,
        vocabulary: SharedVocabulary,
        profile: MsnTraceProfile = MSN_PROFILE,
        seed: int = 0,
        popularity_exponent: Optional[float] = None,
        max_query_length: int = 12,
    ) -> None:
        self.vocabulary = vocabulary
        self.profile = profile
        self._rng = random.Random(seed)
        exponent = (
            popularity_exponent
            if popularity_exponent is not None
            else calibrate_popularity_exponent(vocabulary.size)
        )
        self.popularity_exponent = exponent
        self._term_sampler = ZipfSampler(
            vocabulary.size, exponent, rng=self._rng
        )
        self._length_probabilities = profile.length_distribution(
            max_query_length
        )
        self._length_cdf = (
            list(itertools.accumulate(self._length_probabilities))
            if np is None
            else np.cumsum(self._length_probabilities)
        )

    def _sample_length(self) -> int:
        u = self._rng.random()
        for index, threshold in enumerate(self._length_cdf):
            if u <= threshold:
                return index + 1
        return len(self._length_cdf)

    def generate_filter(self, filter_id: str) -> Filter:
        """One filter with MSN-like length and term popularity."""
        length = min(self._sample_length(), self.vocabulary.size)
        ranks = self._term_sampler.sample_distinct(length)
        terms = [self.vocabulary.query_term(rank) for rank in ranks]
        return Filter.from_terms(filter_id, terms)

    def generate(self, count: int, prefix: str = "f") -> List[Filter]:
        """``count`` filters with ids ``{prefix}0..{prefix}{count-1}``."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        return [
            self.generate_filter(f"{prefix}{index}")
            for index in range(count)
        ]

    def iter_generate(
        self, count: int, prefix: str = "f"
    ) -> Iterator[Filter]:
        for index in range(count):
            yield self.generate_filter(f"{prefix}{index}")
