"""Document arrival processes for the cluster experiments.

Section VI-A: "Each client injects 1000 documents per second.  By using
more clients, we can increase the rate of injecting documents."  We
model client injection either as a deterministic uniform stream (one
document every ``1/rate`` seconds — the paper's fixed-rate clients) or
as a Poisson process (for the queueing-sensitivity ablation).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterator, Optional

from ..errors import WorkloadError


class ArrivalProcess(ABC):
    """Yields inter-arrival times in seconds."""

    @abstractmethod
    def inter_arrival(self) -> float:
        """Seconds until the next arrival."""

    def times(self, count: int, start: float = 0.0) -> Iterator[float]:
        """Absolute arrival times of the next ``count`` documents."""
        now = start
        for _ in range(count):
            now += self.inter_arrival()
            yield now


class UniformArrivals(ArrivalProcess):
    """Deterministic fixed-rate injection (the paper's clients)."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise WorkloadError(f"rate must be positive, got {rate}")
        self.rate = rate

    def inter_arrival(self) -> float:
        return 1.0 / self.rate


class PoissonArrivals(ArrivalProcess):
    """Memoryless injection at the same average rate."""

    def __init__(
        self, rate: float, rng: Optional[random.Random] = None
    ) -> None:
        if rate <= 0:
            raise WorkloadError(f"rate must be positive, got {rate}")
        self.rate = rate
        self._rng = rng or random.Random(0)

    def inter_arrival(self) -> float:
        return self._rng.expovariate(self.rate)
