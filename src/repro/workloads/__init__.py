"""Workload generators calibrated to the paper's datasets.

The paper evaluates on three traces we do not have: the MSN query log
(filters), TREC WT10G and TREC AP (documents).  Per the reproduction's
substitution rule, this package synthesizes statistically equivalent
workloads:

- :mod:`repro.workloads.zipf` — Zipf/Mandelbrot samplers,
- :mod:`repro.workloads.terms` — vocabularies with controlled overlap
  between query terms and document terms,
- :mod:`repro.workloads.queries` — MSN-like filter traces (avg 2.843
  terms; ≤1/2/3-term cumulative shares 31.33/67.75/85.31 %),
- :mod:`repro.workloads.corpus` — TREC AP-like and WT-like corpora
  (doc counts, mean lengths, relative skew),
- :mod:`repro.workloads.arrivals` — document arrival processes.
"""

from .arrivals import PoissonArrivals, UniformArrivals
from .corpus import CorpusProfile, CorpusGenerator, TREC_AP_PROFILE, TREC_WT_PROFILE
from .queries import FilterTraceGenerator, MsnTraceProfile, MSN_PROFILE
from .terms import SharedVocabulary
from .trace import (
    dump_documents,
    dump_filters,
    iter_documents,
    iter_filters,
    load_documents,
    load_filters,
)
from .zipf import ZipfSampler, zipf_weights

__all__ = [
    "ZipfSampler",
    "zipf_weights",
    "SharedVocabulary",
    "MsnTraceProfile",
    "MSN_PROFILE",
    "FilterTraceGenerator",
    "CorpusProfile",
    "CorpusGenerator",
    "TREC_AP_PROFILE",
    "TREC_WT_PROFILE",
    "PoissonArrivals",
    "UniformArrivals",
    "dump_filters",
    "iter_filters",
    "load_filters",
    "dump_documents",
    "iter_documents",
    "load_documents",
]
