"""Shared vocabulary with controlled query/document term overlap.

Section VI-A reports that among the top-1000 popular query terms,
26.9 % are also among the top-1000 frequent AP document terms (31.3 %
for WT).  That overlap is what forces MOVE to combine replication and
separation: a term can simultaneously be filter-popular (large ``p_i``)
and document-frequent (large ``q_i``).

:class:`SharedVocabulary` builds one term universe and two rank
permutations — a query ranking and a document ranking — such that a
target fraction of the top-``k`` query terms appears in the top-``k``
document terms.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import WorkloadError


def _synthetic_term(index: int) -> str:
    """A deterministic pronounceable-ish term for rank ``index``."""
    consonants = "bcdfghjklmnpqrstvwz"
    vowels = "aeiou"
    parts: List[str] = []
    value = index
    for _ in range(3):
        parts.append(consonants[value % len(consonants)])
        value //= len(consonants)
        parts.append(vowels[value % len(vowels)])
        value //= len(vowels)
    return "".join(parts) + str(index)


class SharedVocabulary:
    """One universe of terms with query-side and document-side ranks.

    ``query_rank_terms[r]`` is the term at query-popularity rank ``r``;
    ``doc_rank_terms[r]`` the term at document-frequency rank ``r``.
    The construction places ``overlap_fraction * overlap_k`` of the
    top-``overlap_k`` query terms into the document top-``overlap_k``
    (positions randomized), and spreads the remaining query terms over
    the tail, so samplers driving each ranking reproduce the published
    overlap statistic.
    """

    def __init__(
        self,
        size: int,
        overlap_fraction: float,
        overlap_k: int = 1000,
        seed: int = 0,
        terms: Optional[Sequence[str]] = None,
    ) -> None:
        if size < 2:
            raise WorkloadError(f"vocabulary size must be >= 2, got {size}")
        if not 0.0 <= overlap_fraction <= 1.0:
            raise WorkloadError(
                f"overlap_fraction must be in [0, 1], got {overlap_fraction}"
            )
        overlap_k = min(overlap_k, size)
        if terms is not None and len(terms) < size:
            raise WorkloadError(
                f"supplied {len(terms)} terms but size={size}"
            )
        self.size = size
        self.overlap_fraction = overlap_fraction
        self.overlap_k = overlap_k
        rng = random.Random(seed)

        universe = (
            list(terms[:size])
            if terms is not None
            else [_synthetic_term(i) for i in range(size)]
        )
        # Query ranking: identity over the universe.
        self.query_rank_terms: List[str] = list(universe)

        # Document ranking: choose which query-top-k terms are shared.
        shared_count = int(round(overlap_fraction * overlap_k))
        top_query = list(range(overlap_k))
        rng.shuffle(top_query)
        shared = set(top_query[:shared_count])

        doc_top: List[int] = list(shared)
        # Fill the rest of the document top-k, preferring tail query
        # terms (which keeps the measured overlap at the target); when
        # the vocabulary is too small for a pure-tail fill, unshared
        # top query terms are used and the overlap floor rises — the
        # measured_overlap() accessor reports the realized value.
        tail_candidates = list(range(overlap_k, size))
        rng.shuffle(tail_candidates)
        needed = overlap_k - len(doc_top)
        fill = tail_candidates[:needed]
        if len(fill) < needed:
            unshared_top = [
                index for index in range(overlap_k) if index not in shared
            ]
            rng.shuffle(unshared_top)
            fill.extend(unshared_top[: needed - len(fill)])
        doc_top.extend(fill)
        rng.shuffle(doc_top)

        remainder = [
            index
            for index in range(size)
            if index not in set(doc_top)
        ]
        rng.shuffle(remainder)
        doc_order = doc_top + remainder
        self.doc_rank_terms: List[str] = [
            universe[index] for index in doc_order
        ]

    def query_term(self, rank: int) -> str:
        return self.query_rank_terms[rank]

    def doc_term(self, rank: int) -> str:
        return self.doc_rank_terms[rank]

    def measured_overlap(self, k: Optional[int] = None) -> float:
        """Fraction of top-k query terms inside top-k document terms."""
        k = self.overlap_k if k is None else min(k, self.size)
        top_q = set(self.query_rank_terms[:k])
        top_d = set(self.doc_rank_terms[:k])
        if not top_q:
            return 0.0
        return len(top_q & top_d) / len(top_q)
