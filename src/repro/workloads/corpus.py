"""TREC-like synthetic document corpora.

The paper's two document traces (Section VI-A):

- **TREC WT10G**: ~1.69 M web pages, average 64.8 terms per document,
  ranked-frequency entropy 6.7593 (skewer),
- **TREC AP**: 1,050 Associated Press articles, average 6054.9 terms
  per document, entropy 9.4473 (flatter).

:class:`CorpusGenerator` synthesizes documents whose per-term frequency
rates reproduce the requested skew (calibrated by entropy at the scaled
vocabulary), whose lengths follow a log-normal around the published
mean, and whose term ranking is the *document side* of a
:class:`~repro.workloads.terms.SharedVocabulary` so query/document
overlap is controlled.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import WorkloadError
from ..model import Document
from .terms import SharedVocabulary
from .zipf import ZipfSampler, fit_exponent_for_entropy


@dataclass(frozen=True)
class CorpusProfile:
    """Published statistics of one document trace."""

    name: str
    total_documents: int
    mean_terms_per_document: float
    #: Shannon entropy (bits) of the ranked term-frequency rates at
    #: paper scale; used to order skews (lower = skewer).
    frequency_entropy: float
    #: Top-1000 query-term / top-1000 document-term overlap (§VI-A).
    query_overlap: float
    #: Spread of the document-length distribution (log-normal sigma).
    length_sigma: float = 0.35


#: TREC AP: few, very large articles; flatter term distribution.
TREC_AP_PROFILE = CorpusProfile(
    name="trec-ap",
    total_documents=1_050,
    mean_terms_per_document=6054.9,
    frequency_entropy=9.4473,
    query_overlap=0.269,
)

#: TREC WT10G: many, small web documents; skewer term distribution.
TREC_WT_PROFILE = CorpusProfile(
    name="trec-wt",
    total_documents=1_690_000,
    mean_terms_per_document=64.8,
    frequency_entropy=6.7593,
    query_overlap=0.313,
)


def _scaled_entropy(
    profile: CorpusProfile, vocabulary_size: int
) -> float:
    """Map the paper-scale entropy onto a smaller vocabulary.

    The paper's entropies were computed over its full vocabularies; at
    a scaled vocabulary we preserve the *normalized* entropy (entropy /
    log2(size)), keeping the relative skew ordering (WT skewer than AP)
    intact.  The paper plots the top-1e5 rates, so we normalize against
    log2(1e5) ≈ 16.6.
    """
    paper_log_size = math.log2(100_000)
    normalized = min(profile.frequency_entropy / paper_log_size, 0.999)
    return normalized * math.log2(vocabulary_size)


class CorpusGenerator:
    """Synthesizes :class:`~repro.model.Document` streams."""

    def __init__(
        self,
        vocabulary: SharedVocabulary,
        profile: CorpusProfile,
        seed: int = 0,
        mean_terms_override: Optional[float] = None,
        exponent_override: Optional[float] = None,
    ) -> None:
        self.vocabulary = vocabulary
        self.profile = profile
        self._rng = random.Random(seed)
        self.mean_terms = (
            mean_terms_override
            if mean_terms_override is not None
            else profile.mean_terms_per_document
        )
        if self.mean_terms < 1:
            raise WorkloadError(
                f"mean_terms must be >= 1, got {self.mean_terms}"
            )
        if self.mean_terms > vocabulary.size:
            raise WorkloadError(
                f"mean_terms ({self.mean_terms}) exceeds vocabulary size "
                f"({vocabulary.size}); enlarge the vocabulary or scale "
                f"down the document length"
            )
        exponent = (
            exponent_override
            if exponent_override is not None
            else fit_exponent_for_entropy(
                vocabulary.size,
                _scaled_entropy(profile, vocabulary.size),
                tolerance=0.05,
            )
        )
        self.frequency_exponent = exponent
        self._term_sampler = ZipfSampler(
            vocabulary.size, exponent, rng=self._rng
        )
        # Log-normal length parameters hitting the requested mean.
        sigma = profile.length_sigma
        self._length_mu = math.log(self.mean_terms) - sigma**2 / 2
        self._length_sigma = sigma

    def _sample_length(self) -> int:
        length = int(
            round(
                self._rng.lognormvariate(
                    self._length_mu, self._length_sigma
                )
            )
        )
        return max(1, min(length, self.vocabulary.size))

    def generate_document(self, doc_id: str) -> Document:
        """One document with corpus-like length and term skew."""
        length = self._sample_length()
        ranks = self._term_sampler.sample_distinct(length)
        terms = [self.vocabulary.doc_term(rank) for rank in ranks]
        return Document.from_terms(doc_id, terms)

    def generate(self, count: int, prefix: str = "d") -> List[Document]:
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        return [
            self.generate_document(f"{prefix}{index}")
            for index in range(count)
        ]

    def iter_generate(
        self, count: int, prefix: str = "d"
    ) -> Iterator[Document]:
        for index in range(count):
            yield self.generate_document(f"{prefix}{index}")
