"""Zipf/Mandelbrot samplers for skewed term distributions.

Both the MSN query-term popularity (Figure 4) and the TREC document-
term frequency (Figure 5) are heavy-tailed; the paper's allocation
scheme exists precisely because of that skew.  Sampling uses the alias
method, so drawing is O(1) per sample even for large vocabularies.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the numpy-hidden CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..errors import WorkloadError


def zipf_weights(size: int, exponent: float, shift: float = 0.0):
    """Zipf–Mandelbrot weights ``w_r = 1 / (r + shift)^exponent``.

    ``exponent`` controls the skew: higher → skewer (lower entropy).
    Weights are normalized to sum to 1.  Returns an ``np.ndarray``
    when numpy is importable, a plain list otherwise (the numpy branch
    is kept bit-identical to the historical behavior so seeded
    corpora reproduce exactly).
    """
    if size < 1:
        raise WorkloadError(f"size must be >= 1, got {size}")
    if exponent < 0:
        raise WorkloadError(f"exponent must be >= 0, got {exponent}")
    if shift < 0:
        raise WorkloadError(f"shift must be >= 0, got {shift}")
    if np is None:
        raw = [
            1.0 / (rank + shift) ** exponent
            for rank in range(1, size + 1)
        ]
        total = sum(raw)
        return [weight / total for weight in raw]
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks + shift, exponent)
    return weights / weights.sum()


def _entropy_bits(weights) -> float:
    """Entropy (bits) of a weight vector, either backend."""
    if np is None:
        return -sum(
            weight * math.log2(weight) for weight in weights if weight > 0
        )
    weights = np.asarray(weights)
    weights = weights[weights > 0]
    return float(-(weights * np.log2(weights)).sum())


class AliasTable:
    """Walker alias method: O(n) build, O(1) sampling."""

    def __init__(self, weights: Sequence[float]) -> None:
        if np is None:
            # Pure-python fallback: same O(n) build over lists.  The
            # numpy branch below is kept verbatim for bit-identical
            # seeded corpora when numpy is present.
            probabilities = [float(weight) for weight in weights]
            if not probabilities:
                raise WorkloadError(
                    "weights must be a non-empty 1-D vector"
                )
            if any(p < 0 for p in probabilities):
                raise WorkloadError("weights must be non-negative")
            total = sum(probabilities)
            if total <= 0:
                raise WorkloadError("weights must not all be zero")
            probabilities = [p / total for p in probabilities]
            n = len(probabilities)
            scaled = [p * n for p in probabilities]
            self._prob = [0.0] * n
            self._alias = [0] * n
        else:
            probabilities = np.asarray(weights, dtype=np.float64)
            if probabilities.ndim != 1 or len(probabilities) == 0:
                raise WorkloadError(
                    "weights must be a non-empty 1-D vector"
                )
            if np.any(probabilities < 0):
                raise WorkloadError("weights must be non-negative")
            total = probabilities.sum()
            if total <= 0:
                raise WorkloadError("weights must not all be zero")
            probabilities = probabilities / total
            n = len(probabilities)
            scaled = probabilities * n
            self._prob = np.zeros(n, dtype=np.float64)
            self._alias = np.zeros(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] + scaled[s] - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for index in large + small:
            self._prob[index] = 1.0
            self._alias[index] = index

    def sample(self, rng: random.Random) -> int:
        """Draw one index."""
        slot = rng.randrange(len(self._prob))
        if rng.random() < self._prob[slot]:
            return slot
        return int(self._alias[slot])


class ZipfSampler:
    """Samples ranks from a Zipf–Mandelbrot distribution.

    >>> sampler = ZipfSampler(size=100, exponent=1.0, rng=random.Random(1))
    >>> 0 <= sampler.sample() < 100
    True
    """

    def __init__(
        self,
        size: int,
        exponent: float,
        shift: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.size = size
        self.exponent = exponent
        self.shift = shift
        self.weights = zipf_weights(size, exponent, shift)
        self._alias = AliasTable(self.weights)
        self._rng = rng or random.Random(0)

    def sample(self) -> int:
        """One rank in ``[0, size)`` (0 = most likely)."""
        return self._alias.sample(self._rng)

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    def sample_distinct(self, count: int, max_attempts: int = 64) -> List[int]:
        """``count`` distinct ranks (rejection sampling with fallback).

        A document/filter is a *set* of terms; skewed sampling yields
        duplicates that must be rejected.  When rejection stalls (tiny
        vocabulary), fall back to the lightest unused ranks so the
        request always completes.
        """
        if count > self.size:
            raise WorkloadError(
                f"cannot draw {count} distinct ranks from {self.size}"
            )
        chosen: List[int] = []
        seen = set()
        attempts = 0
        while len(chosen) < count and attempts < max_attempts * count:
            rank = self.sample()
            attempts += 1
            if rank not in seen:
                seen.add(rank)
                chosen.append(rank)
        rank = 0
        while len(chosen) < count:
            if rank not in seen:
                seen.add(rank)
                chosen.append(rank)
            rank += 1
        return chosen

    def entropy_bits(self) -> float:
        """Entropy of the weight vector (comparable to Figure 5's)."""
        return _entropy_bits(self.weights)


def fit_exponent_for_entropy(
    size: int, target_entropy: float, tolerance: float = 0.01
) -> float:
    """Binary-search the Zipf exponent whose weight vector has the
    requested entropy (bits).

    Used to calibrate the synthetic corpora to the paper's published
    entropies (9.4473 for AP, 6.7593 for WT) at a scaled vocabulary.
    """
    max_entropy = math.log2(size)
    if not 0.0 < target_entropy <= max_entropy:
        raise WorkloadError(
            f"target entropy {target_entropy} outside (0, {max_entropy:.3f}] "
            f"for vocabulary size {size}"
        )
    lo, hi = 0.0, 8.0
    for _ in range(80):
        mid = (lo + hi) / 2
        weights = zipf_weights(size, mid)
        entropy = _entropy_bits(weights)
        if abs(entropy - target_entropy) <= tolerance:
            return mid
        if entropy > target_entropy:
            lo = mid  # not skewed enough → raise exponent
        else:
            hi = mid
    return (lo + hi) / 2
