"""Trace persistence: save and replay filter/document workloads.

Reproduction runs should be shareable: a generated workload (filters,
documents, arrival times) can be written to JSONL files and replayed
byte-identically on another machine, independent of generator
versions.  The format is line-oriented so multi-million-entry traces
stream without loading into memory.

Format (one JSON object per line):

- filter line:   {"id": ..., "terms": [...], "owner": ...}
- document line: {"id": ..., "counts": {term: count, ...}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..errors import WorkloadError
from ..model import Document, Filter

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------

def dump_filters(
    profiles: Iterable[Filter], path: PathLike
) -> int:
    """Write filters as JSONL; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for profile in profiles:
            record = {
                "id": profile.filter_id,
                "terms": sorted(profile.terms),
            }
            if profile.owner != profile.filter_id:
                record["owner"] = profile.owner
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def iter_filters(path: PathLike) -> Iterator[Filter]:
    """Stream filters back from a JSONL trace."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                yield Filter.from_terms(
                    record["id"],
                    record["terms"],
                    owner=record.get("owner", ""),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise WorkloadError(
                    f"{path}:{line_number}: malformed filter record "
                    f"({exc})"
                ) from exc


def load_filters(path: PathLike) -> List[Filter]:
    return list(iter_filters(path))


# ---------------------------------------------------------------------------
# Documents
# ---------------------------------------------------------------------------

def dump_documents(
    documents: Iterable[Document], path: PathLike
) -> int:
    """Write documents (with term counts) as JSONL."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for document in documents:
            record = {
                "id": document.doc_id,
                "counts": {
                    term: document.term_frequency(term)
                    for term in sorted(document.terms)
                },
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def iter_documents(path: PathLike) -> Iterator[Document]:
    """Stream documents back from a JSONL trace."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                counts = {
                    str(term): int(count)
                    for term, count in record["counts"].items()
                }
                yield Document(
                    doc_id=record["id"],
                    terms=frozenset(counts),
                    term_counts=counts,
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise WorkloadError(
                    f"{path}:{line_number}: malformed document record "
                    f"({exc})"
                ) from exc


def load_documents(path: PathLike) -> List[Document]:
    return list(iter_documents(path))
