"""Home-node matcher — the centralized matching algorithm of §III-B.

On the home node of term ``t_i``, only the posting list of ``t_i`` is
retrieved, even though other terms' lists may exist: the home node of
any other term ``t_j`` covers those filters itself.  This single-list
retrieval is the latency win the baseline (and MOVE on top of it)
builds on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..model import Document, Filter
from .inverted_index import InvertedIndex, RetrievalCost
from .vsm import VsmScorer


class HomeNodeMatcher:
    """Single-term retrieval matcher bound to one local index."""

    def __init__(
        self,
        index: InvertedIndex,
        scorer: Optional[VsmScorer] = None,
        threshold: Optional[float] = None,
    ) -> None:
        if (scorer is None) != (threshold is None):
            raise ValueError(
                "scorer and threshold must be supplied together"
            )
        self.index = index
        self.scorer = scorer
        self.threshold = threshold

    def match(
        self, document: Document, home_term: str
    ) -> Tuple[List[Filter], RetrievalCost]:
        """Filters matching ``document`` via the home term's list only."""
        filters, cost = self.index.match_document_single_term(
            document, home_term
        )
        if self.scorer is None:
            return filters, cost
        matched = [
            profile
            for profile in filters
            if self.scorer.similarity(document, profile) >= self.threshold
        ]
        return matched, cost
