"""Vector space model scoring (tf–idf, cosine).

Section III-A: "a boolean model or vector space model (VSM) can check
whether a content item matches a filter or not."  The VSM scorer backs
the similarity-threshold extension of the matching semantics and is
shared by the SIFT and home-node matchers.

Weights: document terms get ``(1 + log tf) * idf``; filter terms are
unweighted (a short keyword query is a uniform unit vector).  IDF comes
from a corpus-statistics object that can be updated online as documents
flow through the system.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional

from ..model import Document, Filter


class CorpusStatistics:
    """Online document-frequency statistics for IDF computation."""

    def __init__(self) -> None:
        self.documents_seen = 0
        self._doc_frequency: Dict[str, int] = {}

    def observe(self, document: Document) -> None:
        """Account one document's terms."""
        self.documents_seen += 1
        for term in document.terms:
            self._doc_frequency[term] = (
                self._doc_frequency.get(term, 0) + 1
            )

    def document_frequency(self, term: str) -> int:
        return self._doc_frequency.get(term, 0)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency."""
        df = self._doc_frequency.get(term, 0)
        return math.log((1 + self.documents_seen) / (1 + df)) + 1.0


class VsmScorer:
    """Cosine similarity between a document and a keyword filter."""

    def __init__(
        self, statistics: Optional[CorpusStatistics] = None
    ) -> None:
        self.statistics = statistics or CorpusStatistics()

    def document_weights(self, document: Document) -> Dict[str, float]:
        """tf–idf weight of each document term."""
        weights: Dict[str, float] = {}
        for term in document.terms:
            tf = 1.0 + math.log(max(document.term_frequency(term), 1))
            weights[term] = tf * self.statistics.idf(term)
        return weights

    def similarity(self, document: Document, profile: Filter) -> float:
        """Cosine of the document vector and the filter's unit vector.

        The dot product sums shared-term weights in **document-term
        order** — the canonical summation order shared with the
        score-accumulation kernel (`repro.matching.kernel`), whose
        posting walks add contributions in exactly that sequence.
        Float addition is not associative, so a fixed order is what
        makes kernel and naive scores bit-for-bit identical.
        """
        weights = self.document_weights(document)
        doc_norm = math.sqrt(sum(w * w for w in weights.values()))
        if doc_norm == 0.0:
            return 0.0
        filter_norm = math.sqrt(len(profile.terms))
        terms = profile.terms
        dot = 0.0
        for term, weight in weights.items():
            if term in terms:
                dot += weight
        return dot / (doc_norm * filter_norm)

    def rank(
        self, document: Document, profiles: Iterable[Filter]
    ) -> list:
        """Profiles sorted by descending similarity to ``document``."""
        scored = [
            (self.similarity(document, profile), profile)
            for profile in profiles
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1].filter_id))
        return scored
