"""Local inverted index over registered filters.

Every node indexes its locally stored filters with an inverted list
(Section III-B / Figure 3).  The index supports two retrieval modes:

- *home-node mode* — retrieve only the posting list of one term (the
  baseline/MOVE home-node matcher), and
- *full mode* — retrieve the lists of all document terms (SIFT).

Retrieval reports how many lists and entries were touched so the cost
model can charge the matching latency the paper's equations describe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import MatchingError
from ..model import Document, Filter
from .postings import PostingList


@dataclass(frozen=True)
class RetrievalCost:
    """Disk work performed by one index retrieval."""

    posting_lists: int
    posting_entries: int

    def __add__(self, other: "RetrievalCost") -> "RetrievalCost":
        return RetrievalCost(
            self.posting_lists + other.posting_lists,
            self.posting_entries + other.posting_entries,
        )


class InvertedIndex:
    """Term → posting-list index of :class:`~repro.model.Filter`s.

    ``indexed_terms`` restricts which of a filter's terms get posting
    lists: the distributed-inverted-list design (Section III-B) indexes
    only the home term on each node, while the rendezvous baseline
    indexes every term of every local filter.
    """

    #: Slab capability marker: the columnar subclass
    #: (:class:`repro.matching.slab_index.SlabBackedIndex`) sets this to
    #: its :class:`~repro.model.slab.FilterSlabStore`, letting callers
    #: pick slot-native paths with one attribute check.
    slab = None

    def __init__(self) -> None:
        self._postings: Dict[str, PostingList] = {}
        self._filters: Dict[int, Filter] = {}
        self._next_local_id = 0
        self._local_id_by_filter_id: Dict[str, int] = {}
        #: Terms each local filter is indexed under *on this node*
        #: (needed to drop a filter when its last local term moves).
        self._indexed_terms: Dict[int, Set[str]] = {}
        #: Running total of posting entries, maintained on every
        #: add/remove so :meth:`stored_replica_count` is O(1) — the
        #: reallocation engine reads it once per holder per refresh.
        self._replica_entries = 0
        #: Mutation listeners (e.g. the CSR posting-block mirrors of
        #: :mod:`repro.matching.csr_kernel`).  Each is notified of
        #: every *effective* posting change — ``posting_added(term,
        #: local_id, filter)`` / ``posting_removed(term, local_id)`` /
        #: ``term_dropped(term)`` — so derived structures stay exact
        #: without polling.  Usually empty; every notification site is
        #: behind an ``if self._listeners`` guard.
        self._listeners: List[object] = []

    def __len__(self) -> int:
        """Number of distinct filters indexed."""
        return len(self._filters)

    def __contains__(self, filter_id: str) -> bool:
        return filter_id in self._local_id_by_filter_id

    @property
    def distinct_terms(self) -> int:
        return len(self._postings)

    def add_listener(self, listener: object) -> None:
        """Subscribe ``listener`` to posting mutations (see above)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: object) -> None:
        """Unsubscribe; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def iter_term_postings(self):
        """Yield ``(term, [(local_id, filter), ...])`` per posting list.

        Posting order (ascending local id) is preserved — this is the
        hydration primitive listeners use to build their initial
        mirror of the index state.
        """
        for term, plist in self._postings.items():
            yield term, [
                (local_id, self._filters[local_id])
                for local_id in plist
            ]

    def stored_replica_count(self) -> int:
        """Total posting entries = stored filter replicas on this node.

        One filter indexed under k terms counts k times — this is the
        storage-cost metric of Figure 9(a).  O(1): the count is
        maintained incrementally by every mutation.
        """
        return self._replica_entries

    # -- registration -----------------------------------------------------

    def add_filter(
        self,
        profile: Filter,
        indexed_terms: Optional[Iterable[str]] = None,
    ) -> int:
        """Index ``profile`` under ``indexed_terms`` (default: all its
        terms).  Re-adding an existing filter extends its indexed terms.
        Returns the local integer id."""
        local_id = self._local_id_by_filter_id.get(profile.filter_id)
        if local_id is None:
            local_id = self._next_local_id
            self._next_local_id += 1
            self._local_id_by_filter_id[profile.filter_id] = local_id
            self._filters[local_id] = profile
        terms = (
            profile.terms
            if indexed_terms is None
            else set(indexed_terms) & profile.terms
        )
        if indexed_terms is not None and not terms:
            raise MatchingError(
                f"filter {profile.filter_id!r} indexed under none of its "
                f"terms"
            )
        local_terms = self._indexed_terms.setdefault(local_id, set())
        for term in terms:
            plist = self._postings.get(term)
            if plist is None:
                plist = PostingList(term)
                self._postings[term] = plist
            if plist.add(local_id):
                self._replica_entries += 1
                if self._listeners:
                    for listener in self._listeners:
                        listener.posting_added(term, local_id, profile)
            local_terms.add(term)
        return local_id

    def add_filters(
        self,
        entries: Iterable[
            Tuple[Filter, Optional[Iterable[str]]]
        ],
    ) -> int:
        """Bulk-index ``(profile, indexed_terms)`` pairs.

        Groups posting inserts by term so each touched
        :class:`PostingList` is rebuilt with one sort
        (:meth:`PostingList.add_many`) instead of one binary-search
        insert per filter.  Final index state is identical to calling
        :meth:`add_filter` once per pair.  Returns the number of
        posting entries added.
        """
        per_term: Dict[str, List[int]] = {}
        for profile, indexed_terms in entries:
            local_id = self._local_id_by_filter_id.get(profile.filter_id)
            if local_id is None:
                local_id = self._next_local_id
                self._next_local_id += 1
                self._local_id_by_filter_id[profile.filter_id] = local_id
                self._filters[local_id] = profile
            terms = (
                profile.terms
                if indexed_terms is None
                else set(indexed_terms) & profile.terms
            )
            if indexed_terms is not None and not terms:
                raise MatchingError(
                    f"filter {profile.filter_id!r} indexed under none of "
                    f"its terms"
                )
            local_terms = self._indexed_terms.setdefault(local_id, set())
            for term in terms:
                per_term.setdefault(term, []).append(local_id)
                local_terms.add(term)
        added = 0
        for term, local_ids in per_term.items():
            plist = self._postings.get(term)
            if plist is None:
                plist = PostingList(term)
                self._postings[term] = plist
            if self._listeners:
                # Per-id inserts so each effective add is observable;
                # final posting state is identical to ``add_many``.
                for local_id in local_ids:
                    if plist.add(local_id):
                        added += 1
                        for listener in self._listeners:
                            listener.posting_added(
                                term, local_id, self._filters[local_id]
                            )
            else:
                added += plist.add_many(local_ids)
        self._replica_entries += added
        return added

    def remove_filter(self, filter_id: str) -> bool:
        """Unregister a filter everywhere it is indexed."""
        local_id = self._local_id_by_filter_id.pop(filter_id, None)
        if local_id is None:
            return False
        profile = self._filters.pop(local_id)
        self._indexed_terms.pop(local_id, None)
        for term in profile.terms:
            plist = self._postings.get(term)
            if plist is None:
                continue
            if plist.remove(local_id):
                self._replica_entries -= 1
                if self._listeners:
                    for listener in self._listeners:
                        listener.posting_removed(term, local_id)
            if not plist:
                del self._postings[term]
        return True

    def remove_term(self, term: str) -> List[Filter]:
        """Drop the posting list of ``term`` and return its filters.

        Filters indexed only under ``term`` on this node are fully
        unregistered locally; filters also indexed under other local
        terms stay.  This is the primitive a home-node hand-off uses
        when ring membership changes move a term's ownership.
        """
        plist = self._postings.pop(term, None)
        if plist is None:
            return []
        self._replica_entries -= len(plist)
        if self._listeners:
            for listener in self._listeners:
                listener.term_dropped(term)
        moved: List[Filter] = []
        for local_id in plist:
            profile = self._filters[local_id]
            moved.append(profile)
            local_terms = self._indexed_terms.get(local_id)
            if local_terms is not None:
                local_terms.discard(term)
                if local_terms:
                    continue  # still indexed under another local term
            del self._filters[local_id]
            del self._local_id_by_filter_id[profile.filter_id]
            self._indexed_terms.pop(local_id, None)
        return moved

    # -- retrieval ----------------------------------------------------------

    def posting_list(self, term: str) -> Optional[PostingList]:
        return self._postings.get(term)

    def filters_for_term(
        self, term: str
    ) -> Tuple[List[Filter], RetrievalCost]:
        """Home-node retrieval: one posting list, its filters."""
        plist = self._postings.get(term)
        if plist is None:
            return [], RetrievalCost(0, 0)
        filters = [self._filters[local_id] for local_id in plist]
        return filters, RetrievalCost(1, len(plist))

    def retrieve_for_term(self, term: str):
        """One posting retrieval in the pipeline's memo shape.

        Returns ``(filters, filter_ids, posting_lists,
        posting_entries)`` — the :data:`repro.core.pipeline.Retrieval`
        tuple.  The boolean any-term paths consume only the id tuple;
        ``filters`` may therefore be any iterable of the posting's
        filters, which is what lets the slab subclass return a lazy
        sequence that rehydrates objects only when threshold semantics
        actually iterate it.
        """
        plist = self._postings.get(term)
        if plist is None:
            return [], (), 0, 0
        filters = [self._filters[local_id] for local_id in plist]
        return (
            filters,
            tuple(profile.filter_id for profile in filters),
            1,
            len(plist),
        )

    def match_document_single_term(
        self, document: Document, term: str
    ) -> Tuple[List[Filter], RetrievalCost]:
        """Baseline/MOVE home-node matcher (Section III-B).

        Retrieves only the posting list of ``term``; every filter on
        that list shares ``term`` with the document, so under boolean
        any-term semantics all of them match.
        """
        if term not in document.terms:
            raise MatchingError(
                f"document {document.doc_id!r} does not contain the home "
                f"term {term!r}"
            )
        return self.filters_for_term(term)

    def match_document_all_terms(
        self, document: Document
    ) -> Tuple[List[Filter], RetrievalCost]:
        """SIFT-style full retrieval over all ``|d|`` document terms.

        Returns the de-duplicated matching filters and the total disk
        work (each present term costs one list retrieval).
        """
        matched: Dict[int, Filter] = {}
        lists = 0
        entries = 0
        for term in document.terms:
            plist = self._postings.get(term)
            if plist is None:
                continue
            lists += 1
            entries += len(plist)
            for local_id in plist:
                if local_id not in matched:
                    matched[local_id] = self._filters[local_id]
        return list(matched.values()), RetrievalCost(lists, entries)

    def all_filters(self) -> List[Filter]:
        return list(self._filters.values())

    def terms(self) -> List[str]:
        return sorted(self._postings)
