"""Score-accumulation VSM matching kernel (the SIFT formulation).

Under the similarity-threshold semantics (Section III-A), the naive
scorer recomputes the document's full tf–idf weight vector and norm
once per candidate filter, making node-local matching
O(|d| * |candidates|).  This module is the postings-driven fast path
that restores the classic Yan & Garcia-Molina score-accumulation
shape, O(|d| + |candidates|):

- the document's weight vector, norm, and suffix masses are computed
  **once** and memoized — in the pipeline's
  :class:`~repro.core.pipeline.BatchCaches` when one is active (so a
  batch shares the vector across every node/partition visit), else in
  a single-document slot on the kernel;
- per-filter dot products accumulate in flat ``array('d')``
  accumulators keyed by **dense filter slots** while the caller walks
  the posting lists it already retrieved (:class:`ScoringPass`);
- per-filter norms (``sqrt(|f|)``) are precomputed in a parallel
  array, maintained by :meth:`ScoreKernel.register_filter` /
  :meth:`ScoreKernel.unregister_filter`;
- the threshold is applied in one pass over the touched slots, with
  new candidates pruned by the SIFT remaining-mass upper bound (a
  filter first seen at walk position ``i`` can accumulate at most the
  suffix mass ``sum(weights[i:])``).

Equivalence contract: every score the kernel produces is **bit-for-bit
identical** to :meth:`~repro.matching.vsm.VsmScorer.similarity`, which
sums the dot product in document-term order — the same order posting
walks visit terms and :meth:`ScoreKernel.score` replays.  Because
:class:`~repro.matching.vsm.CorpusStatistics` updates IDF online,
every memoized vector carries the statistics' ``documents_seen`` epoch
(plus the kernel's registration epoch) and silently invalidates when
either changes, so observation and matching may interleave freely.

Two consumption modes:

- **accumulation** (:meth:`ScoreKernel.begin` → :class:`ScoringPass`)
  — for SIFT-style indexes where each filter is indexed under *all*
  of its terms (``SiftMatcher``, the RS replicas, the Centralized
  node): walking every document term's posting list touches every
  shared term of every candidate, so the accumulated dot is exact;
- **lookup** (:meth:`ScoreKernel.select` / :meth:`ScoreKernel.score`)
  — for single-term home-node postings (IL, MOVE), where a node's
  lists cover only its own terms: the full dot is gathered from the
  cached document vector in O(|f|) per candidate and memoized per
  (document, filter) so repeated visits across nodes are free.

Filter identity caveat: slots and norms key on ``filter_id``.  Rebind
an id to a different term set only through the owning system's
``unregister``/``register`` (which notify the kernel); mutating an
index behind the kernel's back leaves a stale norm.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from ..model import Document, Filter
from .csr_kernel import _PRUNE_SLACK, CsrAccelerator, resolve_backend
from .vsm import VsmScorer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import BatchCaches
    from .inverted_index import InvertedIndex

__all__ = ["DocumentScores", "ScoringPass", "ScoreKernel", "_PRUNE_SLACK"]


class DocumentScores:
    """One document's cached scoring state at a fixed statistics epoch.

    Holds the tf–idf weights in document-term order (list + position
    map), the Euclidean norm, the suffix masses for the remaining-mass
    prune, and a per-filter score memo shared by every node visit of
    the batch.  ``document`` is a strong reference on purpose: memo
    maps key by ``id(document)``, and pinning the object guarantees
    the id cannot be recycled while the entry lives.
    """

    __slots__ = (
        "document",
        "idf_epoch",
        "registration_epoch",
        "position",
        "weights",
        "norm",
        "suffix",
        "score_memo",
        "csr_state",
    )

    def __init__(
        self,
        document: Document,
        idf_epoch: int,
        registration_epoch: int,
        weight_map: Dict[str, float],
    ) -> None:
        self.document = document
        self.idf_epoch = idf_epoch
        self.registration_epoch = registration_epoch
        position: Dict[str, int] = {}
        weights: List[float] = []
        for term, weight in weight_map.items():
            position[term] = len(weights)
            weights.append(weight)
        self.position = position
        self.weights = weights
        # Same expression (and summation order) as VsmScorer.similarity
        # so the denominator is bit-identical to the naive scorer's.
        self.norm = math.sqrt(sum(w * w for w in weight_map.values()))
        # suffix[i] = weights[i] + weights[i+1] + ... : the most a
        # filter first seen at walk position i can still accumulate.
        suffix = [0.0] * (len(weights) + 1)
        mass = 0.0
        for i in range(len(weights) - 1, -1, -1):
            mass += weights[i]
            suffix[i] = mass
        self.suffix = suffix
        self.score_memo: Dict[str, float] = {}
        #: Lazily built numpy twin of the vectors above
        #: (:class:`repro.matching.csr_kernel._DocNumpyState`), owned
        #: by the CSR backend; riding on this entry means the epoch
        #: checks that retire the python vectors retire it too.
        self.csr_state: Optional[object] = None


class ScoringPass:
    """One accumulation pass over the posting lists of one node visit.

    Feed each retrieved posting list through :meth:`accumulate` in
    document-term order, then read :meth:`matched`.  Stamped
    accumulators make starting a pass O(1): a slot's accumulated value
    is valid only while its stamp equals this pass's id, so nothing is
    ever cleared.
    """

    __slots__ = ("kernel", "entry", "_pass_id", "_order", "_min_dot")

    def __init__(self, kernel: "ScoreKernel", entry: DocumentScores) -> None:
        self.kernel = kernel
        self.entry = entry
        kernel._pass_id += 1
        self._pass_id = kernel._pass_id
        #: (slot, profile) in first-contribution order — the same
        #: candidate order the naive candidate dict would build.
        self._order: List[Tuple[int, Filter]] = []
        # Filter norms are >= 1 (a filter has at least one term), so
        # threshold * |doc| lower-bounds the dot any match needs.
        self._min_dot = kernel.threshold * entry.norm

    def accumulate(self, term: str, filters: Iterable[Filter]) -> None:
        """Fold one term's posting list into the accumulators."""
        entry = self.entry
        pos = entry.position.get(term)
        if pos is None:
            return  # not a document term: contributes no weight
        weight = entry.weights[pos]
        kernel = self.kernel
        slot_of = kernel._slot_of
        acc = kernel._acc
        stamp = kernel._stamp
        pass_id = self._pass_id
        # SIFT remaining-mass bound: a candidate admitted here can
        # accumulate at most suffix[pos]; when even that (with slack
        # for summation rounding) cannot reach the cheapest possible
        # threshold dot, new candidates are provably non-matches and
        # are skipped.  Already-admitted candidates keep accumulating
        # so their final scores stay exact.
        admit = entry.suffix[pos] * _PRUNE_SLACK >= self._min_dot
        order = self._order
        for profile in filters:
            slot = slot_of.get(profile.filter_id)
            if slot is None:
                slot = kernel._add_slot(
                    profile, math.sqrt(len(profile.terms))
                )
            if stamp[slot] == pass_id:
                acc[slot] += weight
            elif admit:
                stamp[slot] = pass_id
                acc[slot] = weight
                order.append((slot, profile))

    def matched(self) -> List[Filter]:
        """Candidates reaching the threshold, in first-seen order."""
        entry = self.entry
        doc_norm = entry.norm
        if doc_norm == 0.0:
            return []
        kernel = self.kernel
        threshold = kernel.threshold
        acc = kernel._acc
        norms = kernel._norms
        memo = entry.score_memo
        matched: List[Filter] = []
        for slot, profile in self._order:
            score = acc[slot] / (doc_norm * norms[slot])
            memo[profile.filter_id] = score
            if score >= threshold:
                matched.append(profile)
        return matched

    def scores(self) -> Dict[str, float]:
        """Exact score of every admitted candidate (diagnostics)."""
        entry = self.entry
        if entry.norm == 0.0:
            return {
                profile.filter_id: 0.0 for _slot, profile in self._order
            }
        kernel = self.kernel
        acc = kernel._acc
        norms = kernel._norms
        return {
            profile.filter_id: acc[slot] / (entry.norm * norms[slot])
            for slot, profile in self._order
        }


class ScoreKernel:
    """Shared scoring state: dense filter slots, norms, accumulators.

    One kernel serves one scorer/threshold pair — typically owned by a
    :class:`~repro.baselines.base.DisseminationSystem` (all four
    systems route their threshold semantics through it) or a
    :class:`~repro.matching.sift.SiftMatcher`.  Construct with
    ``enabled=False`` — the ``SystemConfig.matching_kernel`` knob,
    plumbed through every owner — to make the owners fall back to the
    naive per-candidate scorer (the benchmarks' pre-kernel reference,
    and the oracle the equivalence suite diffs against).
    :attr:`enabled` is read-only after construction: the PR 4-era
    setter (and ``SiftMatcher(use_kernel=)``) made backend dispatch
    ambiguous and has been removed in favor of the config knobs.

    ``backend`` selects the scoring engine behind the same interface:
    ``"python"`` (the array('d') accumulators below), ``"csr"`` (the
    vectorized block engine of :mod:`repro.matching.csr_kernel`), or
    ``"auto"`` (csr when numpy is importable).  Both backends produce
    bit-identical scores; the equivalence suite runs the full matrix.
    """

    __slots__ = (
        "scorer",
        "threshold",
        "backend",
        "_enabled",
        "_slot_of",
        "_norms",
        "_profiles",
        "_acc",
        "_stamp",
        "_pass_id",
        "_registration_epoch",
        "_solo",
        "_csr",
    )

    def __init__(
        self,
        scorer: VsmScorer,
        threshold: float,
        enabled: bool = True,
        backend: str = "python",
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.scorer = scorer
        self.threshold = threshold
        #: Resolved backend label ("python" or "csr"); "auto" resolves
        #: at construction so owners can report what actually runs.
        self.backend = resolve_backend(backend)
        self._enabled = enabled
        self._slot_of: Dict[str, int] = {}
        self._norms = array("d")
        #: slot -> last registered Filter (parallel to ``_norms``), so
        #: the CSR backend can map matched slots back to profiles.
        self._profiles: List[Filter] = []
        self._acc = array("d")
        self._stamp = array("q")
        self._pass_id = 0
        self._registration_epoch = 0
        self._solo: Optional[DocumentScores] = None
        self._csr: Optional[CsrAccelerator] = (
            CsrAccelerator(self) if self.backend == "csr" else None
        )

    @property
    def enabled(self) -> bool:
        """Whether accumulation/lookup scoring is active (read-only)."""
        return self._enabled

    def __len__(self) -> int:
        """Number of dense filter slots assigned."""
        return len(self._norms)

    # -- norm maintenance (wired to system register/unregister) ----------

    def register_filter(self, profile: Filter) -> None:
        """(Re)compute the filter's precomputed norm.

        Re-registering an id reuses its slot, so an id rebound to a
        different term set gets a fresh ``sqrt(|f|)``.  Bumps the
        registration epoch, dropping per-document score memos that
        could mention the id.
        """
        norm = math.sqrt(len(profile.terms))
        slot = self._slot_of.get(profile.filter_id)
        if slot is None:
            self._add_slot(profile, norm)
        else:
            self._norms[slot] = norm
            # Rebinding invalidates the CSR backend's cached per-slot
            # term-id row by identity (it validates against this).
            self._profiles[slot] = profile
        self._registration_epoch += 1

    def unregister_filter(self, filter_id: str) -> None:
        """Invalidate memoized scores mentioning ``filter_id``.

        The slot and norm stay allocated (dense ids are stable);
        postings simply stop yielding the filter.
        """
        self._registration_epoch += 1

    def _add_slot(self, profile: Filter, norm: float) -> int:
        slot = len(self._norms)
        self._slot_of[profile.filter_id] = slot
        self._norms.append(norm)
        self._profiles.append(profile)
        self._acc.append(0.0)
        self._stamp.append(0)
        return slot

    def _slot_for(self, profile: Filter) -> int:
        """Dense slot of ``profile``, lazily assigned on first sight."""
        slot = self._slot_of.get(profile.filter_id)
        if slot is None:
            slot = self._add_slot(
                profile, math.sqrt(len(profile.terms))
            )
        return slot

    # -- cached document vectors ------------------------------------------

    def scores_for(
        self, document: Document, caches: Optional["BatchCaches"] = None
    ) -> DocumentScores:
        """The document's scoring state, memoized and epoch-checked.

        With ``caches`` (a pipeline batch), entries live in
        ``caches.doc_scores`` and are shared by every node/partition
        visit of the batch; without, a single-document slot on the
        kernel serves matcher-style one-document-at-a-time callers.
        Either way a vector computed under an older
        ``CorpusStatistics.documents_seen`` (or an older registration
        epoch) is discarded and rebuilt.
        """
        idf_epoch = self.scorer.statistics.documents_seen
        reg_epoch = self._registration_epoch
        if caches is not None:
            key = id(document)
            entry = caches.doc_scores.get(key)
            if (
                entry is not None
                and entry.document is document
                and entry.idf_epoch == idf_epoch
                and entry.registration_epoch == reg_epoch
            ):
                return entry
            entry = self._build(document, idf_epoch, reg_epoch)
            caches.doc_scores[key] = entry
            return entry
        entry = self._solo
        if (
            entry is not None
            and entry.document is document
            and entry.idf_epoch == idf_epoch
            and entry.registration_epoch == reg_epoch
        ):
            return entry
        entry = self._build(document, idf_epoch, reg_epoch)
        self._solo = entry
        return entry

    def _build(
        self, document: Document, idf_epoch: int, reg_epoch: int
    ) -> DocumentScores:
        return DocumentScores(
            document,
            idf_epoch,
            reg_epoch,
            self.scorer.document_weights(document),
        )

    # -- accumulation mode -------------------------------------------------

    def begin(
        self, document: Document, caches: Optional["BatchCaches"] = None
    ) -> ScoringPass:
        """Start one accumulation pass (one node visit).

        Only valid over indexes that hold each filter under *all* of
        its terms (the SIFT/RS/Centralized shape) — otherwise the walk
        misses shared terms and the dot is partial; single-term
        home-node consumers use :meth:`select` instead.
        """
        return ScoringPass(self, self.scores_for(document, caches))

    def bulk_match(
        self,
        document: Document,
        index: "InvertedIndex",
        caches: Optional["BatchCaches"] = None,
    ) -> Optional[Tuple[List[Filter], int, int]]:
        """Whole-block accumulation match, when the backend has one.

        The vectorized twin of a ``begin``/``accumulate``/``matched``
        posting walk over *all* of the index's document-term lists:
        returns ``(matched filters in first-seen candidate order,
        posting lists touched, posting entries scanned)``.  Returns
        ``None`` on the python backend, so call sites keep one shape::

            bulk = kernel.bulk_match(document, index, caches)
            if bulk is None:
                ... per-term ScoringPass walk ...

        The same SIFT-index contract as :meth:`begin` applies: the
        index must hold each filter under all of its terms.
        """
        if self._csr is None:
            return None
        return self._csr.match_index(document, index, caches)

    # -- lookup mode ---------------------------------------------------------

    def select(
        self,
        document: Document,
        candidates: Iterable[Filter],
        caches: Optional["BatchCaches"] = None,
    ) -> List[Filter]:
        """Candidates reaching the threshold (input order preserved).

        Lookup mode is backend-independent by design: per-candidate
        dots over 2–3-term filters are a handful of dict probes each,
        which the measured numbers say no batched gather can beat
        (building per-candidate index arrays costs more than the dots
        themselves), so both backends share this memoized scalar loop
        and the CSR backend accelerates the block-shaped accumulation
        mode (:meth:`bulk_match`) where vectorization has leverage.
        """
        entry = self.scores_for(document, caches)
        threshold = self.threshold
        memo = entry.score_memo
        selected: List[Filter] = []
        for profile in candidates:
            fid = profile.filter_id
            score = memo.get(fid)
            if score is None:
                score = self._score(entry, profile)
                memo[fid] = score
            if score >= threshold:
                selected.append(profile)
        return selected

    def score(
        self,
        document: Document,
        profile: Filter,
        caches: Optional["BatchCaches"] = None,
    ) -> float:
        """Bit-for-bit ``VsmScorer.similarity``, via the cached vector."""
        entry = self.scores_for(document, caches)
        memo = entry.score_memo
        score = memo.get(profile.filter_id)
        if score is None:
            score = self._score(entry, profile)
            memo[profile.filter_id] = score
        return score

    def _score(self, entry: DocumentScores, profile: Filter) -> float:
        """Full cosine from the cached vector, O(|f|).

        The dot sums the shared terms' weights in ascending document
        position — the exact addition sequence of the canonical
        ``VsmScorer.similarity`` loop and of a posting-walk
        accumulation, so all three agree bit-for-bit.
        """
        doc_norm = entry.norm
        if doc_norm == 0.0:
            return 0.0
        position = entry.position
        hits: List[int] = []
        for term in profile.terms:
            pos = position.get(term)
            if pos is not None:
                hits.append(pos)
        dot = 0.0
        if hits:
            hits.sort()
            weights = entry.weights
            for pos in hits:
                dot += weights[pos]
        slot = self._slot_for(profile)
        return dot / (doc_norm * self._norms[slot])
