"""SIFT centralized matcher (Yan & Garcia-Molina, 1999).

The rendezvous baseline matches a document against *locally registered*
filters with the classic SIFT algorithm: with the help of the local
inverted index, retrieve the posting lists of all ``|d|`` document
terms and collect the filters they reference (Section VI-A).  Under the
boolean any-term semantics every referenced filter matches; under the
threshold extension SIFT accumulates per-filter scores from the lists
and applies the threshold at the end — both modes are provided.

Threshold matching runs through the score-accumulation kernel
(:mod:`repro.matching.kernel`) by default; pass a
``SystemConfig(matching_kernel=False)`` as ``config`` for the naive
score-per-candidate reference implementation the equivalence tests
diff against.  ``SystemConfig.matching_backend`` likewise selects the
kernel's scoring engine (the vectorized CSR block engine of
:mod:`repro.matching.csr_kernel` when available, or the pure-python
accumulators); the pre-config ``use_kernel=`` keyword and its
deprecated read shim have both been removed — inspect
:attr:`SiftMatcher.kernel` instead.
Accumulation is exact here because a ``SiftMatcher``'s index holds
each filter under **all** of its terms (the SIFT index contract), so
walking every document term's posting list touches every shared term
of every candidate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..model import Document, Filter
from .inverted_index import InvertedIndex, RetrievalCost
from .kernel import ScoreKernel
from .vsm import VsmScorer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SystemConfig


class SiftMatcher:
    """Centralized full-retrieval matcher over one local index."""

    def __init__(
        self,
        index: InvertedIndex,
        scorer: Optional[VsmScorer] = None,
        threshold: Optional[float] = None,
        config: Optional["SystemConfig"] = None,
    ) -> None:
        if (scorer is None) != (threshold is None):
            raise ValueError(
                "scorer and threshold must be supplied together"
            )
        kernel_enabled = (
            config.matching_kernel if config is not None else True
        )
        backend = (
            config.matching_backend if config is not None else "auto"
        )
        self.index = index
        self.scorer = scorer
        self.threshold = threshold
        self.kernel: Optional[ScoreKernel] = (
            ScoreKernel(scorer, threshold, backend=backend)
            if scorer is not None and kernel_enabled
            else None
        )

    def match(
        self, document: Document
    ) -> Tuple[List[Filter], RetrievalCost]:
        """All locally registered filters matching ``document``.

        Retrieves the posting list of *every* document term — this is
        what makes flooding expensive for large articles and is exactly
        the work the cost model charges the rendezvous baseline.
        """
        if self.scorer is None:
            return self.index.match_document_all_terms(document)
        if self.kernel is not None and self.kernel.enabled:
            return self._match_threshold_kernel(document)
        return self._match_threshold_reference(document)

    def _match_threshold(
        self, document: Document
    ) -> Tuple[List[Filter], RetrievalCost]:
        """Score-accumulating SIFT for threshold semantics."""
        assert self.scorer is not None and self.threshold is not None
        if self.kernel is not None and self.kernel.enabled:
            return self._match_threshold_kernel(document)
        return self._match_threshold_reference(document)

    def _match_threshold_kernel(
        self, document: Document
    ) -> Tuple[List[Filter], RetrievalCost]:
        """Kernel path: one accumulation pass over the posting walk.

        On the CSR backend the whole walk collapses into one
        vectorized block match; costs and matches are bit-identical
        either way.
        """
        bulk = self.kernel.bulk_match(document, self.index)
        if bulk is not None:
            matched, lists, entries = bulk
            return matched, RetrievalCost(lists, entries)
        scoring = self.kernel.begin(document)
        lists = 0
        entries = 0
        index = self.index
        for term in document.terms:
            plist = index.posting_list(term)
            if plist is None:
                continue
            lists += 1
            entries += len(plist)
            filters, _ = index.filters_for_term(term)
            scoring.accumulate(term, filters)
        return scoring.matched(), RetrievalCost(lists, entries)

    def _match_threshold_reference(
        self, document: Document
    ) -> Tuple[List[Filter], RetrievalCost]:
        """Naive score-per-candidate reference (the kernel's oracle)."""
        lists = 0
        entries = 0
        candidates: Dict[str, Filter] = {}
        for term in document.terms:
            plist = self.index.posting_list(term)
            if plist is None:
                continue
            lists += 1
            entries += len(plist)
            filters, _ = self.index.filters_for_term(term)
            for profile in filters:
                candidates[profile.filter_id] = profile
        matched = [
            profile
            for profile in candidates.values()
            if self.scorer.similarity(document, profile) >= self.threshold
        ]
        return matched, RetrievalCost(lists, entries)
