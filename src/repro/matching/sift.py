"""SIFT centralized matcher (Yan & Garcia-Molina, 1999).

The rendezvous baseline matches a document against *locally registered*
filters with the classic SIFT algorithm: with the help of the local
inverted index, retrieve the posting lists of all ``|d|`` document
terms and collect the filters they reference (Section VI-A).  Under the
boolean any-term semantics every referenced filter matches; under the
threshold extension SIFT accumulates per-filter scores from the lists
and applies the threshold at the end — both modes are provided.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..model import Document, Filter
from .inverted_index import InvertedIndex, RetrievalCost
from .vsm import VsmScorer


class SiftMatcher:
    """Centralized full-retrieval matcher over one local index."""

    def __init__(
        self,
        index: InvertedIndex,
        scorer: Optional[VsmScorer] = None,
        threshold: Optional[float] = None,
    ) -> None:
        if (scorer is None) != (threshold is None):
            raise ValueError(
                "scorer and threshold must be supplied together"
            )
        self.index = index
        self.scorer = scorer
        self.threshold = threshold

    def match(
        self, document: Document
    ) -> Tuple[List[Filter], RetrievalCost]:
        """All locally registered filters matching ``document``.

        Retrieves the posting list of *every* document term — this is
        what makes flooding expensive for large articles and is exactly
        the work the cost model charges the rendezvous baseline.
        """
        if self.scorer is None:
            return self.index.match_document_all_terms(document)
        return self._match_threshold(document)

    def _match_threshold(
        self, document: Document
    ) -> Tuple[List[Filter], RetrievalCost]:
        """Score-accumulating SIFT for threshold semantics."""
        assert self.scorer is not None and self.threshold is not None
        lists = 0
        entries = 0
        partial_hits: Dict[str, List[str]] = defaultdict(list)
        candidates: Dict[str, Filter] = {}
        for term in document.terms:
            plist = self.index.posting_list(term)
            if plist is None:
                continue
            lists += 1
            entries += len(plist)
            filters, _ = self.index.filters_for_term(term)
            for profile in filters:
                partial_hits[profile.filter_id].append(term)
                candidates[profile.filter_id] = profile
        matched = [
            profile
            for fid, profile in candidates.items()
            if self.scorer.similarity(document, profile) >= self.threshold
        ]
        return matched, RetrievalCost(lists, entries)
