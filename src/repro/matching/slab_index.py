"""Slot-native inverted index over a shared filter slab.

The compacted twin of :class:`~repro.matching.inverted_index
.InvertedIndex` for ``SystemConfig.filter_storage = "slab"``:

- posting lists are keyed by **interned term-id** and hold the
  filter's global **slab slot** (a plain int) instead of an object
  reference — one shared :class:`~repro.model.slab.FilterSlabStore`
  per system replaces every per-index ``_filters`` /
  ``_local_id_by_filter_id`` / ``_indexed_terms`` dict;
- a filter's indexed-terms bookkeeping disappears entirely: which
  local terms index a slot is answered by probing the slot's slab
  term-ids against the local postings (``O(|f| log n)``, and ``|f|``
  averages 2–3);
- every object-returning read (``filters_for_term``, ``all_filters``,
  the matchers) *rehydrates* through the slab's bounded cache, so the
  hot boolean pipeline — which consumes only filter-id tuples via
  :meth:`retrieve_for_term` — never materializes a ``Filter`` at all;
- :meth:`add_slots` is the slot-native bulk loader the MOVE
  reallocation engine feeds directly from home-index postings, so
  rebuilding a subset index never rehydrates a single filter.

Equivalence: posting *sets* per term are identical to the object
index's (slots and local-ids differ as integers but select the same
filters), every count (``__len__``, ``stored_replica_count``,
retrieval costs) matches, and listener notifications carry the same
``(term, id, filter)`` shape — so CSR posting-block mirrors build
against either index unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import MatchingError
from ..model import Document, Filter
from ..model.slab import FilterSlabStore
from .inverted_index import InvertedIndex, RetrievalCost
from .postings import PostingList


class _SlabPostingFilters:
    """Lazy ``Sequence[Filter]`` over a snapshot of posting slots.

    Sits in the ``filters`` position of the pipeline's memoized
    :data:`~repro.core.pipeline.Retrieval` tuple: boolean any-term
    paths never touch it, threshold paths iterate it and rehydrate
    through the slab's bounded cache on demand.
    """

    __slots__ = ("_slab", "_slots")

    def __init__(self, slab: FilterSlabStore, slots: Tuple[int, ...]) -> None:
        self._slab = slab
        self._slots = slots

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[Filter]:
        get = self._slab.get
        for slot in self._slots:
            yield get(slot)

    def __getitem__(self, index: int) -> Filter:
        return self._slab.get(self._slots[index])


class SlabBackedIndex(InvertedIndex):
    """``InvertedIndex`` storing slab slots in term-id-keyed postings."""

    def __init__(self, slab: FilterSlabStore) -> None:
        super().__init__()
        self.slab = slab
        #: Interned term-id -> :class:`PostingList` of slab slots.  The
        #: base class's string-keyed map stays empty; every accessor
        #: that would read it is overridden below.
        self._id_postings: Dict[int, PostingList] = {}
        #: Distinct filters indexed here, maintained by add/remove
        #: probes so ``__len__`` stays O(1).
        self._distinct = 0

    # -- shape -------------------------------------------------------------

    def __len__(self) -> int:
        return self._distinct

    def __contains__(self, filter_id: str) -> bool:
        slot = self.slab.slot_of(filter_id)
        return slot is not None and self._indexed_anywhere(slot)

    @property
    def distinct_terms(self) -> int:
        return len(self._id_postings)

    def stored_replica_count(self) -> int:
        return self._replica_entries

    def _indexed_anywhere(self, slot: int) -> bool:
        """Is ``slot`` on any local posting of its slab terms?"""
        postings = self._id_postings
        if not postings:
            return False
        for term_id in self.slab.term_ids(slot):
            plist = postings.get(term_id)
            if plist is not None and slot in plist:
                return True
        return False

    # -- registration -----------------------------------------------------

    def _posting(self, term_id: int, term: Optional[str] = None) -> PostingList:
        plist = self._id_postings.get(term_id)
        if plist is None:
            if term is None:
                term = self.slab.interner.term(term_id)
            plist = PostingList(term)
            self._id_postings[term_id] = plist
        return plist

    def add_filter(
        self,
        profile: Filter,
        indexed_terms: Optional[Iterable[str]] = None,
    ) -> int:
        """Index ``profile``; returns its slab slot (the posting id)."""
        slot = self.slab.add(profile)
        if indexed_terms is None:
            terms = profile.terms
        else:
            terms = set(indexed_terms) & profile.terms
            if not terms:
                raise MatchingError(
                    f"filter {profile.filter_id!r} indexed under none of "
                    f"its terms"
                )
        known = self._indexed_anywhere(slot)
        intern = self.slab.interner.intern
        listeners = self._listeners
        for term in terms:
            plist = self._posting(intern(term), term)
            if plist.add(slot):
                self._replica_entries += 1
                if listeners:
                    for listener in listeners:
                        listener.posting_added(term, slot, profile)
        if not known:
            self._distinct += 1
        return slot

    def add_filters(
        self,
        entries: Iterable[Tuple[Filter, Optional[Iterable[str]]]],
    ) -> int:
        """Bulk-index ``(profile, indexed_terms)`` pairs (one sort per
        touched posting list); returns posting entries added."""
        per_term: Dict[int, Tuple[str, List[int]]] = {}
        new_slots: Set[int] = set()
        profiles: Dict[int, Filter] = {} if self._listeners else None
        for profile, indexed_terms in entries:
            slot = self.slab.add(profile)
            if indexed_terms is None:
                terms = profile.terms
            else:
                terms = set(indexed_terms) & profile.terms
                if not terms:
                    raise MatchingError(
                        f"filter {profile.filter_id!r} indexed under none "
                        f"of its terms"
                    )
            if slot not in new_slots and not self._indexed_anywhere(slot):
                new_slots.add(slot)
            if profiles is not None:
                profiles[slot] = profile
            intern = self.slab.interner.intern
            for term in terms:
                term_id = intern(term)
                bucket = per_term.get(term_id)
                if bucket is None:
                    bucket = (term, [])
                    per_term[term_id] = bucket
                bucket[1].append(slot)
        added = 0
        for term_id, (term, slots) in per_term.items():
            plist = self._posting(term_id, term)
            if self._listeners:
                # Per-slot inserts so each effective add is observable;
                # final posting state is identical to ``add_many``.
                for slot in slots:
                    if plist.add(slot):
                        added += 1
                        for listener in self._listeners:
                            listener.posting_added(
                                term, slot, profiles[slot]
                            )
            else:
                added += plist.add_many(slots)
        self._replica_entries += added
        self._distinct += len(new_slots)
        return added

    def add_slots(
        self,
        entries: Iterable[Tuple[int, Optional[Iterable[int]]]],
    ) -> int:
        """Slot-native bulk load: ``(slot, indexed term-ids)`` pairs.

        The reallocation fast path — subset indexes are rebuilt
        straight from home-index postings without rehydrating any
        ``Filter``.  ``None`` term-ids index the slot under all of its
        slab terms.  Listener notifications rehydrate lazily (the CSR
        mirrors are only attached to matcher-facing indexes).
        """
        per_term: Dict[int, List[int]] = {}
        new_slots: Set[int] = set()
        for slot, term_ids in entries:
            if term_ids is None:
                term_ids = self.slab.term_ids(slot)
            if slot not in new_slots and not self._indexed_anywhere(slot):
                new_slots.add(slot)
            for term_id in term_ids:
                per_term.setdefault(term_id, []).append(slot)
        added = 0
        term_of = self.slab.interner.term
        for term_id, slots in per_term.items():
            plist = self._posting(term_id)
            if self._listeners:
                term = term_of(term_id)
                for slot in slots:
                    if plist.add(slot):
                        added += 1
                        for listener in self._listeners:
                            listener.posting_added(
                                term, slot, self.slab.get(slot)
                            )
            else:
                added += plist.add_many(slots)
        self._replica_entries += added
        self._distinct += len(new_slots)
        return added

    def remove_filter(self, filter_id: str) -> bool:
        slot = self.slab.slot_of(filter_id)
        if slot is None:
            return False
        removed = False
        postings = self._id_postings
        listeners = self._listeners
        term_of = self.slab.interner.term
        for term_id in self.slab.term_ids(slot):
            plist = postings.get(term_id)
            if plist is None:
                continue
            if plist.remove(slot):
                removed = True
                self._replica_entries -= 1
                if listeners:
                    term = term_of(term_id)
                    for listener in listeners:
                        listener.posting_removed(term, slot)
            if not plist:
                del postings[term_id]
        if removed:
            self._distinct -= 1
        return removed

    def remove_term(self, term: str) -> List[Filter]:
        term_id = self.slab.interner.lookup(term)
        plist = (
            self._id_postings.pop(term_id, None)
            if term_id is not None
            else None
        )
        if plist is None:
            return []
        self._replica_entries -= len(plist)
        if self._listeners:
            for listener in self._listeners:
                listener.term_dropped(term)
        moved: List[Filter] = []
        for slot in plist:
            moved.append(self.slab.get(slot))
            if not self._indexed_anywhere(slot):
                self._distinct -= 1
        return moved

    # -- retrieval ----------------------------------------------------------

    def posting_list(self, term: str) -> Optional[PostingList]:
        term_id = self.slab.interner.lookup(term)
        if term_id is None:
            return None
        return self._id_postings.get(term_id)

    def filters_for_term(
        self, term: str
    ) -> Tuple[List[Filter], RetrievalCost]:
        plist = self.posting_list(term)
        if plist is None:
            return [], RetrievalCost(0, 0)
        get = self.slab.get
        return [get(slot) for slot in plist], RetrievalCost(1, len(plist))

    def retrieve_for_term(self, term: str):
        plist = self.posting_list(term)
        if plist is None:
            return [], (), 0, 0
        slab = self.slab
        slots = plist.ids()
        filter_id = slab.filter_id
        return (
            _SlabPostingFilters(slab, slots),
            tuple(filter_id(slot) for slot in slots),
            1,
            len(slots),
        )

    def match_document_all_terms(
        self, document: Document
    ) -> Tuple[List[Filter], RetrievalCost]:
        lookup = self.slab.interner.lookup
        postings = self._id_postings
        seen: Set[int] = set()
        ordered: List[int] = []
        lists = 0
        entries = 0
        for term in document.terms:
            term_id = lookup(term)
            plist = postings.get(term_id) if term_id is not None else None
            if plist is None:
                continue
            lists += 1
            entries += len(plist)
            for slot in plist:
                if slot not in seen:
                    seen.add(slot)
                    ordered.append(slot)
        get = self.slab.get
        return [get(slot) for slot in ordered], RetrievalCost(lists, entries)

    def iter_term_postings(self):
        term_of = self.slab.interner.term
        get = self.slab.get
        for term_id, plist in self._id_postings.items():
            yield term_of(term_id), [(slot, get(slot)) for slot in plist]

    def iter_slot_items(self) -> Iterator[Tuple[int, str]]:
        """Distinct ``(slot, filter_id)`` pairs, posting-walk order."""
        seen: Set[int] = set()
        filter_id = self.slab.filter_id
        for plist in self._id_postings.values():
            for slot in plist:
                if slot not in seen:
                    seen.add(slot)
                    yield slot, filter_id(slot)

    def slot_entries_for_term(self, term: str) -> List[Tuple[int, str]]:
        """``(slot, filter_id)`` of one posting (reallocation origin)."""
        plist = self.posting_list(term)
        if plist is None:
            return []
        filter_id = self.slab.filter_id
        return [(slot, filter_id(slot)) for slot in plist]

    def posting_term_ids(self) -> Iterator[int]:
        """Term-ids with a live posting list here (insertion order)."""
        return iter(self._id_postings)

    def all_filters(self) -> List[Filter]:
        get = self.slab.get
        return [get(slot) for slot, _fid in self.iter_slot_items()]

    def terms(self) -> List[str]:
        term_of = self.slab.interner.term
        return sorted(term_of(term_id) for term_id in self._id_postings)
