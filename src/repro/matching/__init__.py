"""Matching engines: inverted lists, Bloom filters, SIFT, VSM.

The paper's matching machinery in one place:

- :mod:`repro.matching.postings` — posting lists (the unit of disk IO
  in the cost model),
- :mod:`repro.matching.inverted_index` — a local inverted index over
  registered filters,
- :mod:`repro.matching.slab_index` — the columnar twin of the index:
  term-id-keyed postings of slab slots over one shared
  :class:`~repro.model.slab.FilterSlabStore` (the
  ``filter_storage="slab"`` memory tier),
- :mod:`repro.matching.bloom` — the Bloom filter used to prune
  document forwarding (Section V),
- :mod:`repro.matching.sift` — the SIFT centralized matcher used by the
  rendezvous baseline (retrieves all ``|d|`` posting lists),
- :mod:`repro.matching.home_node` — the home-node matcher of the
  baseline/MOVE (retrieves only the home term's posting list),
- :mod:`repro.matching.vsm` — tf–idf / cosine scoring for the
  similarity-threshold extension,
- :mod:`repro.matching.kernel` — the score-accumulation kernel shared
  by all threshold-semantics consumers (cached document vectors,
  dense-slot accumulators, remaining-mass pruning),
- :mod:`repro.matching.csr_kernel` — the vectorized CSR bulk-matching
  backend behind the same kernel interface (incremental sparse
  term×filter blocks, whole-block segment-sum scoring; requires
  numpy, selected via ``SystemConfig.matching_backend``).
"""

from .bloom import BloomFilter
from .csr_kernel import (
    HAVE_NUMPY,
    CsrAccelerator,
    CsrPostingBlock,
    resolve_backend,
)
from .home_node import HomeNodeMatcher
from .inverted_index import InvertedIndex
from .kernel import DocumentScores, ScoreKernel, ScoringPass
from .postings import PostingList
from .query import (
    QueryEngine,
    QueryError,
    QuerySubscription,
    compile_subscription,
    parse_query,
)
from .sift import SiftMatcher
from .slab_index import SlabBackedIndex
from .vsm import VsmScorer

__all__ = [
    "PostingList",
    "InvertedIndex",
    "SlabBackedIndex",
    "BloomFilter",
    "SiftMatcher",
    "HomeNodeMatcher",
    "VsmScorer",
    "ScoreKernel",
    "ScoringPass",
    "DocumentScores",
    "CsrAccelerator",
    "CsrPostingBlock",
    "HAVE_NUMPY",
    "resolve_backend",
    "QueryEngine",
    "QueryError",
    "QuerySubscription",
    "parse_query",
    "compile_subscription",
]
