"""Vectorized CSR bulk-matching backend for the scoring kernel.

PR 3's :class:`~repro.matching.kernel.ScoreKernel` made threshold
matching O(|d| + |candidates|) but still touches every posting entry
from the Python interpreter.  This module is the second backend behind
the same kernel interface: each SIFT-shape index (RS replicas, the
Centralized node, any ``SiftMatcher``) is mirrored as an incrementally
maintained CSR-style sparse term×filter structure — per-term rows of
``int32`` dense filter slots with parallel ``float64`` data — and one
document's whole match against the block runs as a single vectorized
gather / segment-sum / norm-divide pass with the SIFT remaining-mass
prune applied per block.

Exactness contract (the non-negotiable part): every score must be
**bit-for-bit identical** to ``VsmScorer.similarity`` and to the
pure-python kernel.  Float addition is not associative, so the segment
sums deliberately do *not* use ``np.dot`` / ``np.add.reduceat`` (NumPy
sums pairwise); instead contributions are stably sorted by filter slot
— preserving document-term order within each segment, the canonical
summation order — and reduced with the "rounds" algorithm: one
vectorized add per contribution rank, each segment growing strictly
left to right.  The result is the exact addition sequence the python
accumulator executes, at numpy speed.

Integration points:

- ``ScoreKernel(backend="csr")`` owns one :class:`CsrAccelerator`;
- :meth:`ScoreKernel.bulk_match` → :meth:`CsrAccelerator.match_index`
  (accumulation mode: RS / Centralized ``_execute``, ``SiftMatcher``);
- lookup mode (:meth:`ScoreKernel.select`, the base
  ``_apply_semantics`` used by IL and MOVE) deliberately stays on the
  shared memoized scalar scorer under both backends: candidates carry
  2–3 terms, so a per-candidate dot is a handful of dict probes and
  profiling showed every batched-gather variant losing to it on the
  per-candidate array-building overhead alone;
- blocks register as :class:`~repro.matching.inverted_index.
  InvertedIndex` mutation listeners, so register / unregister /
  reallocation keep every mirror exact (the structural-invariant tests
  diff live blocks against from-scratch rebuilds);
- per-document numpy state hangs off
  :class:`~repro.matching.kernel.DocumentScores`, so the kernel's
  IDF-epoch / registration-epoch invalidation applies to it unchanged.

NumPy is optional: the module imports with ``np = None`` when it is
missing, ``resolve_backend("auto")`` falls back to ``"python"``, and
an explicit ``backend="csr"`` raises a
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from typing import (
    Dict,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

try:  # pragma: no cover - exercised via the numpy-hidden CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..errors import ConfigurationError
from ..model import Document, Filter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import BatchCaches
    from .inverted_index import InvertedIndex
    from .kernel import DocumentScores, ScoreKernel

#: Whether the vectorized backend can run in this environment.
HAVE_NUMPY = np is not None

#: Relative slack applied to the remaining-mass prune (shared with the
#: python kernel, which imports it from here so the two backends can
#: never drift apart).  Summation order can perturb the suffix masses
#: and accumulated dots by a few ULPs each; the bound is inflated far
#: beyond that noise (but far below any real score gap) before it is
#: allowed to drop a candidate.
_PRUNE_SLACK = 1.0 + 1e-9

#: Valid ``SystemConfig.matching_backend`` values.
BACKENDS = ("auto", "csr", "python")


def resolve_backend(name: str) -> str:
    """Resolve a backend request to the concrete backend to run.

    ``"auto"`` picks ``"csr"`` when numpy is importable and
    ``"python"`` otherwise; an explicit ``"csr"`` without numpy is a
    configuration error (silently degrading an explicit request would
    hide a 3x+ throughput regression).
    """
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown matching backend {name!r}; expected one of "
            f"{BACKENDS}"
        )
    if name == "auto":
        return "csr" if HAVE_NUMPY else "python"
    if name == "csr" and not HAVE_NUMPY:
        raise ConfigurationError(
            "matching_backend='csr' requires numpy, which is not "
            "importable in this environment; use 'auto' to fall back "
            "to the pure-python kernel"
        )
    return name


class _CsrRow:
    """One term's posting row: parallel growable numpy arrays.

    ``local_ids`` (int64) keeps the index's posting order (ascending
    local id) so incremental inserts land where ``PostingList`` puts
    them; ``slots`` (int32) are the kernel's dense filter slots the
    scoring pass actually consumes; ``data`` (float64) is the CSR
    value lane — 1.0 per posting under set-valued filters, multiplied
    into the document weight (exact: ``w * 1.0 == w`` bit-for-bit).
    """

    __slots__ = ("local_ids", "slots", "data", "size")

    def __init__(self, capacity: int = 4) -> None:
        self.local_ids = np.empty(capacity, dtype=np.int64)
        self.slots = np.empty(capacity, dtype=np.int32)
        self.data = np.empty(capacity, dtype=np.float64)
        self.size = 0

    @classmethod
    def from_pairs(
        cls, pairs: List[Tuple[int, int]]
    ) -> "_CsrRow":
        """Bulk-build from ``(local_id, slot)`` pairs in posting order."""
        row = cls.__new__(cls)
        n = len(pairs)
        row.local_ids = np.fromiter(
            (lid for lid, _slot in pairs), dtype=np.int64, count=n
        )
        row.slots = np.fromiter(
            (slot for _lid, slot in pairs), dtype=np.int32, count=n
        )
        row.data = np.ones(n, dtype=np.float64)
        row.size = n
        return row

    def _grow(self) -> None:
        capacity = max(4, 2 * len(self.local_ids))
        for name in ("local_ids", "slots", "data"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)

    def insert(self, local_id: int, slot: int) -> None:
        """Insert a posting, keeping ascending-local-id order."""
        size = self.size
        pos = int(np.searchsorted(self.local_ids[:size], local_id))
        if pos < size and self.local_ids[pos] == local_id:
            return  # already mirrored (index reported no change)
        if size == len(self.local_ids):
            self._grow()
        # Explicit .copy() of the shifted source: numpy slice
        # assignment between overlapping views of one buffer is not a
        # guaranteed memmove.
        for name, value in (
            ("local_ids", local_id),
            ("slots", slot),
            ("data", 1.0),
        ):
            arr = getattr(self, name)
            arr[pos + 1 : size + 1] = arr[pos:size].copy()
            arr[pos] = value
        self.size = size + 1

    def remove(self, local_id: int) -> bool:
        """Drop a posting; returns False when it was never mirrored."""
        size = self.size
        pos = int(np.searchsorted(self.local_ids[:size], local_id))
        if pos >= size or self.local_ids[pos] != local_id:
            return False
        for name in ("local_ids", "slots", "data"):
            arr = getattr(self, name)
            arr[pos : size - 1] = arr[pos + 1 : size].copy()
        self.size = size - 1
        return True

    def snapshot(
        self,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[float, ...]]:
        """Materialized (local_ids, slots, data) — the test oracle view."""
        size = self.size
        return (
            tuple(int(x) for x in self.local_ids[:size]),
            tuple(int(x) for x in self.slots[:size]),
            tuple(float(x) for x in self.data[:size]),
        )


class CsrPostingBlock:
    """Incremental CSR mirror of one :class:`InvertedIndex`.

    Hydrated once from the index's live postings, then kept exact by
    the index's mutation listener hooks: every posting add / remove /
    term drop updates the matching row in place, so reallocation and
    subscription churn never require a rebuild (the structural tests
    assert snapshot equality against a from-scratch mirror after
    random interleavings).  Slots come from the owning kernel, so one
    kernel's blocks all speak the same dense filter-slot space.
    """

    __slots__ = ("_kernel", "_rows")

    def __init__(
        self, kernel: "ScoreKernel", index: "InvertedIndex"
    ) -> None:
        self._kernel = kernel
        self._rows: Dict[str, _CsrRow] = {}
        slot_for = kernel._slot_for
        for term, pairs in index.iter_term_postings():
            self._rows[term] = _CsrRow.from_pairs(
                [(lid, slot_for(profile)) for lid, profile in pairs]
            )
        index.add_listener(self)

    def __len__(self) -> int:
        """Number of non-empty term rows."""
        return len(self._rows)

    def row(self, term: str) -> Optional[_CsrRow]:
        return self._rows.get(term)

    # -- index mutation listener hooks ------------------------------------

    def posting_added(
        self, term: str, local_id: int, profile: Filter
    ) -> None:
        row = self._rows.get(term)
        if row is None:
            row = self._rows[term] = _CsrRow()
        row.insert(local_id, self._kernel._slot_for(profile))

    def posting_removed(self, term: str, local_id: int) -> None:
        row = self._rows.get(term)
        if row is None:
            return
        row.remove(local_id)
        if row.size == 0:
            del self._rows[term]  # mirror the index dropping the list

    def term_dropped(self, term: str) -> None:
        self._rows.pop(term, None)

    # -- diagnostics --------------------------------------------------------

    def snapshot(
        self,
    ) -> Dict[
        str,
        Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[float, ...]],
    ]:
        """Full materialized structure, for invariant tests."""
        return {
            term: row.snapshot() for term, row in self._rows.items()
        }


class _DocNumpyState:
    """Numpy twin of one :class:`DocumentScores` entry.

    Built lazily on first CSR use of the entry and cached on it, so
    the kernel's epoch invalidation (IDF ``documents_seen`` + the
    registration epoch) retires the numpy arrays together with the
    python vectors they were copied from.
    """

    __slots__ = ("suffix",)

    def __init__(self, entry: "DocumentScores") -> None:
        self.suffix = np.array(entry.suffix, dtype=np.float64)


class CsrAccelerator:
    """The vectorized engine bound to one :class:`ScoreKernel`.

    Owns the per-index posting blocks and implements accumulation-mode
    matching as a whole-block numpy pass that replays the python
    backend's exact addition sequence.
    """

    __slots__ = ("_kernel", "_blocks")

    def __init__(self, kernel: "ScoreKernel") -> None:
        self._kernel = kernel
        #: id(index) -> (index, block).  The strong index reference
        #: pins the id so it cannot be recycled while the block lives;
        #: blocks are only built for the long-lived SIFT-shape indexes
        #: (RS replicas, the central index, SiftMatcher indexes).
        self._blocks: Dict[
            int, Tuple["InvertedIndex", CsrPostingBlock]
        ] = {}

    # -- shared state -------------------------------------------------------

    def block_for(self, index: "InvertedIndex") -> CsrPostingBlock:
        """The index's CSR mirror, built on first use."""
        key = id(index)
        entry = self._blocks.get(key)
        if entry is not None and entry[0] is index:
            return entry[1]
        block = CsrPostingBlock(self._kernel, index)
        self._blocks[key] = (index, block)
        return block

    def _doc_state(self, entry: "DocumentScores") -> _DocNumpyState:
        state = entry.csr_state
        if state is None:
            state = _DocNumpyState(entry)
            entry.csr_state = state
        return state

    # -- accumulation mode: one document vs one whole posting block --------

    def match_index(
        self,
        document: Document,
        index: "InvertedIndex",
        caches: Optional["BatchCaches"] = None,
    ) -> Tuple[List[Filter], int, int]:
        """Threshold-match ``document`` against the index's block.

        Returns ``(matched filters in first-seen candidate order,
        posting lists touched, posting entries scanned)`` — the same
        triple the python posting walk produces, including the costs
        (every present document-term row counts one list and its
        entries, matched or not).
        """
        kernel = self._kernel
        entry = kernel.scores_for(document, caches)
        block = self.block_for(index)
        rows = block._rows
        position = entry.position
        lists = 0
        entries_scanned = 0
        row_slots: List["np.ndarray"] = []
        row_data: List["np.ndarray"] = []
        weights: List[float] = []
        positions: List[int] = []
        lens: List[int] = []
        for term in document.terms:
            row = rows.get(term)
            if row is None:
                continue
            lists += 1
            entries_scanned += row.size
            pos = position.get(term)
            if pos is None:
                continue  # not a scored term: contributes no weight
            row_slots.append(row.slots[: row.size])
            row_data.append(row.data[: row.size])
            weights.append(entry.weights[pos])
            positions.append(pos)
            lens.append(row.size)
        if not row_slots or entry.norm == 0.0:
            return [], lists, entries_scanned
        state = self._doc_state(entry)
        lens_arr = np.fromiter(lens, dtype=np.int64, count=len(lens))
        cols = np.concatenate(row_slots)
        # data is 1.0 per posting, so the product is exactly the
        # repeated document weight (w * 1.0 is bit-exact).
        vals = np.concatenate(row_data) * np.repeat(
            np.fromiter(weights, dtype=np.float64, count=len(weights)),
            lens_arr,
        )
        # One stable sort by slot groups each candidate's
        # contributions contiguously while preserving concatenation
        # order == document-term order within every group — the
        # canonical summation order of the python accumulator.
        order = np.argsort(cols, kind="stable")
        cols_sorted = cols[order]
        vals_sorted = vals[order]
        boundaries = (
            np.flatnonzero(cols_sorted[1:] != cols_sorted[:-1]) + 1
        )
        seg_start = np.empty(boundaries.size + 1, dtype=np.int64)
        seg_start[0] = 0
        seg_start[1:] = boundaries
        seg_len = np.empty_like(seg_start)
        seg_len[:-1] = np.diff(seg_start)
        seg_len[-1] = cols_sorted.size - seg_start[-1]
        # Stable sort → the first element of each segment carries the
        # smallest concatenation index: the candidate's first-seen
        # contribution, whose document position drives the
        # remaining-mass prune — identical to the python pass, which
        # admits a candidate once, at its first contributing term.
        first_global = order[seg_start]
        ends = np.cumsum(lens_arr)
        row_of_first = np.searchsorted(ends, first_global, side="right")
        first_pos = np.fromiter(
            positions, dtype=np.int64, count=len(positions)
        )[row_of_first]
        min_dot = kernel.threshold * entry.norm
        admitted = state.suffix[first_pos] * _PRUNE_SLACK >= min_dot
        if not admitted.any():
            return [], lists, entries_scanned
        adm_start = seg_start[admitted]
        dots = _exact_segment_sums(
            vals_sorted, adm_start, seg_len[admitted]
        )
        adm_slots = cols_sorted[adm_start]
        norms = np.frombuffer(kernel._norms)  # transient array('d') view
        scores = dots / (entry.norm * norms[adm_slots])
        # Threshold selection stays vectorized: only *matched*
        # candidates surface as python objects.  (The python pass also
        # memoizes the scores of admitted non-matches; skipping those
        # write-only entries here changes no observable value — a
        # later lookup recomputes the identical score — and keeps the
        # pass free of per-candidate python work.)
        mask = scores >= kernel.threshold
        if not mask.any():
            return [], lists, entries_scanned
        # Candidate order: ascending first contribution, exactly the
        # order ScoringPass.matched() reports.
        sel_first = first_global[admitted][mask]
        seen_order = np.argsort(sel_first)
        sel_slots = adm_slots[mask][seen_order]
        sel_scores = scores[mask][seen_order]
        profiles = kernel._profiles
        memo = entry.score_memo
        matched: List[Filter] = []
        for slot, score in zip(
            sel_slots.tolist(), sel_scores.tolist()
        ):
            profile = profiles[slot]
            memo[profile.filter_id] = score
            matched.append(profile)
        return matched, lists, entries_scanned


def _exact_segment_sums(
    vals_sorted: "np.ndarray",
    seg_start: "np.ndarray",
    seg_len: "np.ndarray",
) -> "np.ndarray":
    """Sequential left-to-right sum of each contiguous segment.

    The "rounds" reduction: round ``r`` adds every segment's ``r``-th
    element into its running total, so each segment's additions happen
    strictly in element order — the same non-associative float
    addition sequence a python ``for`` loop performs, unlike
    ``np.add.reduceat``/``np.sum`` (pairwise).  Rounds are bounded by
    the longest segment (≤ the document's term count in accumulation
    mode, ≤ the filter's term count in lookup mode), so the loop is a
    handful of vectorized adds.
    """
    dots = vals_sorted[seg_start].astype(np.float64, copy=True)
    max_len = int(seg_len.max())
    for r in range(1, max_len):
        active = seg_len > r
        dots[active] += vals_sorted[seg_start[active] + r]
    return dots
