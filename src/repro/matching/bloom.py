"""Bloom filter used to prune document forwarding (Section V).

"When a document d comes, we can simply forward d to the home nodes of
all terms t_i in d and t_i in BF, where BF is the bloom filter
summarizing all terms in registered filters."  Terms a document shares
with no registered filter never leave the ingest node.

Classic fixed-size Bloom filter with double hashing (Kirsch–Mitzenmacher):
``h_i(x) = h1(x) + i * h2(x)``, which preserves the asymptotic
false-positive rate while needing only two base hashes.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Tuple


class BloomFilter:
    """Set-membership sketch with no false negatives."""

    def __init__(self, expected_items: int, fp_rate: float = 0.01) -> None:
        if expected_items < 1:
            raise ValueError(
                f"expected_items must be >= 1, got {expected_items}"
            )
        if not 0.0 < fp_rate < 1.0:
            raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
        self.expected_items = expected_items
        self.fp_rate = fp_rate
        # Optimal parameters: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
        self.num_bits = max(
            8,
            int(
                math.ceil(
                    -expected_items * math.log(fp_rate) / (math.log(2) ** 2)
                )
            ),
        )
        self.num_hashes = max(
            1, int(round(self.num_bits / expected_items * math.log(2)))
        )
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.items_added = 0

    def _base_hashes(self, item: str) -> Tuple[int, int]:
        digest = hashlib.sha256(item.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd → full period
        return h1, h2

    def _positions(self, item: str) -> Iterable[int]:
        h1, h2 = self._base_hashes(item)
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, item: str) -> None:
        for position in self._positions(item):
            self._bits[position >> 3] |= 1 << (position & 7)
        self.items_added += 1

    def update(self, items: Iterable[str]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: str) -> bool:
        return all(
            self._bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(item)
        )

    def estimated_fp_rate(self) -> float:
        """FP probability given the actual number of insertions."""
        if self.items_added == 0:
            return 0.0
        exponent = -self.num_hashes * self.items_added / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def fill_ratio(self) -> float:
        """Fraction of bits set (diagnostic)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits
